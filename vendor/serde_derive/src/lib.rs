//! Derive macros for the vendored `serde` shim.
//!
//! The real `serde_derive` depends on syn/quote, which are unavailable
//! offline. This implementation walks the raw `proc_macro::TokenTree`
//! stream by hand, supports exactly the shapes the workspace uses
//! (named structs, tuple/newtype structs, enums with unit/tuple/struct
//! variants, `#[serde(default)]` / `#[serde(default = "path")]`), and
//! emits the generated impls by formatting Rust source and re-parsing
//! it with `TokenStream::from_str`.
//!
//! Generated code follows serde's JSON representation conventions so
//! that output is interchangeable with the real crates: named structs
//! are objects, newtype structs are transparent, tuples are arrays,
//! and enums are externally tagged (`"Variant"`, `{"Variant": value}`,
//! `{"Variant": [..]}`, or `{"Variant": {..}}`).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::str::FromStr;

struct Field {
    name: String,
    /// `None`: required. `Some("")`: `Default::default()`. `Some(path)`: call `path()`.
    default: Option<String>,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

fn ident_str(tok: &TokenTree) -> Option<String> {
    match tok {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Parses the contents of a `#[serde(...)]` attribute group, returning the
/// field default if one is declared.
fn parse_serde_attr(group: &Group) -> Option<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    // Expect: serde ( ... )
    if toks.len() != 2 || ident_str(&toks[0]).as_deref() != Some("serde") {
        return None;
    }
    let inner = match &toks[1] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    let inner_toks: Vec<TokenTree> = inner.stream().into_iter().collect();
    match inner_toks.as_slice() {
        [first] if ident_str(first).as_deref() == Some("default") => Some(String::new()),
        [first, eq, TokenTree::Literal(lit)]
            if ident_str(first).as_deref() == Some("default") && is_punct(eq, '=') =>
        {
            let s = lit.to_string();
            Some(s.trim_matches('"').to_string())
        }
        other => panic!(
            "vendored serde_derive: unsupported #[serde(...)] attribute: {:?}",
            other.iter().map(|t| t.to_string()).collect::<Vec<_>>()
        ),
    }
}

/// Skips attributes starting at `i`, returning the new index and any
/// `#[serde(default...)]` found among them.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> (usize, Option<String>) {
    let mut default = None;
    while i + 1 < toks.len() && is_punct(&toks[i], '#') {
        if let TokenTree::Group(g) = &toks[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                if let Some(d) = parse_serde_attr(g) {
                    default = Some(d);
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (i, default)
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && ident_str(&toks[i]).as_deref() == Some("pub") {
        i += 1;
        if i < toks.len() {
            if let TokenTree::Group(g) = &toks[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skips a type starting at `i` until a top-level `,` (consumed) or the end.
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (ni, default) = skip_attrs(&toks, i);
        i = skip_vis(&toks, ni);
        let name = ident_str(&toks[i]).unwrap_or_else(|| {
            panic!(
                "vendored serde_derive: expected field name, got {}",
                toks[i]
            )
        });
        i += 1;
        assert!(
            is_punct(&toks[i], ':'),
            "vendored serde_derive: expected ':' after field name"
        );
        i = skip_type(&toks, i + 1);
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(group: &Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        let (ni, _) = skip_attrs(&toks, i);
        i = skip_vis(&toks, ni);
        if i >= toks.len() {
            break;
        }
        i = skip_type(&toks, i);
        count += 1;
    }
    count
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (ni, _) = skip_attrs(&toks, i);
        i = ni;
        if i >= toks.len() {
            break;
        }
        let name = ident_str(&toks[i]).unwrap_or_else(|| {
            panic!(
                "vendored serde_derive: expected variant name, got {}",
                toks[i]
            )
        });
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g))
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant, then the trailing comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility ahead of the struct/enum keyword.
    loop {
        let (ni, _) = skip_attrs(&toks, i);
        i = skip_vis(&toks, ni);
        match ident_str(&toks[i]).as_deref() {
            Some("struct") | Some("enum") => break,
            Some(_) | None if i + 1 < toks.len() => i += 1,
            _ => panic!("vendored serde_derive: could not find struct/enum keyword"),
        }
    }
    let kw = ident_str(&toks[i]).unwrap();
    i += 1;
    let name = ident_str(&toks[i])
        .unwrap_or_else(|| panic!("vendored serde_derive: expected type name, got {}", toks[i]));
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("vendored serde_derive: generic types are not supported (type {name})");
    }
    if kw == "enum" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g),
            },
            _ => panic!("vendored serde_derive: malformed enum {name}"),
        }
    } else {
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g))
            }
            _ => Shape::Unit,
        };
        Item::Struct { name, shape }
    }
}

/// Derives `serde::Serialize` (vendored shim: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                }
                Shape::Named(fields) => {
                    let mut b = String::from("{ let mut __m = ::serde::Map::new(); ");
                    for f in fields {
                        let fname = &f.name;
                        let _ = write!(
                            b,
                            "__m.insert(\"{fname}\", ::serde::Serialize::to_value(&self.{fname})); "
                        );
                    }
                    b.push_str("::serde::Value::Map(__m) }");
                    b
                }
            };
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => ::serde::Value::Str(String::from(\"{vname}\")), "
                        );
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                        };
                        let _ = write!(
                            arms,
                            "{name}::{vname}({binds}) => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert(\"{vname}\", {inner}); ::serde::Value::Map(__m) }}, ",
                            binds = binds.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("{ let mut __im = ::serde::Map::new(); ");
                        for f in fields {
                            let fname = &f.name;
                            let _ = write!(
                                inner,
                                "__im.insert(\"{fname}\", ::serde::Serialize::to_value({fname})); "
                            );
                        }
                        inner.push_str("::serde::Value::Map(__im) }");
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {binds} }} => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert(\"{vname}\", {inner}); ::serde::Value::Map(__m) }}, ",
                            binds = binds.join(", ")
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ \
                 match self {{ {arms} }} }} }}"
            );
        }
    }
    TokenStream::from_str(&out)
        .expect("vendored serde_derive: generated Serialize impl failed to parse")
}

fn named_field_deser(type_name: &str, fields: &[Field], map_expr: &str) -> String {
    let mut b = String::new();
    for f in fields {
        let fname = &f.name;
        let missing = match f.default.as_deref() {
            None => format!(
                "return ::std::result::Result::Err(::serde::Error::custom(\
                 \"{type_name}: missing field `{fname}`\"))"
            ),
            Some("") => "::std::default::Default::default()".to_string(),
            Some(path) => format!("{path}()"),
        };
        let _ = write!(
            b,
            "{fname}: match {map_expr}.get(\"{fname}\") {{ \
             ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, \
             ::std::option::Option::None => {missing}, }}, "
        );
    }
    b
}

/// Derives `serde::Deserialize` (vendored shim: `fn from_value(&Value) -> Result<Self, Error>`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                        .collect();
                    format!(
                        "match __v {{ ::serde::Value::Seq(__s) if __s.len() == {n} => \
                         ::std::result::Result::Ok({name}({elems})), \
                         _ => ::std::result::Result::Err(::serde::Error::custom(\
                         \"{name}: expected array of {n} elements\")) }}",
                        elems = elems.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let field_inits = named_field_deser(name, fields, "__m");
                    format!(
                        "match __v {{ ::serde::Value::Map(__m) => \
                         ::std::result::Result::Ok({name} {{ {field_inits} }}), \
                         _ => ::std::result::Result::Err(::serde::Error::custom(\
                         \"{name}: expected object\")) }}"
                    )
                }
            };
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
                 {body} }} }}"
            );
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}), "
                        );
                    }
                    Shape::Tuple(1) => {
                        let _ = write!(
                            tagged_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)), "
                        );
                    }
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                            .collect();
                        let _ = write!(
                            tagged_arms,
                            "\"{vname}\" => match __inner {{ \
                             ::serde::Value::Seq(__s) if __s.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vname}({elems})), \
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                             \"{name}::{vname}: expected array of {n} elements\")) }}, ",
                            elems = elems.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let field_inits =
                            named_field_deser(&format!("{name}::{vname}"), fields, "__im");
                        let _ = write!(
                            tagged_arms,
                            "\"{vname}\" => match __inner {{ \
                             ::serde::Value::Map(__im) => \
                             ::std::result::Result::Ok({name}::{vname} {{ {field_inits} }}), \
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                             \"{name}::{vname}: expected object\")) }}, ",
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
                 match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                 \"{name}: unknown variant `{{__other}}`\"))) }}, \
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                 let (__tag, __inner) = __m.iter().next().unwrap(); \
                 match __tag.as_str() {{ {tagged_arms} \
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                 \"{name}: unknown variant `{{__other}}`\"))) }} }}, \
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"{name}: expected variant string or single-key object\")) }} }} }}"
            );
        }
    }
    TokenStream::from_str(&out)
        .expect("vendored serde_derive: generated Deserialize impl failed to parse")
}
