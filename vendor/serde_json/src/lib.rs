//! Offline stand-in for `serde_json`: JSON text parsing and printing on
//! top of the vendored `serde` shim's [`Value`] data model.

pub use serde::{Map, Value};

use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Parses a JSON string into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_json(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_json(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(map));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.eat_keyword("\\u") {
                                    let lo = self.parse_hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character '{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-17").unwrap(), -17);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_compound() {
        let text = r#"{"a": [1, 2, 3], "b": {"c": "x", "d": null}}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"a":[1,2,3],"b":{"c":"x","d":null}}"#);
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_printing_is_reparseable() {
        let v: Value = from_str(r#"{"k": [true, "s"], "e": []}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }
}
