//! Offline stand-in for `criterion`.
//!
//! Exposes the subset of the criterion 0.8 API this workspace's benches
//! use (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros). Each benchmark closure
//! is executed a small fixed number of times and the best observed wall
//! time is printed — no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark, e.g. `yu/4`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one id.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs a single benchmark body via [`Bencher::iter`].
pub struct Bencher {
    best_ns: u128,
}

impl Bencher {
    /// Times `f`, keeping the fastest of a few runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const RUNS: usize = 3;
        for _ in 0..RUNS {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed().as_nanos();
            self.best_ns = self.best_ns.min(elapsed);
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { best_ns: u128::MAX };
        f(&mut b);
        report(&self.name, &id.id, b.best_ns);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { best_ns: u128::MAX };
        f(&mut b, input);
        report(&self.name, &id.id, b.best_ns);
        self
    }

    /// Ends the group (no-op in this shim).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, best_ns: u128) {
    if best_ns == u128::MAX {
        println!("bench {group}/{id}: no iterations recorded");
    } else {
        println!("bench {group}/{id}: best {:.3} ms", best_ns as f64 / 1e6);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { best_ns: u128::MAX };
        f(&mut b);
        report("bench", id, b.best_ns);
        self
    }
}

/// Declares a group function invoking each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
