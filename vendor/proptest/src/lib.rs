//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace's
//! property tests use: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `prop_oneof!`, range/tuple strategies,
//! `prop_map`, `prop_recursive`, `any::<T>()`, and
//! `collection::{vec, btree_set}`.
//!
//! Differences from the real crate: generation is deterministic per
//! test (the RNG is seeded from the test name), there is no shrinking,
//! and `*.proptest-regressions` files are ignored. Failures report the
//! case number and the generated inputs.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic pseudo-random source used for value generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash), so each test
    /// has a stable stream across runs.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }
}

/// Error produced by `prop_assert!`-style macros inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` generated cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.gen_value(rng)),
        }
    }

    /// Builds a recursive strategy: `self` generates leaves and `f`
    /// wraps an inner strategy into composite values, nested up to
    /// `depth` levels. The `_desired_size` / `_expected_branch` hints
    /// are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            // Mix the leaf back in so generated values vary in depth
            // instead of always reaching the maximum.
            cur = Union::new(vec![leaf.clone(), deeper.clone(), deeper]).boxed();
        }
        cur
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice between several strategies of the same value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u128) as usize;
        self.arms[idx].gen_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+ $(,)?)),+ $(,)?) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0,),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// A strategy generating arbitrary values of this type.
    fn arbitrary() -> Self::Strategy;
}

/// Marker strategy for [`Arbitrary`] integer/bool generation.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_any {
    ($($t:ty => $gen:expr),+ $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let word = rng.next_u64();
                #[allow(clippy::redundant_closure_call)]
                ($gen)(word)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )+};
}

impl_any!(
    bool => |w: u64| w & 1 == 1,
    u8 => |w: u64| w as u8,
    u16 => |w: u64| w as u16,
    u32 => |w: u64| w as u32,
    u64 => |w: u64| w,
    usize => |w: u64| w as usize,
    i32 => |w: u64| w as i32,
    i64 => |w: u64| w as i64,
);

/// Returns the canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    fn sample_len(size: SizeRange, rng: &mut TestRng) -> usize {
        (size.lo as u128 + rng.below((size.hi - size.lo + 1) as u128)) as usize
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_len(self.size, rng);
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy generating `BTreeSet`s; duplicates collapse, so the
    /// resulting set may be smaller than the sampled length.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_len(self.size, rng);
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }

    /// Generates ordered sets from up to `size` sampled elements.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Defines property tests. Each `fn` inside the block becomes a `#[test]`
/// (the attribute is written explicitly by callers and passed through)
/// that runs `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let __strats = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let ($($arg,)+) = $crate::Strategy::gen_value(&__strats, &mut __rng);
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1, __cfg.cases, __e, __inputs
                    );
                }
            }
        }
    )*};
}

/// Fails the current proptest case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current proptest case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`", __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn arb_tree() -> BoxedStrategy<Tree> {
        let leaf = (-5i64..=5).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 10, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in -7i64..=7) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-7..=7).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn recursion_respects_depth(t in arb_tree()) {
            prop_assert!(depth(&t) <= 3, "tree too deep: {:?}", t);
        }

        #[test]
        fn collections_respect_size(v in crate::collection::vec(any::<u32>(), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(false, "forced failure");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("forced failure"), "message was: {msg}");
        assert!(msg.contains("x ="), "message was: {msg}");
    }
}
