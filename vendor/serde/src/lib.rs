//! Offline stand-in for `serde`.
//!
//! The real serde crates cannot be fetched in this build environment, so
//! this shim provides a *value-based* serialization data model with the
//! same trait and derive names the workspace already uses:
//!
//! - [`Serialize`] converts a value into a JSON-like [`Value`] tree.
//! - [`Deserialize`] reconstructs a value from a [`Value`] tree.
//! - `#[derive(Serialize, Deserialize)]` (from the companion
//!   `serde_derive` shim) generates impls matching serde's JSON
//!   representation conventions: named structs become objects, newtype
//!   structs are transparent, enums are externally tagged.
//!
//! `serde_json` (also vendored) layers text parsing/printing on top of
//! [`Value`].

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An order-preserving string-keyed map used for JSON objects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts a key/value pair, replacing any existing entry for the key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Removes an entry by key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates over entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON-like value tree: the serialization data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (JSON number without fraction/exponent).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, order-preserving.
    Map(Map),
}

impl Value {
    /// Returns the object map if this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable variant of [`Value::as_object`].
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the elements if this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the string contents if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Prints compact JSON, matching `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_json(self, None, 0, &mut out);
        f.write_str(&out)
    }
}

/// Writes `v` as JSON text. `indent` of `Some(width)` selects pretty
/// output. Shared with the vendored `serde_json`.
#[doc(hidden)]
pub fn write_json(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * depth {
                out.push(' ');
            }
        }
    }
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // serde_json prints integral floats with a trailing ".0".
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_json(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_json_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

/// Writes a JSON string literal with escaping.
#[doc(hidden)]
pub fn write_json_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Mirrors `serde::de` far enough for `serde::de::Error::custom` call sites.
pub mod de {
    pub use crate::Error;
}

/// Mirrors `serde::ser` for symmetry.
pub mod ser {
    pub use crate::Error;
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the shim's serialization data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Attempts to rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

// `Value::Int` is an i128, so u128 gets its own impl: values beyond
// i128::MAX fall back to a decimal string (still round-trippable).
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match i128::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => {
                u128::try_from(*i).map_err(|_| Error::custom("integer out of range for u128"))
            }
            Value::Str(s) => s
                .parse()
                .map_err(|_| Error::custom("expected u128 integer")),
            _ => Err(Error::custom("expected integer for u128")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Serde maps with non-string keys are serialized as JSON objects
        // only when keys stringify; mirror serde_json by requiring the
        // key's serialized form to be a string or integer.
        let mut m = Map::new();
        for (k, v) in self {
            let key = match k.to_value() {
                Value::Str(s) => s,
                Value::Int(i) => i.to_string(),
                other => panic!("unsupported map key in serialization: {other:?}"),
            };
            m.insert(key, v.to_value());
        }
        Value::Map(m)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                match v {
                    Value::Seq(s) if s.len() == N => Ok(($($t::from_value(&s[$idx])?,)+)),
                    _ => Err(Error::custom("expected fixed-size array for tuple")),
                }
            }
        }
    )+};
}

impl_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);
