//! Offline stand-in for `rand` 0.10.
//!
//! Provides deterministic pseudo-random generation over a splitmix64
//! core with the trait/method names the workspace uses:
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `RngExt::{random_range, random_bool}`. Not cryptographically secure
//! and not bit-compatible with the real crate — callers in this
//! workspace only need determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Core source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore + Sized {
    /// Samples uniformly from the given range (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + Sized> RngExt for R {}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self` using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(word: u64) -> f64 {
    // 53 uniform bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn below(rng: &mut impl RngCore, n: u128) -> u128 {
    debug_assert!(n > 0);
    // Modulo reduction over 128 bits; the bias is ~2^-64 and irrelevant
    // for test-topology generation.
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % n
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3u32..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(-5i128..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
