//! The Fig. 10 production incident: service traffic silently dropped by
//! a misconfigured static blackhole after a single link failure.
//!
//! ```sh
//! cargo run --release --example static_blackhole
//! ```
//!
//! D1 and D2 each carry a `static 10.0.0.0/8 -> Null0` that is
//! redistributed into BGP while the *specific* service route 10.1.0.0/26
//! is filtered from their advertisements. YU proves that failing D1's
//! WAN link blackholes all the service traffic at D1's Null0 even though
//! a fully redundant M2-D2-WAN path exists — and that removing the filter
//! restores single-failure tolerance.

use yu::core::{YuOptions, YuVerifier};
use yu::gen::static_blackhole_incident;
use yu::net::{LoadPoint, Scenario};

fn main() {
    let inc = static_blackhole_incident();
    let topo = inc.net.topo.clone();
    let w = inc.routers[4];
    let d1 = inc.routers[2];
    println!(
        "static blackhole incident network: {} routers, {} links",
        topo.num_routers(),
        topo.num_ulinks()
    );
    println!("D1/D2: static 10.0.0.0/8 -> Null0, redistributed; 10.1.0.0/26 filtered from exports");

    let mut verifier = YuVerifier::new(
        inc.net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    verifier.add_flows(&inc.flows);

    let s0 = Scenario::none();
    println!(
        "\nsteady state: {} Gbps delivered at the WAN",
        verifier.load_at(LoadPoint::Delivered(w), &s0)
    );

    let outcome = verifier.verify(&inc.tlp);
    println!(
        "\ndelivery TLP (>= 45 Gbps) under any single link failure: {}",
        if outcome.verified() {
            "VERIFIED"
        } else {
            "VIOLATED"
        }
    );
    for v in &outcome.violations {
        println!("  {}", v.describe(&topo));
    }
    let s = Scenario::links([inc.trigger_link]);
    println!(
        "  with {} failed: delivered {}, blackholed at D1: {}",
        s.describe(&topo),
        verifier.load_at(LoadPoint::Delivered(w), &s),
        verifier.load_at(LoadPoint::Dropped(d1), &s),
    );

    // The fix: advertise the specific route.
    let mut fixed = inc.net;
    for r in [inc.routers[2], inc.routers[3]] {
        fixed
            .config_mut(r)
            .bgp
            .as_mut()
            .unwrap()
            .deny_exports
            .clear();
    }
    let mut verifier = YuVerifier::new(
        fixed,
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    verifier.add_flows(&inc.flows);
    let outcome = verifier.verify(&inc.tlp);
    println!(
        "\nafter removing the export filter: {}",
        if outcome.verified() {
            "VERIFIED (the redundant path takes over)"
        } else {
            "still VIOLATED"
        }
    );
}
