//! The Fig. 9 production incident: link overload caused by a vulnerable
//! anycast segment-routing configuration.
//!
//! ```sh
//! cargo run --release --example sr_anycast
//! ```
//!
//! A1 steers DC1→DC2 traffic through an SR policy whose first segment is
//! an *anycast* address shared by backbone routers B1 and B2. The
//! operator's intent was two disjoint tunnels; YU finds that one link
//! failure (B2-C2) silently re-routes half the traffic over the thin
//! 40 Gbps B1-B2 interconnect.

use yu::core::{YuOptions, YuVerifier};
use yu::gen::sr_anycast_incident;
use yu::net::{LoadPoint, Scenario};

fn main() {
    let inc = sr_anycast_incident();
    let topo = inc.net.topo.clone();
    println!(
        "anycast SR incident network: {} routers, {} links",
        topo.num_routers(),
        topo.num_ulinks()
    );
    println!("SR policy on A1: to 2.2.2.2 via segment list [1.1.1.1 (anycast on B1+B2), 2.2.2.2]");

    let mut verifier = YuVerifier::new(
        inc.net,
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    verifier.add_flows(&inc.flows);

    let (bb_fwd, bb_rev) = topo.directions(inc.backbone_link);
    let s0 = Scenario::none();
    println!(
        "\nsteady state: B1-B2 carries {} + {} Gbps (idle, as intended)",
        verifier.load_at(LoadPoint::Link(bb_fwd), &s0),
        verifier.load_at(LoadPoint::Link(bb_rev), &s0)
    );

    let outcome = verifier.verify(&inc.tlp);
    println!(
        "\noverload TLP under any single link failure: {}",
        if outcome.verified() {
            "VERIFIED"
        } else {
            "VIOLATED"
        }
    );
    for v in &outcome.violations {
        println!("  {}", v.describe(&topo));
    }

    // Demonstrate the incident scenario explicitly.
    let s = Scenario::links([inc.trigger_link]);
    println!(
        "\nwith {} failed, B1-B2 carries {} / {} Gbps (capacity 40):",
        s.describe(&topo),
        verifier.load_at(LoadPoint::Link(bb_fwd), &s),
        verifier.load_at(LoadPoint::Link(bb_rev), &s),
    );
    println!("root cause: the anycast segment lets B2 satisfy [1.1.1.1] locally, so after a B2-side failure the remaining segment routes over the backbone interconnect instead of falling back to the B1 tunnel end-to-end.");
}
