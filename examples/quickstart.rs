//! Quickstart: verify the paper's Fig. 1 motivating example.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the six-router eBGP/iBGP/IS-IS/SR network, injects the two
//! flows, and checks the two traffic load properties under every
//! single-link-failure scenario:
//!
//! * **P1** — at least 70 Gbps must reach the destination;
//! * **P2** — no link may carry more than 95% of its capacity.

use yu::core::{YuOptions, YuVerifier};
use yu::gen::motivating_example;
use yu::net::{LoadPoint, Scenario};

fn main() {
    let ex = motivating_example();
    let topo = ex.net.topo.clone();
    println!(
        "network: {} routers, {} links (+{} parallel), flows: f1=20G dscp0 @A, f2=80G dscp5 @B",
        topo.num_routers(),
        topo.num_ulinks(),
        1,
    );

    let mut verifier = YuVerifier::new(
        ex.net,
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    verifier.add_flows(&ex.flows);

    // Show the steady-state loads (paper Fig. 1(a)).
    println!("\nno-failure loads:");
    let s0 = Scenario::none();
    for l in topo.links() {
        let load = verifier.load_at(LoadPoint::Link(l), &s0);
        if !load.is_zero() {
            println!("  {:<8} {:>6} Gbps", topo.link_label(l), load.to_string());
        }
    }

    // P1: delivery.
    let p1 = verifier.verify(&ex.p1);
    println!(
        "\nP1 (delivered >= 70 Gbps under any 1 failure): {}",
        if p1.verified() {
            "VERIFIED"
        } else {
            "VIOLATED"
        }
    );

    // P2: no overload.
    let p2 = verifier.verify(&ex.p2);
    println!(
        "P2 (no link > 95% capacity under any 1 failure): {}",
        if p2.verified() {
            "VERIFIED"
        } else {
            "VIOLATED"
        }
    );
    for v in &p2.violations {
        println!("  counterexample: {}", v.describe(&topo));
    }

    let stats = p2.stats;
    println!(
        "\nstats: {} flows -> {} groups, route {:?}, exec {:?}, check {:?}, {} MTBDD nodes",
        stats.flows_in,
        stats.flow_groups,
        stats.route_time,
        stats.exec_time,
        stats.check_time,
        stats.mtbdd.nodes_created
    );
}
