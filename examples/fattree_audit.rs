//! Audit a FatTree fabric for k-failure overloads and compare YU against
//! both baselines on the same instance (a miniature of the paper's §7.2).
//!
//! ```sh
//! cargo run --release --example fattree_audit -- [pods] [flow_percent] [k]
//! ```
//!
//! Defaults: FT-4, 16% of pairwise edge flows, k = 2.

use std::time::Instant;
use yu::baselines::{jingubang_verify, qarc_verify};
use yu::core::{YuOptions, YuVerifier};
use yu::gen::fattree_with_flows;
use yu::mtbdd::Ratio;
use yu::net::{scenario_count, FailureMode, Tlp};

fn main() {
    let mut args = std::env::args().skip(1);
    let pods: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let percent: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    let (ft, flows) = fattree_with_flows(pods, percent);
    let n_ulinks = ft.net.topo.num_ulinks();
    println!(
        "FT-{pods}: {} routers, {n_ulinks} links, {} flows ({percent}% of pairwise), k={k}",
        ft.net.topo.num_routers(),
        flows.len()
    );
    println!(
        "scenario space a per-scenario tool must enumerate: {}",
        scenario_count(n_ulinks, k)
    );
    // Edge-agg links are 40 Gbps: overload threshold 95%.
    let tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));

    let t = Instant::now();
    let mut v = YuVerifier::new(
        ft.net.clone(),
        YuOptions {
            k: k as u32,
            mode: FailureMode::Links,
            ..Default::default()
        },
    );
    v.add_flows(&flows);
    let yu_out = v.verify(&tlp);
    let yu_time = t.elapsed();
    println!(
        "\nYU:        {:>10.3?}  -> {}",
        yu_time,
        verdict(yu_out.verified(), yu_out.violations.len())
    );
    if let Some(vi) = yu_out.violations.first() {
        println!("           e.g. {}", vi.describe(&ft.net.topo));
    }

    let qa = qarc_verify(&ft.net, &flows, &tlp, k, false);
    println!(
        "QARC:      {:>10.3?}  -> {} ({} scenarios)",
        qa.elapsed,
        verdict(qa.verified(), qa.violations.len()),
        qa.scenarios_checked
    );

    let jg = jingubang_verify(
        &ft.net,
        &flows,
        &tlp,
        k,
        FailureMode::Links,
        yu::net::DEFAULT_MAX_HOPS,
        false,
    );
    println!(
        "Jingubang: {:>10.3?}  -> {} ({} scenarios)",
        jg.elapsed,
        verdict(jg.verified(), jg.violations.len()),
        jg.scenarios_checked
    );
}

fn verdict(ok: bool, n: usize) -> String {
    if ok {
        "VERIFIED".into()
    } else {
        format!("VIOLATED ({n} findings)")
    }
}
