//! Verify a synthetic production-style WAN (iBGP + IS-IS + SR) under
//! arbitrary k link failures — the daily-verification workflow of §6.
//!
//! ```sh
//! cargo run --release --example wan_verification -- [preset] [flows] [k]
//! ```
//!
//! `preset` is one of `n0`, `n1`, `n2`, `wan` (default `n0`);
//! `flows` defaults to 2000; `k` defaults to 2.

use std::time::Instant;
use yu::core::{YuOptions, YuVerifier};
use yu::gen::{wan, WanPreset};
use yu::mtbdd::Ratio;
use yu::net::{scenario_count, FailureMode, Tlp};

fn main() {
    let mut args = std::env::args().skip(1);
    let preset = match args.next().as_deref() {
        Some("n1") => WanPreset::N1,
        Some("n2") => WanPreset::N2,
        Some("wan") => WanPreset::Wan,
        _ => WanPreset::N0,
    };
    let n_flows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let k: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    let t = Instant::now();
    let w = wan(preset.params());
    let flows = w.flows(n_flows, 12345);
    println!(
        "{}: {} routers, {} links, {} prefixes, {} flows (built in {:?})",
        preset.name(),
        w.net.topo.num_routers(),
        w.net.topo.num_ulinks(),
        w.params.prefixes,
        flows.len(),
        t.elapsed()
    );
    println!(
        "k = {k}; per-scenario tools would simulate {} scenarios",
        scenario_count(w.net.topo.num_ulinks(), k as usize)
    );

    let t = Instant::now();
    let mut v = YuVerifier::new(
        w.net.clone(),
        YuOptions {
            k,
            mode: FailureMode::Links,
            ..Default::default()
        },
    );
    println!("symbolic route simulation: {:?}", t.elapsed());

    let t = Instant::now();
    v.add_flows(&flows);
    println!("symbolic traffic execution: {:?}", t.elapsed());

    let t = Instant::now();
    let tlp = Tlp::no_overload(&w.net.topo, Ratio::new(95, 100));
    let out = v.verify(&tlp);
    println!("TLP checking: {:?}", t.elapsed());

    println!(
        "\nno-overload property under any {k} link failures: {}",
        if out.verified() {
            "VERIFIED"
        } else {
            "VIOLATED"
        }
    );
    for vi in out.violations.iter().take(5) {
        println!("  {}", vi.describe(&w.net.topo));
    }
    if out.violations.len() > 5 {
        println!("  ... and {} more", out.violations.len() - 5);
    }
    println!(
        "\nstats: {} flows -> {} equivalence groups; {} MTBDD nodes",
        out.stats.flows_in, out.stats.flow_groups, out.stats.mtbdd.nodes_created
    );
}
