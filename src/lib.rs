//! # yu
//!
//! Verification of network **traffic load properties under arbitrary k
//! failures** — a from-scratch Rust reproduction of the YU system
//! (SIGCOMM 2024, "A General and Efficient Approach to Verifying Traffic
//! Load Properties under Arbitrary k Failures").
//!
//! This facade re-exports the whole workspace:
//!
//! * [`mtbdd`] — hash-consed multi-terminal BDDs with exact rational
//!   terminals and the paper's `KREDUCE` k-failure-equivalence reduction;
//! * [`net`] — topology, addressing, failure model, configuration
//!   (eBGP/iBGP, IS-IS, static routes, SR policies), flows, TLPs;
//! * [`routing`] — symbolic route simulation (guarded RIBs, guarded SR
//!   policies) plus a concrete per-scenario simulator;
//! * [`core`] — symbolic traffic execution, equivalence reductions, and
//!   TLP verification with counterexample extraction;
//! * [`analysis`] — preflight static analysis: lint a network or spec
//!   for misconfigurations (stable `YU0xx` diagnostic codes) before any
//!   symbolic computation runs;
//! * [`baselines`] — Jingubang-style enumeration and QARC-style
//!   shortest-path baselines;
//! * [`gen`] — FatTree and synthetic-WAN generators plus the paper's
//!   worked examples.
//!
//! ## Quickstart
//!
//! ```
//! use yu::core::{YuOptions, YuVerifier};
//! use yu::gen::motivating_example;
//!
//! let ex = motivating_example();
//! let mut verifier = YuVerifier::new(ex.net, YuOptions { k: 1, ..Default::default() });
//! verifier.add_flows(&ex.flows);
//!
//! // P1 (delivery >= 70 Gbps) holds under any single link failure...
//! assert!(verifier.verify(&ex.p1).verified());
//! // ...but P2 (no overload) does not: failing B-D overloads C-E.
//! let outcome = verifier.verify(&ex.p2);
//! assert!(!outcome.verified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serve;
pub mod spec;

pub use yu_analysis as analysis;
pub use yu_baselines as baselines;
pub use yu_core as core;
pub use yu_gen as gen;
pub use yu_mtbdd as mtbdd;
pub use yu_net as net;
pub use yu_routing as routing;
pub use yu_telemetry as telemetry;
