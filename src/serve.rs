//! The `yu serve` session: a long-running incremental re-verification
//! daemon speaking JSON-lines.
//!
//! Protocol: one request per line —
//!
//! ```json
//! {"id": 1, "changes": [{"SetLinkCost": {"from": "A", "to": "B", "cost": 10}}]}
//! ```
//!
//! — one response per line. A successful response carries the verdict,
//! the **verdict delta** against the previous state (violations that
//! appeared and violations that resolved), and reuse statistics:
//!
//! ```json
//! {"id": 1, "ok": true, "verified": false, "violations": [...],
//!  "new_violations": [...], "resolved_violations": [],
//!  "stats": {"reused_groups": 5, "recomputed_groups": 1, ...}}
//! ```
//!
//! Errors never crash the session and never mutate verifier state:
//! malformed JSON yields `{"ok": false, "error": {"kind": "parse", ...}}`,
//! an unknown change kind or bad request shape yields `kind":
//! "bad_request"`, and a change naming a nonexistent router/link/flow is
//! rejected atomically by [`ChangeSet::apply`] before anything is
//! touched.

use crate::spec::VerifySpec;
use serde::{Deserialize, Map, Serialize, Value};
use yu_core::{DeltaStats, IncrementalVerifier, VerificationOutcome, Violation, YuOptions};
use yu_net::{Change, ChangeSet};

/// One `yu serve` request: a change-set plus an optional client-chosen
/// correlation id (echoed back in the response).
#[derive(Debug, Clone, Deserialize)]
struct Request {
    #[serde(default)]
    id: Option<i128>,
    changes: Vec<Change>,
}

/// A long-running incremental verification session.
pub struct ServeSession {
    inc: IncrementalVerifier,
    /// Violations of the current state (baseline of the next delta).
    violations: Vec<Violation>,
}

impl ServeSession {
    /// Builds the session from a base spec: executes all flows (with
    /// route-dependency recording) and verifies once to establish the
    /// baseline verdict.
    pub fn new(spec: &VerifySpec, opts: YuOptions) -> ServeSession {
        let mut inc = IncrementalVerifier::new(
            spec.network.clone(),
            spec.flows.clone(),
            spec.tlp.clone(),
            opts,
        );
        let out = inc.verify();
        ServeSession {
            inc,
            violations: out.violations,
        }
    }

    /// The incremental verifier (tests).
    pub fn verifier(&self) -> &IncrementalVerifier {
        &self.inc
    }

    /// The banner printed when the session starts: a single JSON line
    /// announcing readiness and the baseline verdict.
    pub fn ready_line(&self) -> String {
        let net = self.inc.network();
        let mut m = Map::new();
        m.insert("ready", Value::Bool(true));
        m.insert("routers", Value::Int(net.topo.num_routers() as i128));
        m.insert("links", Value::Int(net.topo.num_ulinks() as i128));
        m.insert("flows", Value::Int(self.inc.flows().len() as i128));
        m.insert("reqs", Value::Int(self.inc.tlp().reqs.len() as i128));
        m.insert("verified", Value::Bool(self.violations.is_empty()));
        m.insert("violations", Value::Int(self.violations.len() as i128));
        Value::Map(m).to_string()
    }

    /// Handles one request line and returns one response line. Never
    /// panics on bad input; errors leave the verifier state untouched.
    pub fn handle_line(&mut self, line: &str) -> String {
        let _req_span = yu_telemetry::span("serve.request");
        // Stage 1: is the line JSON at all?
        let value: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => return error_line(Value::Null, "parse", &e.to_string()),
        };
        let id = value
            .as_object()
            .and_then(|m| m.get("id"))
            .cloned()
            .unwrap_or(Value::Null);
        // Stage 2: does it have the request shape (known change kinds)?
        let req: Request = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(e) => return error_line(id, "bad_request", &e.to_string()),
        };
        let id = req.id.map(Value::Int).unwrap_or(id);
        let cs = ChangeSet {
            changes: req.changes,
        };
        // Stage 3: apply atomically; semantic errors (unknown router,
        // bad index) are rejected before any state is touched.
        match self.inc.apply(&cs) {
            Ok(out) => {
                let delta = self.inc.delta_stats();
                let line = success_line(id, &out, &self.violations, delta);
                self.violations = out.violations;
                line
            }
            Err(e) => error_line(id, "bad_request", &e.to_string()),
        }
    }
}

/// The structured error response (one line).
fn error_line(id: Value, kind: &str, message: &str) -> String {
    let mut err = Map::new();
    err.insert("kind", Value::Str(kind.to_string()));
    err.insert("message", Value::Str(message.to_string()));
    let mut root = Map::new();
    root.insert("id", id);
    root.insert("ok", Value::Bool(false));
    root.insert("error", Value::Map(err));
    Value::Map(root).to_string()
}

/// The success response (one line): verdict, verdict delta against
/// `previous`, and reuse statistics.
fn success_line(
    id: Value,
    out: &VerificationOutcome,
    previous: &[Violation],
    delta: DeltaStats,
) -> String {
    let (new_v, resolved) = violation_delta(previous, &out.violations);
    let mut root = Map::new();
    root.insert("id", id);
    root.insert("ok", Value::Bool(true));
    root.insert("verified", Value::Bool(out.verified()));
    root.insert("violations", out.violations.to_value());
    root.insert("new_violations", new_v.to_value());
    root.insert("resolved_violations", resolved.to_value());
    root.insert("stats", stats_value(out, delta));
    Value::Map(root).to_string()
}

/// Splits the verdict delta: violations present now but not before, and
/// violations present before but resolved now. Compared structurally
/// (point, scenario, load, bounds) — outcomes are bit-identical to
/// scratch runs, so equality is exact.
pub fn violation_delta(
    previous: &[Violation],
    current: &[Violation],
) -> (Vec<Violation>, Vec<Violation>) {
    let new_v = current
        .iter()
        .filter(|v| !previous.contains(v))
        .cloned()
        .collect();
    let resolved = previous
        .iter()
        .filter(|v| !current.contains(v))
        .cloned()
        .collect();
    (new_v, resolved)
}

/// The per-request statistics object: reuse counters plus the usual run
/// statistics.
pub fn stats_value(out: &VerificationOutcome, delta: DeltaStats) -> Value {
    let mut stats = Map::new();
    stats.insert("reused_groups", Value::Int(delta.reused_groups as i128));
    stats.insert(
        "recomputed_groups",
        Value::Int(delta.recomputed_groups as i128),
    );
    stats.insert("reused_reqs", Value::Int(delta.reused_reqs as i128));
    stats.insert("rechecked_reqs", Value::Int(delta.rechecked_reqs as i128));
    stats.insert("dirty_points", Value::Int(delta.dirty_points as i128));
    stats.insert("full_rebuild", Value::Bool(delta.full_rebuild));
    stats.insert("flow_groups", Value::Int(out.stats.flow_groups as i128));
    stats.insert("reqs_pruned", Value::Int(out.stats.reqs_pruned as i128));
    stats.insert(
        "route_secs",
        Value::Float(out.stats.route_time.as_secs_f64()),
    );
    stats.insert("exec_secs", Value::Float(out.stats.exec_time.as_secs_f64()));
    stats.insert(
        "check_secs",
        Value::Float(out.stats.check_time.as_secs_f64()),
    );
    Value::Map(stats)
}

/// Shared by `yu diff` and `Change` consumers: a change-set parsed from a
/// JSON string (the line format of the serve protocol's `changes` field).
pub fn parse_changes(json: &str) -> Result<Vec<Change>, serde_json::Error> {
    serde_json::from_str(json)
}
