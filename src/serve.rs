//! The `yu serve` session: a long-running incremental re-verification
//! daemon speaking JSON-lines.
//!
//! Protocol: one request per line —
//!
//! ```json
//! {"id": 1, "changes": [{"SetLinkCost": {"from": "A", "to": "B", "cost": 10}}]}
//! ```
//!
//! — one response per line. A successful response carries the verdict,
//! the **verdict delta** against the previous state (violations that
//! appeared and violations that resolved), per-request reuse statistics,
//! and cumulative session totals:
//!
//! ```json
//! {"id": 1, "ok": true, "verified": false, "violations": [...],
//!  "new_violations": [...], "resolved_violations": [],
//!  "stats": {"reused_groups": 5, "recomputed_groups": 1, ...},
//!  "lifetime": {"requests": 12, "verdict_flips": 2, ...}}
//! ```
//!
//! A line of the form `{"id": 9, "metrics": true}` is a **metrics
//! request**: it does not touch verifier state and answers with a
//! snapshot of the process-lifetime metrics registry plus the session's
//! [`LifetimeStats`].
//!
//! Errors never crash the session and never mutate verifier state:
//! malformed JSON yields `{"ok": false, "error": {"kind": "parse", ...}}`,
//! an unknown change kind or bad request shape yields `kind":
//! "bad_request"`, and a change naming a nonexistent router/link/flow is
//! rejected atomically by [`ChangeSet::apply`] before anything is
//! touched.
//!
//! ## Observability
//!
//! The session is fully instrumented (see DESIGN.md §14): per-request
//! end-to-end latency and stage histograms plus reuse-ratio gauges land
//! in the [`yu_telemetry`] metrics registry, and — when an event sink is
//! configured (`yu serve --events-out`) — the session emits structured
//! `request_start` / `request_finish` / `slow_request` / `verdict_flip`
//! / `serve_error` events. Both are observers only: instrumented and
//! uninstrumented sessions produce bit-identical responses.
//!
//! The session also detects **performance regressions**: it trains an
//! EWMA latency baseline per request kind ([`EwmaBaseline`], keyed by
//! the change-set's change kind) and, once a kind's baseline is armed,
//! a request slower than `--regress-factor` times it emits a
//! `perf_regression` event and bumps `yu_serve_perf_regressions_total`.
//! Because the signal depends on wall time, it never appears in
//! response lines — those stay bit-identical run to run.

use crate::spec::VerifySpec;
use serde::{Deserialize, Map, Serialize, Value};
use std::time::{Duration, Instant};
use yu_core::{DeltaStats, IncrementalVerifier, VerificationOutcome, Violation, YuOptions};
use yu_net::{Change, ChangeSet};
use yu_telemetry::EventLevel;

/// One `yu serve` request: a change-set plus an optional client-chosen
/// correlation id (echoed back in the response).
#[derive(Debug, Clone, Deserialize)]
struct Request {
    #[serde(default)]
    id: Option<i128>,
    changes: Vec<Change>,
}

/// Tunables of a serve session that are about *observing* it, not about
/// verification semantics.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Requests at least this slow emit a `slow_request` event and count
    /// into `yu_serve_slow_requests_total` (CLI: `--slow-ms`, default 1s).
    pub slow_threshold: Duration,
    /// A request is a **performance regression** when its latency
    /// exceeds this multiple of its request kind's EWMA baseline (CLI:
    /// `--regress-factor`, default 3.0). Regressions emit a
    /// `perf_regression` event and count into
    /// `yu_serve_perf_regressions_total`; they never appear in response
    /// lines, which stay wall-clock-independent.
    pub regress_factor: f64,
    /// EWMA smoothing weight of the newest latency sample.
    pub regress_alpha: f64,
    /// Samples of a kind observed before its baseline arms. The slow
    /// first requests of a cold session train the baseline instead of
    /// tripping it.
    pub regress_min_samples: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            slow_threshold: Duration::from_millis(1000),
            regress_factor: 3.0,
            regress_alpha: 0.2,
            regress_min_samples: 5,
        }
    }
}

/// An exponentially-weighted moving average of request latency for one
/// request kind — the baseline of the serve regression detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct EwmaBaseline {
    /// Current baseline, microseconds. Seeded by the first sample.
    pub mean_us: f64,
    /// Samples folded in so far.
    pub samples: u64,
}

impl EwmaBaseline {
    /// Whether a new sample would count as a regression against the
    /// current (pre-update) baseline: armed and exceeded by `factor`.
    pub fn regressed(&self, elapsed_us: f64, factor: f64, min_samples: u64) -> bool {
        self.samples >= min_samples && self.mean_us > 0.0 && elapsed_us > factor * self.mean_us
    }

    /// Folds a sample into the baseline. The first sample seeds the
    /// mean; later samples move it by `alpha`. Called *after*
    /// [`EwmaBaseline::regressed`], so a spike is judged against the
    /// baseline it has not yet polluted (it still trains the baseline —
    /// a persistent slowdown alarms a bounded number of times, then
    /// becomes the new normal).
    pub fn observe(&mut self, elapsed_us: f64, alpha: f64) {
        self.mean_us = if self.samples == 0 {
            elapsed_us
        } else {
            alpha * elapsed_us + (1.0 - alpha) * self.mean_us
        };
        self.samples += 1;
    }
}

/// The baseline key of a request: the change kind for homogeneous
/// change-sets (`SetLinkCost`), `"mixed"` otherwise. Latency is
/// strongly bimodal by kind (a cost change recomputes routes; a rate
/// change reuses them), so one global baseline would either miss
/// regressions of the cheap kind or false-alarm on the expensive one.
fn request_kind(cs: &ChangeSet) -> String {
    let kind_of = |c: &Change| {
        let dbg = format!("{c:?}");
        dbg.split([' ', '(', '{'])
            .next()
            .unwrap_or("change")
            .to_string()
    };
    let mut kinds = cs.changes.iter().map(kind_of);
    let Some(first) = kinds.next() else {
        return "empty".to_string();
    };
    if kinds.all(|k| k == first) {
        first
    } else {
        "mixed".to_string()
    }
}

/// Cumulative totals over the whole session — the **lifetime view**
/// that complements the per-request [`DeltaStats`] deltas. PR 7's serve
/// loop conflated the two (reuse counters were only meaningful
/// per-request); now each response carries both, and the lifetime copy
/// never resets.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifetimeStats {
    /// Change-set requests answered successfully.
    pub requests: u64,
    /// Requests rejected (parse / bad-request / semantic errors).
    pub errors: u64,
    /// Sum of per-request reused flow groups.
    pub reused_groups: u64,
    /// Sum of per-request recomputed flow groups.
    pub recomputed_groups: u64,
    /// Sum of per-request cache-answered requirements.
    pub reused_reqs: u64,
    /// Sum of per-request re-checked requirements.
    pub rechecked_reqs: u64,
    /// Requests that forced a from-scratch rebuild.
    pub full_rebuilds: u64,
    /// Requests whose verdict delta was non-empty.
    pub verdict_flips: u64,
    /// Requests at or over the slow threshold.
    pub slow_requests: u64,
}

impl LifetimeStats {
    /// The JSON object embedded in responses.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("requests", Value::Int(self.requests as i128));
        m.insert("errors", Value::Int(self.errors as i128));
        m.insert("reused_groups", Value::Int(self.reused_groups as i128));
        m.insert(
            "recomputed_groups",
            Value::Int(self.recomputed_groups as i128),
        );
        m.insert("reused_reqs", Value::Int(self.reused_reqs as i128));
        m.insert("rechecked_reqs", Value::Int(self.rechecked_reqs as i128));
        m.insert("full_rebuilds", Value::Int(self.full_rebuilds as i128));
        m.insert("verdict_flips", Value::Int(self.verdict_flips as i128));
        m.insert("slow_requests", Value::Int(self.slow_requests as i128));
        Value::Map(m)
    }
}

/// A long-running incremental verification session.
pub struct ServeSession {
    inc: IncrementalVerifier,
    /// Violations of the current state (baseline of the next delta).
    violations: Vec<Violation>,
    config: ServeConfig,
    lifetime: LifetimeStats,
    /// Per-request-kind latency baselines of the regression detector.
    baselines: std::collections::BTreeMap<String, EwmaBaseline>,
}

impl ServeSession {
    /// Builds the session from a base spec: executes all flows (with
    /// route-dependency recording) and verifies once to establish the
    /// baseline verdict.
    pub fn new(spec: &VerifySpec, opts: YuOptions) -> ServeSession {
        ServeSession::with_config(spec, opts, ServeConfig::default())
    }

    /// [`ServeSession::new`] with explicit observability tunables.
    pub fn with_config(spec: &VerifySpec, opts: YuOptions, config: ServeConfig) -> ServeSession {
        let mut inc = IncrementalVerifier::new(
            spec.network.clone(),
            spec.flows.clone(),
            spec.tlp.clone(),
            opts,
        );
        let out = inc.verify();
        ServeSession {
            inc,
            violations: out.violations,
            config,
            lifetime: LifetimeStats::default(),
            baselines: std::collections::BTreeMap::new(),
        }
    }

    /// The incremental verifier (tests).
    pub fn verifier(&self) -> &IncrementalVerifier {
        &self.inc
    }

    /// Cumulative session totals so far.
    pub fn lifetime(&self) -> LifetimeStats {
        self.lifetime
    }

    /// The latency baseline trained for one request kind, if any
    /// request of that kind has been answered.
    pub fn baseline(&self, kind: &str) -> Option<EwmaBaseline> {
        self.baselines.get(kind).copied()
    }

    /// The banner printed when the session starts: a single JSON line
    /// announcing readiness and the baseline verdict.
    pub fn ready_line(&self) -> String {
        let net = self.inc.network();
        let mut m = Map::new();
        m.insert("ready", Value::Bool(true));
        m.insert("routers", Value::Int(net.topo.num_routers() as i128));
        m.insert("links", Value::Int(net.topo.num_ulinks() as i128));
        m.insert("flows", Value::Int(self.inc.flows().len() as i128));
        m.insert("reqs", Value::Int(self.inc.tlp().reqs.len() as i128));
        m.insert("verified", Value::Bool(self.violations.is_empty()));
        m.insert("violations", Value::Int(self.violations.len() as i128));
        Value::Map(m).to_string()
    }

    /// Handles one request line and returns one response line. Never
    /// panics on bad input; errors leave the verifier state untouched.
    pub fn handle_line(&mut self, line: &str) -> String {
        let t0 = Instant::now();
        let _req_span = yu_telemetry::span("serve.request");
        // Stage 1: is the line JSON at all?
        let value: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => return self.request_error(Value::Null, "parse", &e.to_string()),
        };
        let id = value
            .as_object()
            .and_then(|m| m.get("id"))
            .cloned()
            .unwrap_or(Value::Null);
        // Metrics requests answer from the registry without touching
        // verifier state (and without counting as change requests).
        if value
            .as_object()
            .and_then(|m| m.get("metrics"))
            .is_some_and(|v| !matches!(v, Value::Bool(false) | Value::Null))
        {
            return metrics_line(id, &self.lifetime);
        }
        // Stage 2: does it have the request shape (known change kinds)?
        let req: Request = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(e) => return self.request_error(id, "bad_request", &e.to_string()),
        };
        let id = req.id.map(Value::Int).unwrap_or(id);
        let cs = ChangeSet {
            changes: req.changes,
        };
        if yu_telemetry::events_enabled() {
            yu_telemetry::emit_event(
                EventLevel::Info,
                "request_start",
                vec![
                    ("id", id.clone()),
                    ("changes", Value::Int(cs.changes.len() as i128)),
                ],
            );
        }
        // Stage 3: apply atomically; semantic errors (unknown router,
        // bad index) are rejected before any state is touched.
        let kind = request_kind(&cs);
        match self.inc.apply(&cs) {
            Ok(out) => {
                let delta = self.inc.delta_stats();
                let (new_v, resolved) = violation_delta(&self.violations, &out.violations);
                self.record_success(&id, &kind, &out, &new_v, &resolved, delta, t0.elapsed());
                let line = success_line(id, &out, &new_v, &resolved, delta, &self.lifetime);
                self.violations = out.violations;
                line
            }
            Err(e) => self.request_error(id, "bad_request", &e.to_string()),
        }
    }

    /// Books a successful request into the lifetime totals, the metrics
    /// registry, and the event log. Pure observation: called after the
    /// outcome is computed, before the response is rendered.
    #[allow(clippy::too_many_arguments)]
    fn record_success(
        &mut self,
        id: &Value,
        kind: &str,
        out: &VerificationOutcome,
        new_v: &[Violation],
        resolved: &[Violation],
        delta: DeltaStats,
        elapsed: Duration,
    ) {
        let flipped = !new_v.is_empty() || !resolved.is_empty();
        let slow = elapsed >= self.config.slow_threshold;
        // Regression detection: judge against the pre-update baseline,
        // then train it. Wall-clock-dependent, so the signal goes only
        // to the registry and the event log — response lines stay
        // deterministic.
        let elapsed_us = elapsed.as_micros() as f64;
        let baseline = self.baselines.entry(kind.to_string()).or_default();
        let regressed = baseline.regressed(
            elapsed_us,
            self.config.regress_factor,
            self.config.regress_min_samples,
        );
        let baseline_us = baseline.mean_us;
        baseline.observe(elapsed_us, self.config.regress_alpha);
        if regressed {
            yu_telemetry::with_registry(|r| r.serve_perf_regressions_total.inc());
            if yu_telemetry::events_enabled() {
                yu_telemetry::emit_event(
                    EventLevel::Warn,
                    "perf_regression",
                    vec![
                        ("id", id.clone()),
                        ("kind", Value::Str(kind.to_string())),
                        ("elapsed_us", Value::Int(elapsed.as_micros() as i128)),
                        ("baseline_us", Value::Int(baseline_us as i128)),
                        ("factor", Value::Float(self.config.regress_factor)),
                    ],
                );
            }
        }
        let lt = &mut self.lifetime;
        lt.requests += 1;
        lt.reused_groups += delta.reused_groups as u64;
        lt.recomputed_groups += delta.recomputed_groups as u64;
        lt.reused_reqs += delta.reused_reqs as u64;
        lt.rechecked_reqs += delta.rechecked_reqs as u64;
        lt.full_rebuilds += u64::from(delta.full_rebuild);
        lt.verdict_flips += u64::from(flipped);
        lt.slow_requests += u64::from(slow);
        yu_telemetry::with_registry(|r| {
            r.serve_requests_total.inc();
            r.serve_request_seconds.record(elapsed.as_micros() as u64);
            if slow {
                r.serve_slow_requests_total.inc();
            }
            if flipped {
                r.serve_verdict_flips_total.inc();
            }
            r.serve_violations.set_u64(out.violations.len() as u64);
            let groups = delta.reused_groups + delta.recomputed_groups;
            if groups > 0 {
                r.serve_group_reuse_ratio
                    .set(delta.reused_groups as f64 / groups as f64);
            }
            let reqs = delta.reused_reqs + delta.rechecked_reqs;
            if reqs > 0 {
                r.serve_req_reuse_ratio
                    .set(delta.reused_reqs as f64 / reqs as f64);
            }
        });
        if yu_telemetry::events_enabled() {
            yu_telemetry::emit_event(
                EventLevel::Info,
                "request_finish",
                vec![
                    ("id", id.clone()),
                    ("verified", Value::Bool(out.verified())),
                    ("violations", Value::Int(out.violations.len() as i128)),
                    ("new_violations", Value::Int(new_v.len() as i128)),
                    ("resolved_violations", Value::Int(resolved.len() as i128)),
                    ("elapsed_us", Value::Int(elapsed.as_micros() as i128)),
                ],
            );
            if slow {
                yu_telemetry::emit_event(
                    EventLevel::Warn,
                    "slow_request",
                    vec![
                        ("id", id.clone()),
                        ("elapsed_us", Value::Int(elapsed.as_micros() as i128)),
                        (
                            "threshold_us",
                            Value::Int(self.config.slow_threshold.as_micros() as i128),
                        ),
                    ],
                );
            }
            if flipped {
                let topo = &self.inc.network().topo;
                let points = |vs: &[Violation]| {
                    Value::Seq(
                        vs.iter()
                            .map(|v| Value::Str(v.point.describe(topo)))
                            .collect(),
                    )
                };
                yu_telemetry::emit_event(
                    EventLevel::Warn,
                    "verdict_flip",
                    vec![
                        ("id", id.clone()),
                        ("new_points", points(new_v)),
                        ("resolved_points", points(resolved)),
                    ],
                );
            }
        }
    }

    /// Books a rejected request and renders the error response.
    fn request_error(&mut self, id: Value, kind: &'static str, message: &str) -> String {
        self.lifetime.errors += 1;
        yu_telemetry::with_registry(|r| r.serve_request_errors_total.inc());
        if yu_telemetry::events_enabled() {
            yu_telemetry::emit_event(
                EventLevel::Warn,
                "serve_error",
                vec![
                    ("id", id.clone()),
                    ("error_kind", Value::Str(kind.to_string())),
                    ("message", Value::Str(message.to_string())),
                ],
            );
        }
        error_line(id, kind, message)
    }
}

/// The structured error response (one line).
fn error_line(id: Value, kind: &str, message: &str) -> String {
    let mut err = Map::new();
    err.insert("kind", Value::Str(kind.to_string()));
    err.insert("message", Value::Str(message.to_string()));
    let mut root = Map::new();
    root.insert("id", id);
    root.insert("ok", Value::Bool(false));
    root.insert("error", Value::Map(err));
    Value::Map(root).to_string()
}

/// The metrics response: a registry snapshot plus session totals.
fn metrics_line(id: Value, lifetime: &LifetimeStats) -> String {
    let mut root = Map::new();
    root.insert("id", id);
    root.insert("ok", Value::Bool(true));
    root.insert("metrics", yu_telemetry::registry().snapshot().to_value());
    root.insert("lifetime", lifetime.to_value());
    Value::Map(root).to_string()
}

/// The success response (one line): verdict, verdict delta against the
/// previous state, per-request reuse statistics, and lifetime totals.
fn success_line(
    id: Value,
    out: &VerificationOutcome,
    new_v: &[Violation],
    resolved: &[Violation],
    delta: DeltaStats,
    lifetime: &LifetimeStats,
) -> String {
    let mut root = Map::new();
    root.insert("id", id);
    root.insert("ok", Value::Bool(true));
    root.insert("verified", Value::Bool(out.verified()));
    root.insert("violations", out.violations.to_value());
    root.insert("new_violations", new_v.to_value());
    root.insert("resolved_violations", resolved.to_value());
    root.insert("stats", stats_value(out, delta));
    root.insert("lifetime", lifetime.to_value());
    Value::Map(root).to_string()
}

/// Splits the verdict delta: violations present now but not before, and
/// violations present before but resolved now. Compared structurally
/// (point, scenario, load, bounds) — outcomes are bit-identical to
/// scratch runs, so equality is exact.
pub fn violation_delta(
    previous: &[Violation],
    current: &[Violation],
) -> (Vec<Violation>, Vec<Violation>) {
    let new_v = current
        .iter()
        .filter(|v| !previous.contains(v))
        .cloned()
        .collect();
    let resolved = previous
        .iter()
        .filter(|v| !current.contains(v))
        .cloned()
        .collect();
    (new_v, resolved)
}

/// The per-request statistics object: reuse counters plus the usual run
/// statistics.
pub fn stats_value(out: &VerificationOutcome, delta: DeltaStats) -> Value {
    let mut stats = Map::new();
    stats.insert("reused_groups", Value::Int(delta.reused_groups as i128));
    stats.insert(
        "recomputed_groups",
        Value::Int(delta.recomputed_groups as i128),
    );
    stats.insert("reused_reqs", Value::Int(delta.reused_reqs as i128));
    stats.insert("rechecked_reqs", Value::Int(delta.rechecked_reqs as i128));
    stats.insert("dirty_points", Value::Int(delta.dirty_points as i128));
    stats.insert("full_rebuild", Value::Bool(delta.full_rebuild));
    stats.insert("flow_groups", Value::Int(out.stats.flow_groups as i128));
    stats.insert("reqs_pruned", Value::Int(out.stats.reqs_pruned as i128));
    stats.insert(
        "route_secs",
        Value::Float(out.stats.route_time.as_secs_f64()),
    );
    stats.insert("exec_secs", Value::Float(out.stats.exec_time.as_secs_f64()));
    stats.insert(
        "check_secs",
        Value::Float(out.stats.check_time.as_secs_f64()),
    );
    Value::Map(stats)
}

/// Shared by `yu diff` and `Change` consumers: a change-set parsed from a
/// JSON string (the line format of the serve protocol's `changes` field).
pub fn parse_changes(json: &str) -> Result<Vec<Change>, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_baseline_arms_then_trips_then_retrains() {
        let (factor, alpha, min) = (3.0, 0.2, 5);
        let mut b = EwmaBaseline::default();
        // Training: the first `min` samples never trip, even wild ones.
        for us in [100.0, 5000.0, 120.0, 80.0, 110.0] {
            assert!(!b.regressed(us, factor, min));
            b.observe(us, alpha);
        }
        assert_eq!(b.samples, 5);
        // Armed: a sample within factor x baseline passes...
        assert!(!b.regressed(b.mean_us * 2.9, factor, min));
        // ...one beyond it trips.
        assert!(b.regressed(b.mean_us * 3.1, factor, min));
        // A persistent slowdown becomes the new normal: keep observing
        // the elevated latency and the alarm eventually clears.
        let slow = b.mean_us * 4.0;
        let mut alarms = 0;
        for _ in 0..40 {
            if b.regressed(slow, factor, min) {
                alarms += 1;
            }
            b.observe(slow, alpha);
        }
        assert!(alarms > 0, "the slowdown must alarm at first");
        assert!(
            !b.regressed(slow, factor, min),
            "after retraining the elevated latency is the baseline"
        );
        assert!(alarms < 40, "the alarm must not be permanent");
    }

    #[test]
    fn ewma_first_sample_seeds_the_mean() {
        let mut b = EwmaBaseline::default();
        b.observe(250.0, 0.2);
        assert_eq!(b.mean_us, 250.0);
        b.observe(350.0, 0.5);
        assert_eq!(b.mean_us, 300.0);
    }

    #[test]
    fn request_kind_keys_homogeneous_sets_by_change_kind() {
        let cost = |c: u64| Change::SetLinkCost {
            from: "A".into(),
            to: "B".into(),
            index: 0,
            cost: c,
        };
        let remove = Change::RemoveRouter { router: "A".into() };
        let kind = |changes: Vec<Change>| request_kind(&ChangeSet { changes });
        assert_eq!(kind(vec![]), "empty");
        assert_eq!(kind(vec![cost(5)]), "SetLinkCost");
        assert_eq!(kind(vec![cost(5), cost(7)]), "SetLinkCost");
        assert_eq!(kind(vec![cost(5), remove]), "mixed");
    }
}
