//! JSON verification specs: a self-contained description of a network,
//! its flows, the property to check, and the failure budget — the
//! interchange format of the `yu` CLI.

use serde::{Deserialize, Serialize};
use yu_analysis::Diagnostic;
use yu_net::{FailureMode, Flow, Network, Tlp};

/// A complete verification job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerifySpec {
    /// The network: topology plus per-router configuration.
    pub network: Network,
    /// The traffic matrix.
    pub flows: Vec<Flow>,
    /// The property to verify.
    pub tlp: Tlp,
    /// Failure budget.
    pub k: u32,
    /// What can fail.
    #[serde(default = "default_mode")]
    pub mode: FailureMode,
}

fn default_mode() -> FailureMode {
    FailureMode::Links
}

impl VerifySpec {
    /// Parses a spec from JSON.
    pub fn from_json(s: &str) -> Result<VerifySpec, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Serializes the spec as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("specs are always serializable")
    }

    /// Runs the full preflight lint over the spec — the network rules
    /// plus flow, TLP, and failure-budget checks — returning structured
    /// diagnostics with stable `YU0xx` codes (see `yu_analysis`). This
    /// is the single diagnostics path shared by `yu check`, `yu lint`,
    /// and library callers.
    pub fn validate(&self) -> Vec<Diagnostic> {
        yu_analysis::lint_spec(&self.network, &self.flows, &self.tlp, self.k, self.mode)
    }

    /// Whether [`Self::validate`] reports any error-severity diagnostic.
    pub fn has_errors(&self) -> bool {
        self.validate().iter().any(Diagnostic::is_error)
    }

    /// Runs the deep (semantic) lint: everything [`Self::validate`]
    /// reports, plus the graph-theoretic rules `YU021`–`YU032` —
    /// bridges, partitions within the failure budget, capacity-infeasible
    /// ingress volume, and bound-analysis verdicts (statically
    /// discharged, infeasible, or contradictory requirements). This is
    /// what `yu lint --deep` prints.
    pub fn validate_deep(&self) -> Vec<Diagnostic> {
        yu_analysis::lint_deep(&self.network, &self.flows, &self.tlp, self.k, self.mode)
    }
}

/// Exit-code policy for `yu lint`: errors always fail; warnings fail
/// only under `--deny-warnings`; notes never fail.
pub fn lint_ok(diags: &[Diagnostic], deny_warnings: bool) -> bool {
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.iter().filter(|d| d.is_warning()).count();
    errors == 0 && !(deny_warnings && warnings > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_gen::motivating_example;

    #[test]
    fn spec_roundtrips_through_json() {
        let ex = motivating_example();
        let spec = VerifySpec {
            network: ex.net,
            flows: ex.flows,
            tlp: ex.p2,
            k: 1,
            mode: FailureMode::Links,
        };
        let json = spec.to_json();
        let back = VerifySpec::from_json(&json).unwrap();
        assert_eq!(back.k, 1);
        assert_eq!(back.flows.len(), 2);
        assert_eq!(back.network.topo.num_routers(), 6);
        assert_eq!(back.tlp, spec.tlp);
        assert!(!back.has_errors());
    }

    #[test]
    fn mode_defaults_to_links() {
        let ex = motivating_example();
        let spec = VerifySpec {
            network: ex.net,
            flows: vec![],
            tlp: Tlp::new(),
            k: 2,
            mode: FailureMode::Links,
        };
        let mut v: serde_json::Value = serde_json::from_str(&spec.to_json()).unwrap();
        v.as_object_mut().unwrap().remove("mode");
        let back = VerifySpec::from_json(&v.to_string()).unwrap();
        assert_eq!(back.mode, FailureMode::Links);
    }

    #[test]
    fn validation_catches_bad_flows() {
        let ex = motivating_example();
        let mut spec = VerifySpec {
            network: ex.net,
            flows: ex.flows,
            tlp: Tlp::new(),
            k: 1,
            mode: FailureMode::Links,
        };
        spec.flows[0].ingress = yu_net::RouterId(99);
        let problems = spec.validate();
        let errors: Vec<_> = problems.iter().filter(|d| d.is_error()).collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].code, "YU014");
        assert!(errors[0].message.contains("ingress"));
    }
}
