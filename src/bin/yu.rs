//! The `yu` command-line verifier.
//!
//! ```text
//! yu export <fig1|fig9|fig10|ft4|n0|preflight> > spec.json
//!                                                    write a built-in example spec
//! yu lint spec.json [--json] [--deep]                preflight lint (YU0xx diagnostics;
//!           [--deny-warnings]                        --deep adds the semantic rules
//!                                                    YU021-YU032: bridges, partitions,
//!                                                    bound-analysis verdicts)
//! yu check spec.json                                 lint + summarize the spec
//! yu verify spec.json [--json] [--workers N]         verify the TLP under <= k failures
//!           [--check-workers N|auto]                 (check sharding defaults to 'auto':
//!           [--no-static-prune]                      a cost model degrades to sequential
//!           [--explain] [--max-violations N]         when sharding cannot pay for setup)
//!           [-v] [--trace-out t.json] [--metrics-out m.json]
//!           [--profile-out p.json]
//! yu profile spec.json [--json] [--top N]            verify with per-entity performance
//!           [--folded-out stacks.folded]             attribution: which flows/requirements
//!                                                    cost the time and the arena nodes,
//!                                                    live nodes per variable level, cache
//!                                                    and kernel profiles, call-path self
//!                                                    times; --folded-out writes flamegraph
//!                                                    folded stacks (flamegraph.pl/inferno)
//! yu explain spec.json [--json] [--dot-out f.dot]    forensic report per violation:
//!           [--max-violations N]                     per-flow blame, rerouted paths,
//!                                                    concrete replay, load envelope
//! yu loads spec.json [--fail A-B,C-D]                per-link loads under a scenario
//! yu scenarios spec.json                             size of the scenario space
//! yu rib spec.json --router <name> --dst <ip>        symbolic FIB of one router
//! yu diff old.json new.json [--json]                 incremental re-verification: verdict
//!                                                    delta between two specs, recomputing
//!                                                    only what the change invalidated
//! yu serve --spec base.json                          JSON-lines daemon: one change-set
//!           [--prom-out m.prom]                      request per line, one verdict-delta
//!           [--events-out e.jsonl] [--slow-ms N]     response per line (see yu::serve).
//!           [--regress-factor X]                     --prom-out atomically rewrites a
//!                                                    Prometheus text exposition after
//!                                                    each request; --events-out appends
//!                                                    structured JSON events; --slow-ms
//!                                                    sets the slow-request threshold;
//!                                                    --regress-factor sets the EWMA
//!                                                    latency-regression multiple
//! ```
//!
//! Specs are self-contained JSON (network + flows + TLP + k); see
//! `yu::spec::VerifySpec` and `yu export` for the format.
//!
//! Forensics: `yu explain` (and `yu verify --explain`) re-verifies the
//! spec, then builds an [`yu::core::Explanation`] for each violation —
//! per-flow blame that sums exactly to the violating load, a before/after
//! rerouted-path diff, an independent concrete replay cross-check, and the
//! load envelope at the violated point. `--max-violations N` enumerates up
//! to `N` violating scenarios per requirement (fewest failures first)
//! instead of the default single counterexample; `--dot-out FILE` writes a
//! Graphviz overlay of the rerouted paths per explanation.
//!
//! Profiling: `yu profile` runs the same verification as `yu verify` with
//! per-entity attribution capture on ([`yu::core::YuOptions::profile`])
//! and reports where the wall time and the arena nodes went — per flow
//! group, per requirement, per variable level, per operation cache, and
//! per call path (self times reconstructed from the telemetry spans).
//! Capture is observer-only: a profiled run is bit-identical to a plain
//! one. Set `YU_ENGINE_PROFILE=1` to additionally track kernel recursion
//! depth maxima. `yu verify --profile-out FILE` writes the same
//! attribution object as JSON without changing the human output.
//!
//! Telemetry: `--trace-out FILE` writes Chrome trace-event JSON (load it
//! in `chrome://tracing` or Perfetto), `--metrics-out FILE` writes the
//! per-stage metrics digest, and `-v`/`--verbose` prints the per-stage
//! time table on stderr. The `YU_TRACE`/`YU_METRICS`/`YU_VERBOSE`
//! environment variables are defaults for the same (mirroring
//! `YU_AUDIT`/`YU_WORKERS`): `1`/`true` enables with the default output
//! name (`yu-trace.json`/`yu-metrics.json`), any other non-empty value
//! is used as the output path.

use std::process::ExitCode;
use yu::core::{YuOptions, YuVerifier};
use yu::mtbdd::Ratio;
use yu::net::{scenario_count, FailureMode, LoadPoint, Scenario, Tlp};
use yu::spec::VerifySpec;

/// The resolved `--check-workers` argument: a worker count, fixed
/// (`auto = false`) or treated as a cap by the check stage's cost model
/// (`auto = true`, see `YuOptions::check_workers_auto`).
#[derive(Clone, Copy)]
struct CheckWorkersArg {
    workers: usize,
    auto: bool,
}

/// Hardware threads available to this process (1 when unknown).
fn hw_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Positional arguments: everything that is neither a flag nor the
    // value of a value-taking flag.
    const VALUE_FLAGS: [&str; 17] = [
        "--fail",
        "--workers",
        "--check-workers",
        "--router",
        "--dst",
        "--trace-out",
        "--metrics-out",
        "--max-violations",
        "--dot-out",
        "--spec",
        "--prom-out",
        "--events-out",
        "--slow-ms",
        "--profile-out",
        "--folded-out",
        "--top",
        "--regress-factor",
    ];
    let mut pos = args.iter().enumerate().filter_map(|(i, a)| {
        let is_flag_value = i > 0 && VALUE_FLAGS.iter().any(|f| args[i - 1] == *f);
        (!a.starts_with('-') && !is_flag_value).then_some(a)
    });
    let cmd = pos.next().map(String::as_str).unwrap_or("help");
    let arg = pos.next().cloned();
    let arg2 = pos.next().cloned();
    let json_output = args.iter().any(|a| a == "--json");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let fail_arg = flag_value("--fail");
    let workers = match args.iter().position(|a| a == "--workers") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(w) if w >= 1 => w,
            _ => {
                eprintln!("error: --workers takes a positive integer");
                return ExitCode::from(2);
            }
        },
        None => yu::core::default_workers(),
    };
    let check_workers_flag = match args.iter().position(|a| a == "--check-workers") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("auto") => Some(CheckWorkersArg {
                workers: hw_parallelism(),
                auto: true,
            }),
            Some(v) => match v.parse::<usize>() {
                Ok(w) if w >= 1 => Some(CheckWorkersArg {
                    workers: w,
                    auto: false,
                }),
                _ => {
                    eprintln!("error: --check-workers takes a positive integer or 'auto'");
                    return ExitCode::from(2);
                }
            },
            None => {
                eprintln!("error: --check-workers takes a positive integer or 'auto'");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    // `yu verify` defaults to the auto cost model (degrading to a
    // sequential check when sharding cannot pay for its setup); an
    // explicit flag or a YU_CHECK_WORKERS override always wins.
    let check_workers = check_workers_flag.unwrap_or_else(|| {
        if cmd == "verify" && std::env::var_os("YU_CHECK_WORKERS").is_none() {
            CheckWorkersArg {
                workers: hw_parallelism(),
                auto: true,
            }
        } else {
            CheckWorkersArg {
                workers: yu::core::default_check_workers(),
                auto: false,
            }
        }
    });
    let max_violations = match args.iter().position(|a| a == "--max-violations") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --max-violations takes a positive integer");
                return ExitCode::from(2);
            }
        },
        None => 1,
    };
    let top = match args.iter().position(|a| a == "--top") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) => n,
            None => {
                eprintln!("error: --top takes a non-negative integer (0 = all)");
                return ExitCode::from(2);
            }
        },
        None => 10,
    };
    let dot_out = flag_value("--dot-out");
    let explain_flag = args.iter().any(|a| a == "--explain");
    let deep = args.iter().any(|a| a == "--deep");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let static_prune = !args.iter().any(|a| a == "--no-static-prune");
    let telemetry = TelemetryArgs {
        trace_out: flag_value("--trace-out").or_else(|| env_out("YU_TRACE", "yu-trace.json")),
        metrics_out: flag_value("--metrics-out")
            .or_else(|| env_out("YU_METRICS", "yu-metrics.json")),
        verbose: args.iter().any(|a| a == "-v" || a == "--verbose")
            || env_out("YU_VERBOSE", "").is_some(),
    };

    match cmd {
        "export" => export(arg.as_deref().unwrap_or("fig1")),
        "lint" => lint(&load(&arg), json_output, deep, deny_warnings),
        "check" => check(&load(&arg)),
        "verify" => verify(
            &load(&arg),
            json_output,
            workers,
            check_workers,
            &telemetry,
            VerifyFlags {
                explain: explain_flag,
                max_violations,
                static_prune,
                profile_out: flag_value("--profile-out"),
            },
        ),
        "profile" => profile(
            &load(&arg),
            json_output,
            workers,
            check_workers,
            &telemetry,
            ProfileArgs {
                top,
                folded_out: flag_value("--folded-out"),
                static_prune,
            },
        ),
        "explain" => explain(
            &load(&arg),
            json_output,
            workers,
            check_workers,
            &telemetry,
            max_violations,
            dot_out.as_deref(),
        ),
        "loads" => loads(&load(&arg), fail_arg.as_deref()),
        "scenarios" => scenarios(&load(&arg)),
        "rib" => rib(&load(&arg), &args),
        "diff" => diff(
            &load(&arg),
            &load(&arg2),
            json_output,
            workers,
            check_workers,
            static_prune,
            &telemetry,
        ),
        "serve" => {
            let slow_ms = match args.iter().position(|a| a == "--slow-ms") {
                Some(i) => match args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) {
                    Some(ms) => ms,
                    None => {
                        eprintln!("error: --slow-ms takes a non-negative integer (milliseconds)");
                        return ExitCode::from(2);
                    }
                },
                None => 1000,
            };
            let regress_factor = match args.iter().position(|a| a == "--regress-factor") {
                Some(i) => match args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
                    Some(f) if f > 1.0 => f,
                    _ => {
                        eprintln!("error: --regress-factor takes a number > 1.0");
                        return ExitCode::from(2);
                    }
                },
                None => yu::serve::ServeConfig::default().regress_factor,
            };
            serve(
                flag_value("--spec").or(arg),
                workers,
                check_workers,
                static_prune,
                &telemetry,
                ServeObsArgs {
                    prom_out: flag_value("--prom-out"),
                    events_out: flag_value("--events-out"),
                    slow_ms,
                    regress_factor,
                },
            )
        }
        other => {
            if other != "help" {
                eprintln!("unknown command '{other}'");
            }
            eprintln!(
                "usage: yu <export|lint|check|verify|profile|explain|loads|scenarios|rib|diff\
                 |serve> [spec.json] \
                 [--json] [--deep] [--deny-warnings] [--workers N] [--check-workers N|auto] \
                 [--no-static-prune] [--explain] [--max-violations N] \
                 [--dot-out FILE] [--fail A-B,C-D] [--router <name> --dst <ip>] \
                 [--spec base.json] [-v] [--trace-out FILE] [--metrics-out FILE] \
                 [--profile-out FILE] [--top N] [--folded-out FILE] \
                 [--prom-out FILE] [--events-out FILE] [--slow-ms N] [--regress-factor X]"
            );
            ExitCode::from(2)
        }
    }
}

/// Telemetry-related command-line state for `yu verify`.
struct TelemetryArgs {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    verbose: bool,
}

impl TelemetryArgs {
    fn wants_recording(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.verbose
    }
}

/// Resolves a `YU_TRACE`-style environment default: unset/`0`/`false` =
/// off, `1`/`true` = on with `default_name` as the output path, anything
/// else = on with the value as the output path.
fn env_out(var: &str, default_name: &str) -> Option<String> {
    match std::env::var(var) {
        Ok(v) if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false") => None,
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Some(default_name.to_string()),
        Ok(v) => Some(v),
        Err(_) => None,
    }
}

fn load(path: &Option<String>) -> VerifySpec {
    let path = path.as_deref().unwrap_or_else(|| {
        eprintln!("error: missing spec path");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    VerifySpec::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: invalid spec: {e}");
        std::process::exit(2);
    })
}

fn export(which: &str) -> ExitCode {
    let spec = match which {
        "fig1" => {
            let ex = yu::gen::motivating_example();
            VerifySpec {
                network: ex.net,
                flows: ex.flows,
                tlp: ex.p2,
                k: 1,
                mode: FailureMode::Links,
            }
        }
        "fig9" => {
            let inc = yu::gen::sr_anycast_incident();
            VerifySpec {
                network: inc.net,
                flows: inc.flows,
                tlp: inc.tlp,
                k: 1,
                mode: FailureMode::Links,
            }
        }
        "fig10" => {
            let inc = yu::gen::static_blackhole_incident();
            VerifySpec {
                network: inc.net,
                flows: inc.flows,
                tlp: inc.tlp,
                k: 1,
                mode: FailureMode::Links,
            }
        }
        "ft4" => {
            let (ft, flows) = yu::gen::fattree_with_flows(4, 16);
            let tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
            VerifySpec {
                network: ft.net,
                flows,
                tlp,
                k: 2,
                mode: FailureMode::Links,
            }
        }
        "n0" => {
            let w = yu::gen::wan(yu::gen::WanPreset::N0.params());
            let flows = w.flows(2000, 0xF10F);
            let tlp = Tlp::no_overload(&w.net.topo, Ratio::new(95, 100));
            VerifySpec {
                network: w.net,
                flows,
                tlp,
                k: 2,
                mode: FailureMode::Links,
            }
        }
        "preflight" => {
            let ex = yu::gen::preflight_example();
            VerifySpec {
                network: ex.net,
                flows: ex.flows,
                tlp: ex.tlp,
                k: 1,
                mode: FailureMode::Links,
            }
        }
        other => {
            eprintln!("unknown example '{other}' (try fig1, fig9, fig10, ft4, n0, preflight)");
            return ExitCode::from(2);
        }
    };
    println!("{}", spec.to_json());
    ExitCode::SUCCESS
}

fn lint(spec: &VerifySpec, json_output: bool, deep: bool, deny_warnings: bool) -> ExitCode {
    let diags = if deep {
        spec.validate_deep()
    } else {
        spec.validate()
    };
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.iter().filter(|d| d.is_warning()).count();
    if json_output {
        println!(
            "{}",
            serde_json::to_string_pretty(&diags).expect("diagnostics are serializable")
        );
    } else {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!(
            "{} error(s), {} warning(s), {} note(s)",
            errors,
            warnings,
            diags.len() - errors - warnings
        );
    }
    if yu::spec::lint_ok(&diags, deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn check(spec: &VerifySpec) -> ExitCode {
    let diags = spec.validate();
    for d in &diags {
        eprintln!("{d}");
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    if errors == 0 {
        println!(
            "ok: {} routers, {} links, {} flows, {} requirements, k={} ({:?})",
            spec.network.topo.num_routers(),
            spec.network.topo.num_ulinks(),
            spec.flows.len(),
            spec.tlp.reqs.len(),
            spec.k,
            spec.mode,
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Behavior switches for `yu verify` beyond the worker counts.
struct VerifyFlags {
    explain: bool,
    max_violations: usize,
    static_prune: bool,
    /// `--profile-out FILE`: capture per-entity attribution and write it
    /// to FILE as JSON (the same object `yu profile --json` embeds).
    profile_out: Option<String>,
}

fn verify(
    spec: &VerifySpec,
    json_output: bool,
    workers: usize,
    check_workers: CheckWorkersArg,
    telemetry: &TelemetryArgs,
    flags: VerifyFlags,
) -> ExitCode {
    if telemetry.wants_recording() {
        yu::telemetry::set_enabled(true);
    }
    let mut v = YuVerifier::new(
        spec.network.clone(),
        YuOptions {
            k: spec.k,
            mode: spec.mode,
            workers,
            check_workers: check_workers.workers,
            check_workers_auto: check_workers.auto,
            static_prune: flags.static_prune,
            profile: flags.profile_out.is_some(),
            ..Default::default()
        },
    );
    v.add_flows(&spec.flows);
    let out = if flags.max_violations > 1 {
        v.verify_enumerated(&spec.tlp, flags.max_violations)
    } else {
        v.verify(&spec.tlp)
    };
    let explanations: Vec<yu::core::Explanation> = if flags.explain {
        out.violations.iter().map(|vi| v.explain(vi)).collect()
    } else {
        Vec::new()
    };
    if json_output {
        println!(
            "{}",
            verify_json(&out, flags.explain.then_some(explanations.as_slice()))
        );
    } else if out.verified() {
        println!(
            "VERIFIED: the property holds under every scenario with <= {} {} failures",
            spec.k,
            mode_noun(spec.mode)
        );
    } else {
        println!("VIOLATED ({} findings):", out.violations.len());
        for vi in &out.violations {
            println!("  {}", vi.describe(&spec.network.topo));
        }
        for ex in &explanations {
            println!();
            println!("{}", ex.describe(&spec.network.topo));
        }
    }
    // With --json, stdout carries only the machine-readable result
    // object; the human stats line moves to stderr.
    let stats = format!(
        "({} flows -> {} groups; {} req(s) statically discharged; \
         route {:?}, exec {:?}, check {:?})",
        out.stats.flows_in,
        out.stats.flow_groups,
        out.stats.reqs_pruned,
        out.stats.route_time,
        out.stats.exec_time,
        out.stats.check_time
    );
    if json_output {
        eprintln!("{stats}");
    } else {
        println!("{stats}");
    }
    if let Some(path) = &flags.profile_out {
        let attr = out
            .stats
            .attribution
            .as_ref()
            .expect("profile runs carry attribution");
        let json = serde_json::to_string_pretty(attr).expect("serializable");
        match std::fs::write(path, json + "\n") {
            Ok(()) => eprintln!("attribution written to {path}"),
            Err(e) => eprintln!("error: cannot write attribution to {path}: {e}"),
        }
    }
    export_telemetry(telemetry);
    if out.verified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Presentation switches for `yu profile`.
struct ProfileArgs {
    /// Rows per table (`--top N`, 0 = all).
    top: usize,
    /// `--folded-out FILE`: write flamegraph folded stacks.
    folded_out: Option<String>,
    static_prune: bool,
}

/// Human-scale wall time: `987us`, `12.34ms`, `1.23s`.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// The `yu profile` subcommand: run the same verification as
/// `yu verify` with attribution capture on, then report where the wall
/// time and the arena nodes went — per flow group, per requirement, per
/// variable level, per operation cache, and per telemetry call path.
fn profile(
    spec: &VerifySpec,
    json_output: bool,
    workers: usize,
    check_workers: CheckWorkersArg,
    telemetry: &TelemetryArgs,
    args: ProfileArgs,
) -> ExitCode {
    // Spans feed the call-path table and the folded-stack export, so a
    // profile run always records telemetry even without --trace-out.
    yu::telemetry::set_enabled(true);
    let mut v = YuVerifier::new(
        spec.network.clone(),
        YuOptions {
            k: spec.k,
            mode: spec.mode,
            workers,
            check_workers: check_workers.workers,
            check_workers_auto: check_workers.auto,
            static_prune: args.static_prune,
            profile: true,
            ..Default::default()
        },
    );
    v.add_flows(&spec.flows);
    let out = v.verify(&spec.tlp);
    let attr = out
        .stats
        .attribution
        .clone()
        .expect("profile runs carry attribution");
    // Variable levels are failure variables; name them after the link or
    // router they model.
    let level_label = |var: u32| match v.failure_vars().element_of(var) {
        Some(yu::net::FailureElement::Link(u)) => spec.network.topo.ulink_label(u),
        Some(yu::net::FailureElement::Router(r)) => spec.network.topo.router(r).name.clone(),
        None => format!("var{var}"),
    };
    let report = yu::telemetry::snapshot();
    let paths = report.span_attribution();

    if json_output {
        use serde::{Map, Serialize, Value};
        let mut stats = Map::new();
        stats.insert(
            "route_secs",
            Value::Float(out.stats.route_time.as_secs_f64()),
        );
        stats.insert("exec_secs", Value::Float(out.stats.exec_time.as_secs_f64()));
        stats.insert(
            "check_secs",
            Value::Float(out.stats.check_time.as_secs_f64()),
        );
        stats.insert("flows_in", Value::Int(out.stats.flows_in as i128));
        stats.insert("flow_groups", Value::Int(out.stats.flow_groups as i128));
        stats.insert("reqs_pruned", Value::Int(out.stats.reqs_pruned as i128));
        stats.insert("mtbdd", out.stats.mtbdd.to_value());
        let mut root = Map::new();
        root.insert("verified", Value::Bool(out.verified()));
        root.insert("reconciles", Value::Bool(attr.reconciles()));
        root.insert("attribution", attr.to_value());
        root.insert("span_attribution", paths.to_value());
        root.insert("stats", Value::Map(stats));
        println!(
            "{}",
            serde_json::to_string_pretty(&Value::Map(root)).expect("serializable")
        );
    } else {
        print_profile_tables(spec, &out, &attr, &paths, args.top, level_label);
    }

    if let Some(path) = &args.folded_out {
        match std::fs::write(path, report.folded_stacks()) {
            Ok(()) => {
                eprintln!("folded stacks written to {path} (render with flamegraph.pl or inferno)")
            }
            Err(e) => eprintln!("error: cannot write folded stacks to {path}: {e}"),
        }
    }
    export_telemetry(telemetry);
    if out.verified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders the human-readable attribution report of `yu profile`.
fn print_profile_tables(
    spec: &VerifySpec,
    out: &yu::core::VerificationOutcome,
    attr: &yu::core::Attribution,
    paths: &[yu::telemetry::FrameRow],
    top: usize,
    level_label: impl Fn(u32) -> String,
) {
    let verdict = if out.verified() {
        "VERIFIED".to_string()
    } else {
        format!("VIOLATED ({} findings)", out.violations.len())
    };
    println!(
        "{verdict} under <= {} {} failures; {} flows -> {} groups, {} requirement(s) \
         ({} statically discharged)",
        spec.k,
        mode_noun(spec.mode),
        out.stats.flows_in,
        out.stats.flow_groups,
        spec.tlp.reqs.len(),
        out.stats.reqs_pruned,
    );
    println!();
    println!("phase         wall        arena nodes");
    println!(
        "  route     {:>9}   {} created by route simulation",
        fmt_us(out.stats.route_time.as_micros() as u64),
        attr.route_nodes,
    );
    for (name, phase) in [
        ("exec", &attr.exec),
        ("import", &attr.import),
        ("check", &attr.check),
    ] {
        println!(
            "  {:<8}  {:>9}   {:+} over {} entit{}",
            name,
            fmt_us(phase.wall_us),
            phase.nodes_delta,
            phase.entities.len(),
            if phase.entities.len() == 1 {
                "y"
            } else {
                "ies"
            },
        );
    }

    let entity_table = |title: &str, phase: &yu::core::PhaseAttribution| {
        if phase.entities.is_empty() {
            return;
        }
        println!();
        println!("{title}:");
        println!("       wall      Δnodes   entity");
        for e in phase.top_by_wall(top) {
            println!(
                "  {:>9}  {:>+9}   {}",
                fmt_us(e.wall_us),
                e.nodes_delta,
                e.label
            );
        }
        let shown = if top == 0 {
            phase.entities.len()
        } else {
            top.min(phase.entities.len())
        };
        if shown < phase.entities.len() {
            println!("  ... {} more (raise --top)", phase.entities.len() - shown);
        }
    };
    entity_table("top flow groups by exec wall time", &attr.exec);
    entity_table("top flow groups by import wall time", &attr.import);
    entity_table("top requirements by check wall time", &attr.check);

    println!();
    println!(
        "arena levels: {} live inner nodes over {} level(s), {} terminal(s)",
        attr.levels.inner_nodes,
        attr.levels.levels.len(),
        attr.levels.terminals,
    );
    let mut widest: Vec<_> = attr.levels.levels.clone();
    widest.sort_by(|a, b| b.nodes.cmp(&a.nodes).then(a.var.cmp(&b.var)));
    if top > 0 {
        widest.truncate(top);
    }
    for l in &widest {
        println!(
            "  {:>7} nodes   var {} ({})",
            l.nodes,
            l.var,
            level_label(l.var)
        );
    }

    println!();
    println!("operation caches:");
    for c in &attr.caches {
        let lookups = c.hits + c.misses;
        let rate = if lookups == 0 {
            0.0
        } else {
            c.hits as f64 / lookups as f64
        };
        println!(
            "  {:<6} {:>8} entries / {:>8} cap ({:>4.0}% load)  {} hits / {} misses \
             ({:.1}% hit)  {} evicted  probe mean {:.2} max {}",
            c.name,
            c.len,
            c.capacity,
            c.load_factor * 100.0,
            c.hits,
            c.misses,
            rate * 100.0,
            c.evictions,
            c.probe.mean,
            c.probe.max,
        );
    }
    if attr.engine.enabled {
        println!(
            "kernel recursion depth maxima: apply {}, fused {}, kreduce {}",
            attr.engine.apply_max_depth, attr.engine.fused_max_depth, attr.engine.kreduce_max_depth,
        );
    } else {
        println!("kernel recursion depths: not tracked (set YU_ENGINE_PROFILE=1)");
    }

    if !paths.is_empty() {
        println!();
        println!("call paths by self time:");
        println!("       self      total   calls   path");
        for p in paths.iter().take(if top == 0 { paths.len() } else { top }) {
            println!(
                "  {:>9}  {:>9}  {:>6}   {}",
                fmt_us(p.self_us),
                fmt_us(p.total_us),
                p.count,
                p.stack,
            );
        }
    }

    println!();
    println!(
        "attribution {}: per-entity node deltas telescope to the phase totals",
        if attr.reconciles() {
            "reconciles"
        } else {
            "DOES NOT RECONCILE"
        },
    );
}

/// The `yu diff` subcommand: verify `old`, switch the same incremental
/// verifier to `new`, and report the verdict delta plus what was reused.
fn diff(
    old: &VerifySpec,
    new: &VerifySpec,
    json_output: bool,
    workers: usize,
    check_workers: CheckWorkersArg,
    static_prune: bool,
    telemetry: &TelemetryArgs,
) -> ExitCode {
    if telemetry.wants_recording() {
        yu::telemetry::set_enabled(true);
    }
    let opts = YuOptions {
        k: old.k,
        mode: old.mode,
        workers,
        check_workers: check_workers.workers,
        check_workers_auto: check_workers.auto,
        static_prune,
        ..Default::default()
    };
    let mut inc = yu::core::IncrementalVerifier::new(
        old.network.clone(),
        old.flows.clone(),
        old.tlp.clone(),
        opts,
    );
    let base = inc.verify();
    let out = if old.k != new.k || old.mode != new.mode {
        // A different failure budget or mode changes the scenario space
        // itself — nothing symbolic is reusable; start over on `new`.
        inc = yu::core::IncrementalVerifier::new(
            new.network.clone(),
            new.flows.clone(),
            new.tlp.clone(),
            YuOptions {
                k: new.k,
                mode: new.mode,
                ..opts
            },
        );
        inc.verify()
    } else {
        inc.set_state(new.network.clone(), new.flows.clone(), new.tlp.clone())
    };
    let delta = inc.delta_stats();
    let (new_v, resolved) = yu::serve::violation_delta(&base.violations, &out.violations);
    if json_output {
        use serde::{Map, Serialize, Value};
        let mut root = Map::new();
        root.insert("verified", Value::Bool(out.verified()));
        root.insert("violations", out.violations.to_value());
        root.insert("new_violations", new_v.to_value());
        root.insert("resolved_violations", resolved.to_value());
        root.insert("stats", yu::serve::stats_value(&out, delta));
        println!(
            "{}",
            serde_json::to_string_pretty(&Value::Map(root)).expect("serializable")
        );
    } else {
        if out.verified() {
            println!(
                "VERIFIED: the new spec holds under every scenario with <= {} {} failures",
                new.k,
                mode_noun(new.mode)
            );
        } else {
            println!("VIOLATED ({} findings):", out.violations.len());
            for vi in &out.violations {
                println!("  {}", vi.describe(&new.network.topo));
            }
        }
        println!(
            "delta: +{} -{} violation(s); {} group(s) reused, {} recomputed; \
             {} req(s) reused, {} rechecked{}",
            new_v.len(),
            resolved.len(),
            delta.reused_groups,
            delta.recomputed_groups,
            delta.reused_reqs,
            delta.rechecked_reqs,
            if delta.full_rebuild {
                " (full rebuild)"
            } else {
                ""
            }
        );
    }
    export_telemetry(telemetry);
    if out.verified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Observability flags of `yu serve`: Prometheus exposition file,
/// structured event log, and the slow-request threshold.
struct ServeObsArgs {
    prom_out: Option<String>,
    events_out: Option<String>,
    slow_ms: u64,
    /// `--regress-factor X`: a request slower than X times its kind's
    /// EWMA baseline emits a `perf_regression` event.
    regress_factor: f64,
}

/// Atomically rewrites the Prometheus exposition file: write a sibling
/// temp file, then rename over the target, so a scraper (or the node
/// exporter's textfile collector) never reads a torn exposition.
fn write_prometheus(path: &str) {
    let text = yu::telemetry::snapshot_prometheus();
    let tmp = format!("{path}.tmp");
    if std::fs::write(&tmp, text).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// The `yu serve` subcommand: read JSON-lines change-set requests from
/// stdin, write one verdict-delta response line each, until EOF.
fn serve(
    spec_path: Option<String>,
    workers: usize,
    check_workers: CheckWorkersArg,
    static_prune: bool,
    telemetry: &TelemetryArgs,
    obs: ServeObsArgs,
) -> ExitCode {
    use std::io::{BufRead, Write};
    if telemetry.wants_recording() {
        yu::telemetry::set_enabled(true);
    }
    if let Some(path) = &obs.events_out {
        if let Err(e) = yu::telemetry::set_event_sink_file(std::path::Path::new(path)) {
            eprintln!("error: cannot open --events-out {path}: {e}");
            return ExitCode::from(2);
        }
    }
    let spec = load(&spec_path);
    let opts = YuOptions {
        k: spec.k,
        mode: spec.mode,
        workers,
        check_workers: check_workers.workers,
        check_workers_auto: check_workers.auto,
        static_prune,
        ..Default::default()
    };
    let config = yu::serve::ServeConfig {
        slow_threshold: std::time::Duration::from_millis(obs.slow_ms),
        regress_factor: obs.regress_factor,
        ..Default::default()
    };
    let mut session = yu::serve::ServeSession::with_config(&spec, opts, config);
    let stdout = std::io::stdout();
    {
        let mut out = stdout.lock();
        let _ = writeln!(out, "{}", session.ready_line());
        let _ = out.flush();
    }
    if let Some(path) = &obs.prom_out {
        write_prometheus(path);
    }
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let resp = session.handle_line(&line);
        {
            let mut out = stdout.lock();
            if writeln!(out, "{resp}").is_err() {
                break;
            }
            let _ = out.flush();
        }
        if let Some(path) = &obs.prom_out {
            write_prometheus(path);
        }
    }
    if let Some(path) = &obs.prom_out {
        write_prometheus(path);
    }
    export_telemetry(telemetry);
    yu::telemetry::close_event_sink();
    ExitCode::SUCCESS
}

/// Failure-mode noun for human verdict lines.
fn mode_noun(mode: FailureMode) -> &'static str {
    match mode {
        FailureMode::Links => "link",
        FailureMode::Routers => "router",
        FailureMode::LinksAndRouters => "element",
    }
}

/// The `yu explain` subcommand: verify (enumerating up to
/// `max_violations` scenarios per requirement) and print a full forensic
/// report — per-flow blame, rerouted paths, concrete replay, load
/// envelope — for every violation found.
fn explain(
    spec: &VerifySpec,
    json_output: bool,
    workers: usize,
    check_workers: CheckWorkersArg,
    telemetry: &TelemetryArgs,
    max_violations: usize,
    dot_out: Option<&str>,
) -> ExitCode {
    if telemetry.wants_recording() {
        yu::telemetry::set_enabled(true);
    }
    let mut v = YuVerifier::new(
        spec.network.clone(),
        YuOptions {
            k: spec.k,
            mode: spec.mode,
            workers,
            check_workers: check_workers.workers,
            check_workers_auto: check_workers.auto,
            ..Default::default()
        },
    );
    v.add_flows(&spec.flows);
    let out = v.verify_enumerated(&spec.tlp, max_violations);
    let explanations: Vec<yu::core::Explanation> =
        out.violations.iter().map(|vi| v.explain(vi)).collect();
    if json_output {
        println!("{}", explain_json(&out, &explanations));
    } else if out.verified() {
        println!(
            "VERIFIED: the property holds under every scenario with <= {} {} failures \
             -- nothing to explain",
            spec.k,
            mode_noun(spec.mode)
        );
    } else {
        println!("VIOLATED ({} findings):", out.violations.len());
        for (i, ex) in explanations.iter().enumerate() {
            if i > 0 {
                println!();
            }
            println!("{}", ex.describe(&spec.network.topo));
        }
    }
    if let Some(base) = dot_out {
        for (i, ex) in explanations.iter().enumerate() {
            let path = dot_path(base, i, explanations.len());
            match std::fs::write(&path, yu::core::explanation_dot(&spec.network.topo, ex)) {
                Ok(()) => eprintln!("dot overlay written to {path}"),
                Err(e) => eprintln!("error: cannot write dot to {path}: {e}"),
            }
        }
    }
    export_telemetry(telemetry);
    if out.verified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Output path for the `i`-th dot overlay: the base path as-is for a
/// single explanation, otherwise `base.dot` -> `base.2.dot` etc.
fn dot_path(base: &str, i: usize, total: usize) -> String {
    if total <= 1 || i == 0 {
        return base.to_string();
    }
    match base.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{}.{ext}", i + 1),
        None => format!("{base}.{}", i + 1),
    }
}

/// The `yu explain --json` result object: verdict, violations, and one
/// explanation per violation (blame, path diffs, replay, envelope).
fn explain_json(
    out: &yu::core::VerificationOutcome,
    explanations: &[yu::core::Explanation],
) -> String {
    use serde::{Map, Serialize, Value};
    let mut root = Map::new();
    root.insert("verified", Value::Bool(out.verified()));
    root.insert("violations", out.violations.to_value());
    root.insert("explanations", explanations.to_value());
    serde_json::to_string_pretty(&Value::Map(root)).expect("serializable")
}

/// The `yu verify --json` result object: verdict, violations, and run
/// statistics (durations in seconds; `telemetry` only when enabled;
/// `explanations` only under `--explain`).
fn verify_json(
    out: &yu::core::VerificationOutcome,
    explanations: Option<&[yu::core::Explanation]>,
) -> String {
    use serde::{Map, Serialize, Value};
    let mut stats = Map::new();
    stats.insert(
        "route_secs",
        Value::Float(out.stats.route_time.as_secs_f64()),
    );
    stats.insert("exec_secs", Value::Float(out.stats.exec_time.as_secs_f64()));
    stats.insert(
        "check_secs",
        Value::Float(out.stats.check_time.as_secs_f64()),
    );
    stats.insert("flows_in", Value::Int(out.stats.flows_in as i128));
    stats.insert("flow_groups", Value::Int(out.stats.flow_groups as i128));
    stats.insert("reqs_pruned", Value::Int(out.stats.reqs_pruned as i128));
    stats.insert("mtbdd", out.stats.mtbdd.to_value());
    stats.insert("mtbdd_workers", out.stats.mtbdd_workers.to_value());
    stats.insert("telemetry", out.stats.telemetry.to_value());
    if let Some(attr) = &out.stats.attribution {
        stats.insert("attribution", attr.to_value());
    }
    let mut root = Map::new();
    root.insert("verified", Value::Bool(out.verified()));
    root.insert("violations", out.violations.to_value());
    if let Some(ex) = explanations {
        root.insert("explanations", ex.to_value());
    }
    root.insert("stats", Value::Map(stats));
    serde_json::to_string_pretty(&Value::Map(root)).expect("serializable")
}

/// Writes the trace/metrics files and the `-v` stage table from whatever
/// the telemetry layer collected in this process.
fn export_telemetry(telemetry: &TelemetryArgs) {
    if !telemetry.wants_recording() {
        return;
    }
    let report = yu::telemetry::snapshot();
    if let Some(path) = &telemetry.trace_out {
        match std::fs::write(path, report.chrome_trace_json()) {
            Ok(()) => eprintln!("trace written to {path} (load in chrome://tracing or Perfetto)"),
            Err(e) => eprintln!("error: cannot write trace to {path}: {e}"),
        }
    }
    if let Some(path) = &telemetry.metrics_out {
        match std::fs::write(path, report.metrics_json()) {
            Ok(()) => eprintln!("metrics written to {path}"),
            Err(e) => eprintln!("error: cannot write metrics to {path}: {e}"),
        }
    }
    if telemetry.verbose {
        eprint!("{}", report.summary_table());
    }
}

fn rib(spec: &VerifySpec, args: &[String]) -> ExitCode {
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let Some(router_name) = get("--router") else {
        eprintln!("error: --router <name> required");
        return ExitCode::from(2);
    };
    let Some(dst) = get("--dst") else {
        eprintln!("error: --dst <ip> required");
        return ExitCode::from(2);
    };
    let Some(router) = spec.network.topo.router_by_name(&router_name) else {
        eprintln!("error: no router named '{router_name}'");
        return ExitCode::from(2);
    };
    let Ok(dst) = dst.parse() else {
        eprintln!("error: invalid destination '{dst}'");
        return ExitCode::from(2);
    };
    let mut m = yu::mtbdd::Mtbdd::new();
    let fv = yu::net::FailureVars::allocate(&mut m, &spec.network.topo, spec.mode);
    let mut routes = yu::routing::SymbolicRoutes::compute(&mut m, &spec.network, &fv, Some(spec.k));
    print!(
        "{}",
        yu::routing::format_fib(&mut m, &spec.network, &fv, &mut routes, router, dst)
    );
    print!(
        "{}",
        yu::routing::format_sr_policies(&m, &spec.network, &fv, &routes, router)
    );
    ExitCode::SUCCESS
}

fn parse_scenario(spec: &VerifySpec, fail: Option<&str>) -> Scenario {
    let mut s = Scenario::none();
    let Some(fail) = fail else { return s };
    for part in fail.split(',').filter(|p| !p.is_empty()) {
        let ulink = spec
            .network
            .topo
            .ulinks()
            .find(|&u| spec.network.topo.ulink_label(u) == part);
        if let Some(u) = ulink {
            s.failed_links.insert(u);
        } else if let Some(r) = spec.network.topo.router_by_name(part) {
            s.failed_routers.insert(r);
        } else {
            eprintln!("error: no link or router named '{part}'");
            std::process::exit(2);
        }
    }
    s
}

fn loads(spec: &VerifySpec, fail: Option<&str>) -> ExitCode {
    let scenario = parse_scenario(spec, fail);
    let mut v = YuVerifier::new(
        spec.network.clone(),
        YuOptions {
            k: spec.k.max(scenario.count() as u32),
            mode: if scenario.failed_routers.is_empty() {
                spec.mode
            } else {
                FailureMode::LinksAndRouters
            },
            ..Default::default()
        },
    );
    v.add_flows(&spec.flows);
    println!("loads under {}:", scenario.describe(&spec.network.topo));
    for l in spec.network.topo.links() {
        let load = v.load_at(LoadPoint::Link(l), &scenario);
        if !load.is_zero() {
            let cap = &spec.network.topo.link(l).capacity;
            println!(
                "  {:<16} {:>12} / {} Gbps",
                spec.network.topo.link_label(l),
                load.to_string(),
                cap
            );
        }
    }
    for r in spec.network.topo.routers() {
        for (point, label) in [
            (LoadPoint::Delivered(r), "delivered"),
            (LoadPoint::Dropped(r), "dropped"),
        ] {
            let load = v.load_at(point, &scenario);
            if !load.is_zero() {
                println!(
                    "  {label}@{:<10} {:>12} Gbps",
                    spec.network.topo.router(r).name,
                    load.to_string()
                );
            }
        }
    }
    ExitCode::SUCCESS
}

fn scenarios(spec: &VerifySpec) -> ExitCode {
    let n = match spec.mode {
        FailureMode::Links => spec.network.topo.num_ulinks(),
        FailureMode::Routers => spec.network.topo.num_routers(),
        FailureMode::LinksAndRouters => {
            spec.network.topo.num_ulinks() + spec.network.topo.num_routers()
        }
    };
    println!(
        "{} scenarios with <= {} failures out of {} elements \
         (what a per-scenario verifier must enumerate; YU runs once)",
        scenario_count(n, spec.k as usize),
        spec.k,
        n
    );
    ExitCode::SUCCESS
}
