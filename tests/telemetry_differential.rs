//! Telemetry must be an observer, never a participant: running the same
//! verification with recording on and off has to produce bit-identical
//! verdicts, violations, flow grouping, and MTBDD statistics.
//!
//! One test function drives both configurations back-to-back so the
//! process-global enable flag is never toggled concurrently with another
//! test's run.

use yu::core::{RunStats, VerificationOutcome, YuOptions, YuVerifier};
use yu::gen::{motivating_example, sr_anycast_incident};
use yu::net::{Flow, Network, Tlp};

/// Verifies, then explains every violation; the forensic reports ride
/// along so the on/off comparison also covers the explain pipeline.
fn run(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    workers: usize,
) -> (VerificationOutcome, Vec<String>) {
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            workers,
            ..Default::default()
        },
    );
    v.add_flows(flows);
    let out = v.verify(tlp);
    let explanations = out
        .violations
        .iter()
        .map(|vi| format!("{:?}", v.explain(vi)))
        .collect();
    (out, explanations)
}

fn assert_same_modulo_timing(on: &VerificationOutcome, off: &VerificationOutcome) {
    assert_eq!(on.verified(), off.verified());
    assert_eq!(
        format!("{:?}", on.violations),
        format!("{:?}", off.violations)
    );
    let stats = |s: &RunStats| {
        (
            s.flows_in,
            s.flow_groups,
            s.mtbdd.nodes_created,
            s.mtbdd.terminals_created,
            s.mtbdd_workers.nodes_created,
            s.mtbdd_workers.terminals_created,
        )
    };
    assert_eq!(stats(&on.stats), stats(&off.stats));
    // The only permitted difference: the enabled run carries a summary.
    assert!(on.stats.telemetry.is_some());
    assert!(off.stats.telemetry.is_none());
}

#[test]
fn telemetry_on_off_runs_are_identical() {
    let fig1 = motivating_example();
    let sr = sr_anycast_incident();
    let cases: Vec<(&Network, &[Flow], &Tlp)> = vec![
        (&fig1.net, &fig1.flows, &fig1.p1),
        (&fig1.net, &fig1.flows, &fig1.p2),
        (&sr.net, &sr.flows, &sr.tlp),
    ];
    for (net, flows, tlp) in cases {
        for workers in [1, 3] {
            yu::telemetry::set_enabled(false);
            let (off, off_explanations) = run(net, flows, tlp, workers);

            yu::telemetry::set_enabled(true);
            yu::telemetry::reset();
            let (on, on_explanations) = run(net, flows, tlp, workers);
            let report = yu::telemetry::snapshot();
            yu::telemetry::reset();
            yu::telemetry::set_enabled(false);

            assert_same_modulo_timing(&on, &off);
            // The forensic reports must be bit-identical too — blame,
            // path diffs, replay results, envelopes.
            assert_eq!(on_explanations, off_explanations);
            // The instrumented run must actually have recorded the
            // pipeline stages it claims to cover.
            let aggs = report.stage_aggs();
            for stage in ["route_sim", "igp", "bgp", "exec", "verify", "kreduce"] {
                assert!(aggs.contains_key(stage), "missing stage span: {stage}");
            }
            let counters = report.counter_totals();
            assert!(
                counters
                    .get("mtbdd.apply_cache_misses")
                    .copied()
                    .unwrap_or(0)
                    > 0
            );
            // The sharded engine only engages with >1 flow group.
            if workers > 1 && on.stats.flow_groups > 1 {
                assert!(
                    aggs.contains_key("exec.worker"),
                    "parallel run should record worker spans"
                );
                assert!(counters.contains_key("import.memo_misses"));
            }
            // Forensics record their own spans and counters when any
            // violation was explained.
            if !on.violations.is_empty() {
                for stage in [
                    "explain",
                    "explain.blame",
                    "explain.paths",
                    "explain.replay",
                ] {
                    assert!(aggs.contains_key(stage), "missing explain span: {stage}");
                }
                assert!(
                    counters.get("explain.flows_blamed").copied().unwrap_or(0) > 0,
                    "explain must count blamed flows"
                );
                assert_eq!(
                    counters
                        .get("explain.replay_mismatches")
                        .copied()
                        .unwrap_or(0),
                    0,
                    "replay must agree with the symbolic verdicts"
                );
            }
        }
    }
}
