//! Telemetry must be an observer, never a participant: running the same
//! verification with recording on and off has to produce bit-identical
//! verdicts, violations, flow grouping, and MTBDD statistics.
//!
//! Each test function drives both configurations back-to-back under a
//! shared lock, so the process-global enable flags (span collector,
//! metrics registry, event sink) are never toggled concurrently with
//! another test's run.

use std::sync::Mutex;
use std::time::Duration;
use yu::core::{IncrementalVerifier, RunStats, VerificationOutcome, YuOptions, YuVerifier};
use yu::gen::{motivating_example, sr_anycast_incident};
use yu::net::{Change, FailureMode, Flow, Network, Tlp};
use yu::serve::{ServeConfig, ServeSession};
use yu::spec::VerifySpec;

/// Serializes the tests in this binary against each other: they all
/// flip process-global observability switches.
static FLAG_LOCK: Mutex<()> = Mutex::new(());

fn lock_flags() -> std::sync::MutexGuard<'static, ()> {
    FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Verifies, then explains every violation; the forensic reports ride
/// along so the on/off comparison also covers the explain pipeline.
fn run(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    workers: usize,
) -> (VerificationOutcome, Vec<String>) {
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            workers,
            ..Default::default()
        },
    );
    v.add_flows(flows);
    let out = v.verify(tlp);
    let explanations = out
        .violations
        .iter()
        .map(|vi| format!("{:?}", v.explain(vi)))
        .collect();
    (out, explanations)
}

fn assert_same_modulo_timing(on: &VerificationOutcome, off: &VerificationOutcome) {
    assert_eq!(on.verified(), off.verified());
    assert_eq!(
        format!("{:?}", on.violations),
        format!("{:?}", off.violations)
    );
    let stats = |s: &RunStats| {
        (
            s.flows_in,
            s.flow_groups,
            s.mtbdd.nodes_created,
            s.mtbdd.terminals_created,
            s.mtbdd_workers.nodes_created,
            s.mtbdd_workers.terminals_created,
        )
    };
    assert_eq!(stats(&on.stats), stats(&off.stats));
    // The only permitted difference: the enabled run carries a summary.
    assert!(on.stats.telemetry.is_some());
    assert!(off.stats.telemetry.is_none());
}

#[test]
fn telemetry_on_off_runs_are_identical() {
    let _guard = lock_flags();
    let fig1 = motivating_example();
    let sr = sr_anycast_incident();
    let cases: Vec<(&Network, &[Flow], &Tlp)> = vec![
        (&fig1.net, &fig1.flows, &fig1.p1),
        (&fig1.net, &fig1.flows, &fig1.p2),
        (&sr.net, &sr.flows, &sr.tlp),
    ];
    for (net, flows, tlp) in cases {
        for workers in [1, 3] {
            yu::telemetry::set_enabled(false);
            let (off, off_explanations) = run(net, flows, tlp, workers);

            yu::telemetry::set_enabled(true);
            yu::telemetry::reset();
            let (on, on_explanations) = run(net, flows, tlp, workers);
            let report = yu::telemetry::snapshot();
            yu::telemetry::reset();
            yu::telemetry::set_enabled(false);

            assert_same_modulo_timing(&on, &off);
            // The forensic reports must be bit-identical too — blame,
            // path diffs, replay results, envelopes.
            assert_eq!(on_explanations, off_explanations);
            // The instrumented run must actually have recorded the
            // pipeline stages it claims to cover.
            let aggs = report.stage_aggs();
            for stage in ["route_sim", "igp", "bgp", "exec", "verify", "kreduce"] {
                assert!(aggs.contains_key(stage), "missing stage span: {stage}");
            }
            let counters = report.counter_totals();
            assert!(
                counters
                    .get("mtbdd.apply_cache_misses")
                    .copied()
                    .unwrap_or(0)
                    > 0
            );
            // The sharded engine only engages with >1 flow group.
            if workers > 1 && on.stats.flow_groups > 1 {
                assert!(
                    aggs.contains_key("exec.worker"),
                    "parallel run should record worker spans"
                );
                assert!(counters.contains_key("import.memo_misses"));
            }
            // Forensics record their own spans and counters when any
            // violation was explained.
            if !on.violations.is_empty() {
                for stage in [
                    "explain",
                    "explain.blame",
                    "explain.paths",
                    "explain.replay",
                ] {
                    assert!(aggs.contains_key(stage), "missing explain span: {stage}");
                }
                assert!(
                    counters.get("explain.flows_blamed").copied().unwrap_or(0) > 0,
                    "explain must count blamed flows"
                );
                assert_eq!(
                    counters
                        .get("explain.replay_mismatches")
                        .copied()
                        .unwrap_or(0),
                    0,
                    "replay must agree with the symbolic verdicts"
                );
            }
        }
    }
}

/// Engine profiling (`YU_ENGINE_PROFILE` / kernel recursion-depth
/// tracking) must also be an observer: runs with the gate forced on and
/// forced off produce bit-identical verdicts, violations, forensics,
/// and arena statistics — and the profiled run actually observes depth.
#[test]
fn engine_profile_on_off_runs_are_identical() {
    let _guard = lock_flags();
    let fig1 = motivating_example();
    for workers in [1, 3] {
        yu::mtbdd::set_engine_profile(false);
        let (off, off_explanations) = run(&fig1.net, &fig1.flows, &fig1.p2, workers);

        yu::mtbdd::set_engine_profile(true);
        let (on, on_explanations) = run(&fig1.net, &fig1.flows, &fig1.p2, workers);
        yu::mtbdd::set_engine_profile(false);

        assert_eq!(on.verified(), off.verified());
        assert_eq!(
            format!("{:?}", on.violations),
            format!("{:?}", off.violations)
        );
        assert_eq!(on_explanations, off_explanations);
        let stats = |s: &RunStats| {
            (
                s.flows_in,
                s.flow_groups,
                s.mtbdd.nodes_created,
                s.mtbdd.terminals_created,
                s.mtbdd_workers.nodes_created,
                s.mtbdd_workers.terminals_created,
            )
        };
        assert_eq!(stats(&on.stats), stats(&off.stats));
    }

    // With the gate on, a profiled run reports non-zero depth maxima;
    // with it off, the profile says so and stays all-zero.
    for (gate, want_depth) in [(true, true), (false, false)] {
        yu::mtbdd::set_engine_profile(gate);
        let mut v = YuVerifier::new(
            fig1.net.clone(),
            YuOptions {
                k: 1,
                profile: true,
                ..Default::default()
            },
        );
        v.add_flows(&fig1.flows);
        let out = v.verify(&fig1.p2);
        let engine = out.stats.attribution.as_ref().expect("profiled run").engine;
        assert_eq!(engine.enabled, gate);
        assert_eq!(engine.apply_max_depth > 0, want_depth);
    }
    yu::mtbdd::set_engine_profile(false);
}

/// The fig1 base spec the incremental runs start from.
fn fig1_spec() -> VerifySpec {
    let ex = motivating_example();
    VerifySpec {
        network: ex.net,
        flows: ex.flows,
        tlp: ex.p2,
        k: 1,
        mode: FailureMode::Links,
    }
}

/// A serve request line with an explicit id.
fn request_line(id: u64, changes: &[Change]) -> String {
    format!(
        "{{\"id\":{},\"changes\":{}}}",
        id,
        serde_json::to_string(changes).expect("changes serialize")
    )
}

/// The scripted serve session: link-cost bump and restore, a flow-volume
/// edit, an empty change-set, plus a semantic error and a parse error —
/// every response path the protocol has (except `metrics`, whose payload
/// intentionally differs between instrumented and plain runs).
fn serve_script(spec: &VerifySpec) -> Vec<String> {
    let topo = &spec.network.topo;
    let u = topo.ulinks().next().expect("fig1 has links");
    let (fwd, _) = topo.directions(u);
    let lk = topo.link(fwd);
    let (from, to) = (
        topo.router(lk.from).name.clone(),
        topo.router(lk.to).name.clone(),
    );
    let cost = |c: u64| Change::SetLinkCost {
        from: from.clone(),
        to: to.clone(),
        index: 0,
        cost: c,
    };
    vec![
        request_line(1, &[cost(lk.igp_cost * 9 + 50)]),
        request_line(
            2,
            &[Change::SetFlowVolume {
                flow: 0,
                volume: yu::mtbdd::Ratio::new(40, 1),
            }],
        ),
        request_line(3, &[cost(lk.igp_cost)]),
        request_line(4, &[]),
        // Semantic error: unknown router, rejected atomically.
        request_line(
            5,
            &[Change::SetLinkCost {
                from: "no-such-router".into(),
                to: to.clone(),
                index: 0,
                cost: 1,
            }],
        ),
        // Parse error: not JSON at all.
        "{definitely not json".to_string(),
    ]
}

/// Strips the wall-clock fields from a response line so instrumented and
/// plain runs can be compared for bit-identity on everything else.
fn strip_timing(line: &str) -> String {
    use serde::Value;
    let mut v: Value = serde_json::from_str(line).expect("response line is JSON");
    if let Some(root) = v.as_object_mut() {
        if let Some(Value::Map(mut stats)) = root.remove("stats") {
            for key in ["route_secs", "exec_secs", "check_secs"] {
                stats.remove(key);
            }
            root.insert("stats", Value::Map(stats));
        }
    }
    v.to_string()
}

/// One full serve pass over the script; `observed` turns on the span
/// collector, the metrics registry, and an in-memory event sink.
fn run_serve(spec: &VerifySpec, script: &[String], observed: bool) -> (Vec<String>, Vec<String>) {
    yu::telemetry::set_enabled(observed);
    yu::telemetry::set_registry_enabled(observed);
    if observed {
        yu::telemetry::reset();
        yu::telemetry::set_event_sink_memory();
    }
    let opts = YuOptions {
        k: spec.k,
        mode: spec.mode,
        ..Default::default()
    };
    // A zero slow threshold keeps the slow-request path deterministic:
    // every successful request is "slow" in both configurations.
    let mut session = ServeSession::with_config(
        spec,
        opts,
        ServeConfig {
            slow_threshold: Duration::ZERO,
            ..Default::default()
        },
    );
    let responses = script
        .iter()
        .map(|l| strip_timing(&session.handle_line(l)))
        .collect();
    let events = if observed {
        yu::telemetry::take_memory_events()
    } else {
        Vec::new()
    };
    yu::telemetry::close_event_sink();
    yu::telemetry::set_enabled(false);
    yu::telemetry::set_registry_enabled(true);
    (responses, events)
}

/// The `yu diff` code path: baseline verify, then [`IncrementalVerifier::
/// set_state`] onto a changed spec. Returns a timing-free fingerprint.
fn run_diff(old: &VerifySpec, new: &VerifySpec, observed: bool) -> String {
    yu::telemetry::set_enabled(observed);
    yu::telemetry::set_registry_enabled(observed);
    if observed {
        yu::telemetry::reset();
    }
    let opts = YuOptions {
        k: old.k,
        mode: old.mode,
        ..Default::default()
    };
    let mut inc = IncrementalVerifier::new(
        old.network.clone(),
        old.flows.clone(),
        old.tlp.clone(),
        opts,
    );
    let base = inc.verify();
    let out = inc.set_state(new.network.clone(), new.flows.clone(), new.tlp.clone());
    let fingerprint = format!(
        "base={} {:?} new={} {:?} delta={:?}",
        base.verified(),
        base.violations,
        out.verified(),
        out.violations,
        inc.delta_stats()
    );
    yu::telemetry::set_enabled(false);
    yu::telemetry::set_registry_enabled(true);
    fingerprint
}

/// The incremental paths (`yu serve` request loop and `yu diff`
/// re-verification) must also be bit-identical with the full
/// observability stack on — span collector, metrics registry, and event
/// log together. The only permitted difference is the stripped wall
/// clock.
#[test]
fn incremental_paths_are_identical_under_full_observability() {
    let _guard = lock_flags();
    let spec = fig1_spec();
    let script = serve_script(&spec);

    let (plain, no_events) = run_serve(&spec, &script, false);
    assert!(no_events.is_empty());

    let before = yu::telemetry::registry().snapshot();
    let (instrumented, events) = run_serve(&spec, &script, true);
    let after = yu::telemetry::registry().snapshot();

    assert_eq!(
        plain, instrumented,
        "serve responses must not depend on observability"
    );

    // The instrumented run actually observed: registry counters moved by
    // exactly the scripted request mix (4 ok, 2 rejected)...
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(delta("yu_serve_requests_total"), 4);
    assert_eq!(delta("yu_serve_request_errors_total"), 2);
    assert_eq!(delta("yu_serve_slow_requests_total"), 4);
    // ...and the event log carries the whole taxonomy with the right
    // correlation ids.
    let kinds_with_id = |kind: &str| -> Vec<String> {
        events
            .iter()
            .filter(|e| e.contains(&format!("\"kind\":\"{kind}\"")))
            .cloned()
            .collect()
    };
    assert_eq!(kinds_with_id("request_start").len(), 5);
    assert_eq!(kinds_with_id("request_finish").len(), 4);
    assert_eq!(kinds_with_id("slow_request").len(), 4);
    assert_eq!(kinds_with_id("serve_error").len(), 2);
    assert!(kinds_with_id("slow_request")[0].contains("\"id\":1"));
    for e in &events {
        let v: serde::Value = serde_json::from_str(e).expect("event line is JSON");
        let obj = v.as_object().expect("event is an object");
        assert!(obj.get("ts_us").is_some());
        assert!(obj.get("level").is_some());
    }

    // The `yu diff` path: same spec transition, with and without the
    // stack.
    let mut new_spec = fig1_spec();
    new_spec.tlp = motivating_example().p1;
    new_spec.flows.pop();
    let plain_diff = run_diff(&spec, &new_spec, false);
    let observed_diff = run_diff(&spec, &new_spec, true);
    assert_eq!(
        plain_diff, observed_diff,
        "diff verdicts must not depend on observability"
    );
}
