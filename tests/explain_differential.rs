//! Differential tests for violation forensics: every enumerated
//! violation must be confirmed bit-exactly by the enumerative baseline's
//! single-scenario replay, and every `Explanation` must be internally
//! consistent — blame sums Ratio-exactly to the violating load, path
//! diffs are non-empty whenever a blamed flow's routing changed, and the
//! load envelope brackets the observed violation.

use yu::baselines::{jingubang_verify, replay_scenario};
use yu::core::{YuOptions, YuVerifier};
use yu::mtbdd::Ratio;
use yu::net::{FailureMode, Flow, Network, Scenario, Tlp, DEFAULT_MAX_HOPS};

/// All built-in incident examples as (name, network, flows, tlp) tuples.
fn examples() -> Vec<(&'static str, Network, Vec<Flow>, Tlp)> {
    let ex = yu::gen::motivating_example();
    let sr = yu::gen::sr_anycast_incident();
    let bh = yu::gen::static_blackhole_incident();
    vec![
        ("fig1/p1", ex.net.clone(), ex.flows.clone(), ex.p1),
        ("fig1/p2", ex.net, ex.flows, ex.p2),
        ("fig9", sr.net, sr.flows, sr.tlp),
        ("fig10", bh.net, bh.flows, bh.tlp),
    ]
}

/// Runs the enumerated verification plus forensics for one case and
/// checks it against the enumerative baseline.
fn check_case(name: &str, net: &Network, flows: &[Flow], tlp: &Tlp, mode: FailureMode, k: u32) {
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k,
            mode,
            ..Default::default()
        },
    );
    v.add_flows(flows);
    let out = v.verify_enumerated(tlp, 1000);

    // The exhaustive per-scenario baseline must report exactly the same
    // (point, scenario, load) set.
    let jg = jingubang_verify(net, flows, tlp, k as usize, mode, DEFAULT_MAX_HOPS, false);
    assert_eq!(
        out.violations.len(),
        jg.violations.len(),
        "{name} ({mode:?}): enumeration disagrees with the baseline"
    );
    for vi in &out.violations {
        assert!(
            jg.violations
                .iter()
                .any(|jv| jv.point == vi.point && jv.scenario == vi.scenario && jv.load == vi.load),
            "{name} ({mode:?}): unconfirmed violation {}",
            vi.describe(&net.topo)
        );
    }

    for vi in &out.violations {
        // Direct single-scenario replay at the violated point.
        let loads = replay_scenario(net, flows, &vi.scenario, DEFAULT_MAX_HOPS);
        let replayed = loads.get(&vi.point).cloned().unwrap_or(Ratio::ZERO);
        assert_eq!(
            replayed,
            vi.load,
            "{name} ({mode:?}): replay diverges for {}",
            vi.describe(&net.topo)
        );

        // The explanation must be self-consistent.
        let ex = v.explain(vi);
        assert!(
            ex.replay.matches(),
            "{name} ({mode:?}): replay cross-check failed: {:?}",
            ex.replay
        );
        assert_eq!(
            ex.blame_total, vi.load,
            "{name} ({mode:?}): blame does not sum to the violating load"
        );
        let sum = ex
            .blame
            .iter()
            .fold(Ratio::ZERO, |acc, b| acc + b.contribution.clone());
        assert_eq!(sum, vi.load, "{name} ({mode:?}): contribution sum drifted");
        let base_sum = ex
            .blame
            .iter()
            .fold(Ratio::ZERO, |acc, b| acc + b.baseline.clone());
        assert_eq!(
            base_sum, ex.baseline_load,
            "{name} ({mode:?}): baseline sum drifted"
        );

        // Whenever a blamed flow's contribution moved relative to the
        // no-failure baseline, its forwarding changed, so its path diff
        // must be present and non-empty.
        for b in &ex.blame {
            if b.delta != Ratio::ZERO {
                let diff = ex.paths.iter().find(|d| d.flow == b.flow);
                let diff = diff.unwrap_or_else(|| {
                    panic!(
                        "{name} ({mode:?}): no path diff for rerouted flow {:?}",
                        b.flow
                    )
                });
                assert!(
                    diff.changed,
                    "{name} ({mode:?}): flow moved {} -> {} but path diff is empty",
                    b.baseline, b.contribution
                );
            }
        }

        // The envelope brackets the violating load and counts at least
        // this violation's scenario.
        assert!(
            ex.envelope.min <= vi.load && vi.load <= ex.envelope.max,
            "{name} ({mode:?}): envelope [{}, {}] misses load {}",
            ex.envelope.min,
            ex.envelope.max,
            vi.load
        );
        assert!(
            ex.envelope.violating_scenarios >= 1,
            "{name} ({mode:?}): envelope reports no violating scenarios"
        );
    }

    // Forensics under no failures must also be clean: the baseline run
    // (scenario = none) replays exactly.
    let none = Scenario::none();
    let base = replay_scenario(net, flows, &none, DEFAULT_MAX_HOPS);
    for req in &tlp.reqs {
        let sym = v.load_at(req.point, &none);
        let conc = base.get(&req.point).cloned().unwrap_or(Ratio::ZERO);
        assert_eq!(sym, conc, "{name} ({mode:?}): no-failure load diverges");
    }
}

#[test]
fn explanations_match_baseline_under_link_failures() {
    for (name, net, flows, tlp) in examples() {
        check_case(name, &net, &flows, &tlp, FailureMode::Links, 1);
    }
}

#[test]
fn explanations_match_baseline_under_router_failures() {
    for (name, net, flows, tlp) in examples() {
        check_case(name, &net, &flows, &tlp, FailureMode::Routers, 1);
    }
}

#[test]
fn fig1_blame_names_the_rerouted_flow() {
    // In the motivating example the D-E failure pushes B's 80 Gbps flow
    // entirely onto C->E: the top blame entry must be that flow, with a
    // positive delta over its no-failure share.
    let ex = yu::gen::motivating_example();
    let mut v = YuVerifier::new(
        ex.net.clone(),
        YuOptions {
            k: 1,
            mode: FailureMode::Links,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    let out = v.verify_enumerated(&ex.p2, 10);
    assert!(!out.verified(), "fig1 p2 must be violated at k=1");
    // Pick a violation where the reroute adds new links (the C-E failure
    // detours B's traffic over C->D), so the overlay has "now" edges.
    let exp = out
        .violations
        .iter()
        .map(|vi| v.explain(vi))
        .find(|e| e.paths.iter().any(|d| !d.added_links.is_empty()))
        .expect("some fig1 violation must add rerouted links");
    let top = &exp.blame[0];
    assert!(
        top.delta > Ratio::ZERO,
        "top blamed flow should have gained load: {top:?}"
    );
    assert!(
        exp.paths.iter().any(|d| d.changed),
        "rerouting must show up in the path diff"
    );
    let report = exp.describe(&ex.net.topo);
    assert!(report.contains("per-flow blame"), "{report}");
    assert!(report.contains("replay: match"), "{report}");
    // The DOT overlay mentions the failed element and a rerouted edge.
    let dot = yu::core::explanation_dot(&ex.net.topo, &exp);
    assert!(dot.contains("digraph"), "{dot}");
    assert!(dot.contains("failed"), "{dot}");
    assert!(dot.contains("now"), "{dot}");
}
