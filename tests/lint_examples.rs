//! The preflight linter must report zero errors on every built-in
//! example spec (`yu export fig1|fig9|fig10|ft4|n0`) — warnings are
//! allowed (fig9's anycast is intentional), errors are not.

use yu::mtbdd::Ratio;
use yu::net::{FailureMode, Tlp};
use yu::spec::VerifySpec;

fn preset(which: &str) -> VerifySpec {
    match which {
        "fig1" => {
            let ex = yu::gen::motivating_example();
            VerifySpec {
                network: ex.net,
                flows: ex.flows,
                tlp: ex.p2,
                k: 1,
                mode: FailureMode::Links,
            }
        }
        "fig9" => {
            let inc = yu::gen::sr_anycast_incident();
            VerifySpec {
                network: inc.net,
                flows: inc.flows,
                tlp: inc.tlp,
                k: 1,
                mode: FailureMode::Links,
            }
        }
        "fig10" => {
            let inc = yu::gen::static_blackhole_incident();
            VerifySpec {
                network: inc.net,
                flows: inc.flows,
                tlp: inc.tlp,
                k: 1,
                mode: FailureMode::Links,
            }
        }
        "ft4" => {
            let (ft, flows) = yu::gen::fattree_with_flows(4, 16);
            let tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
            VerifySpec {
                network: ft.net,
                flows,
                tlp,
                k: 2,
                mode: FailureMode::Links,
            }
        }
        "n0" => {
            let w = yu::gen::wan(yu::gen::WanPreset::N0.params());
            let flows = w.flows(2000, 0xF10F);
            let tlp = Tlp::no_overload(&w.net.topo, Ratio::new(95, 100));
            VerifySpec {
                network: w.net,
                flows,
                tlp,
                k: 2,
                mode: FailureMode::Links,
            }
        }
        "preflight" => {
            let ex = yu::gen::preflight_example();
            VerifySpec {
                network: ex.net,
                flows: ex.flows,
                tlp: ex.tlp,
                k: 1,
                mode: FailureMode::Links,
            }
        }
        other => panic!("unknown preset {other}"),
    }
}

#[test]
fn every_builtin_example_lints_without_errors() {
    for which in ["fig1", "fig9", "fig10", "ft4", "n0", "preflight"] {
        let spec = preset(which);
        let diags = spec.validate();
        let errors: Vec<_> = diags.iter().filter(|d| d.is_error()).collect();
        assert!(
            errors.is_empty(),
            "{which} must lint without errors, got: {errors:?}"
        );
    }
}

#[test]
fn fig9_warns_about_intentional_anycast() {
    let diags = preset("fig9").validate();
    assert!(
        diags.iter().any(|d| d.code == "YU012"),
        "fig9's shared loopback should surface as a YU012 warning: {diags:?}"
    );
}

#[test]
fn diagnostics_serialize_for_json_output() {
    let diags = preset("fig9").validate();
    let json = serde_json::to_string_pretty(&diags).unwrap();
    assert!(json.contains("YU012"), "{json}");
}

#[test]
fn every_builtin_example_deep_lints_without_errors() {
    // The semantic rules are held to the same bar as the spec lint:
    // warnings allowed on the worked examples, errors never.
    for which in ["fig1", "fig9", "fig10", "ft4", "preflight"] {
        let spec = preset(which);
        let diags = spec.validate_deep();
        let errors: Vec<_> = diags.iter().filter(|d| d.is_error()).collect();
        assert!(
            errors.is_empty(),
            "{which} must deep-lint without errors, got: {errors:?}"
        );
    }
}
