//! Differential suite for the flat-arena MTBDD engine: the index-based
//! arena, open-addressed unique table, direct-mapped memo caches, n-ary
//! fused aggregation, and the frozen-arena overlay sharing used by check
//! sharding are all *representation* changes — every observable of a
//! verification run must be identical to the sequential single-arena
//! pipeline:
//!
//! * verdicts and bit-identical violation lists (counterexample
//!   scenarios and exact rational violating loads included),
//! * concrete terminal values at every sampled load point and scenario,
//! * determinism: re-running the same instance reproduces the exact
//!   `nodes_created` count and unique-table probe statistics (the
//!   property CI's deterministic gates rely on).
//!
//! Covered across the built-in examples × both failure modes ×
//! `check_workers ∈ {1, 4}` × the `auto` cost model.

use yu::core::{YuOptions, YuVerifier};
use yu::gen::{
    fattree_with_flows, motivating_example, sr_anycast_incident, static_blackhole_incident, wan,
    WanParams,
};
use yu::mtbdd::Ratio;
use yu::net::{scenarios_up_to_k, FailureMode, Flow, LoadPoint, Network, Scenario, Tlp};

struct Instance {
    name: &'static str,
    net: Network,
    flows: Vec<Flow>,
    tlp: Tlp,
    k: u32,
}

fn instances() -> Vec<Instance> {
    let fig1 = motivating_example();
    let fig9 = sr_anycast_incident();
    let fig10 = static_blackhole_incident();
    let (ft, ft_flows) = fattree_with_flows(4, 16);
    let ft_tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
    let w = wan(WanParams {
        core_routers: 5,
        stub_routers: 2,
        extra_core_links: 3,
        prefixes: 8,
        sr_policies: 1,
        seed: 11,
    });
    let w_flows = w.flows(25, 70);
    let w_tlp = Tlp::no_overload(&w.net.topo, Ratio::new(95, 100));
    vec![
        Instance {
            name: "fig1",
            net: fig1.net,
            flows: fig1.flows,
            tlp: fig1.p2,
            k: 1,
        },
        Instance {
            name: "fig9",
            net: fig9.net,
            flows: fig9.flows,
            tlp: fig9.tlp,
            k: 1,
        },
        Instance {
            name: "fig10",
            net: fig10.net,
            flows: fig10.flows,
            tlp: fig10.tlp,
            k: 1,
        },
        Instance {
            name: "ft4",
            net: ft.net,
            flows: ft_flows,
            tlp: ft_tlp,
            k: 2,
        },
        Instance {
            name: "wan",
            net: w.net,
            flows: w_flows,
            tlp: w_tlp,
            k: 1,
        },
    ]
}

fn run(inst: &Instance, mode: FailureMode, opts: YuOptions) -> YuVerifier {
    let mut v = YuVerifier::new(
        inst.net.clone(),
        YuOptions {
            k: inst.k,
            mode,
            ..opts
        },
    );
    v.add_flows(&inst.flows);
    v
}

fn all_points(net: &Network) -> Vec<LoadPoint> {
    let mut pts: Vec<LoadPoint> = net.topo.links().map(LoadPoint::Link).collect();
    for r in net.topo.routers() {
        pts.push(LoadPoint::Delivered(r));
        pts.push(LoadPoint::Dropped(r));
    }
    pts
}

fn sampled_scenarios(net: &Network, mode: FailureMode, k: u32) -> Vec<Scenario> {
    let all: Vec<Scenario> = scenarios_up_to_k(&net.topo, mode, k as usize).collect();
    let step = if all.len() > 150 { 5 } else { 1 };
    all.into_iter().step_by(step).collect()
}

/// Flat-arena verdicts and terminal values are worker-count invariant:
/// `check_workers = 4` (frozen-arena overlay sharding, n-ary fused
/// aggregation in private overlays) matches `check_workers = 1` (n-ary
/// fused aggregation in the main arena) on every observable.
#[test]
fn sharded_overlays_match_sequential_on_all_examples() {
    for inst in &instances() {
        for mode in [FailureMode::Links, FailureMode::Routers] {
            let ctx = format!("{} mode={mode:?}", inst.name);
            let mut seq = run(inst, mode, YuOptions::default());
            let mut par = run(
                inst,
                mode,
                YuOptions {
                    check_workers: 4,
                    ..Default::default()
                },
            );
            let so = seq.verify(&inst.tlp);
            let po = par.verify(&inst.tlp);
            assert_eq!(so.verified(), po.verified(), "{ctx}: verdict differs");
            assert_eq!(
                so.violations, po.violations,
                "{ctx}: violations must be bit-identical"
            );
            // Terminal values: the exact rational load at every sampled
            // (point, scenario) pair must agree after either pipeline.
            for &p in &all_points(&inst.net) {
                for s in &sampled_scenarios(&inst.net, mode, inst.k) {
                    assert_eq!(
                        seq.load_at(p, s),
                        par.load_at(p, s),
                        "{ctx}: terminal value differs at {p:?} under {s:?}"
                    );
                }
            }
        }
    }
}

/// The `--check-workers auto` cost model only picks a worker count — it
/// must never change a verdict, a violation, or a terminal value,
/// whichever way it decides.
#[test]
fn auto_worker_selection_is_observation_invariant() {
    for inst in &instances() {
        let mode = FailureMode::Links;
        let ctx = format!("{} auto", inst.name);
        let mut plain = run(inst, mode, YuOptions::default());
        let mut auto = run(
            inst,
            mode,
            YuOptions {
                check_workers: 4,
                check_workers_auto: true,
                ..Default::default()
            },
        );
        let po = plain.verify(&inst.tlp);
        let ao = auto.verify(&inst.tlp);
        assert_eq!(po.verified(), ao.verified(), "{ctx}: verdict differs");
        assert_eq!(po.violations, ao.violations, "{ctx}: violations differ");
        for &p in &all_points(&inst.net) {
            for s in &sampled_scenarios(&inst.net, mode, inst.k)
                .into_iter()
                .take(40)
                .collect::<Vec<_>>()
            {
                assert_eq!(
                    plain.load_at(p, s),
                    auto.load_at(p, s),
                    "{ctx}: load differs"
                );
            }
        }
    }
}

/// The flat arena is a deterministic function of the operation sequence:
/// re-running an instance reproduces `nodes_created` exactly (no
/// randomized hashing, no address-dependent iteration anywhere in the
/// hot path). This is the invariant that lets CI gate on exact node
/// counts.
#[test]
fn node_counts_are_bit_deterministic_across_runs() {
    for inst in &instances() {
        for mode in [FailureMode::Links, FailureMode::Routers] {
            let trace = || {
                let mut v = run(inst, mode, YuOptions::default());
                let out = v.verify(&inst.tlp);
                // Node counts and the unique-table peak are exact
                // replay invariants (hash-consing makes them functions
                // of the set of functions built, not of operation
                // order); cache miss counters can legitimately wobble
                // with iteration order upstream, so they are not gated.
                (
                    out.stats.mtbdd.nodes_created,
                    out.stats.mtbdd.unique_table_peak,
                    format!("{:?}", out.violations),
                )
            };
            assert_eq!(
                trace(),
                trace(),
                "{} mode={mode:?}: runs must be bit-deterministic",
                inst.name
            );
        }
    }
}

/// Enumerated verification through frozen overlays: full per-requirement
/// violation sets agree with the sequential checker.
#[test]
fn enumerated_verification_matches_through_overlays() {
    let insts = instances();
    for inst in &insts[..3] {
        let mut seq = run(inst, FailureMode::Links, YuOptions::default());
        let mut par = run(
            inst,
            FailureMode::Links,
            YuOptions {
                check_workers: 4,
                ..Default::default()
            },
        );
        let se = seq.verify_enumerated(&inst.tlp, 6);
        let pe = par.verify_enumerated(&inst.tlp, 6);
        assert_eq!(
            se.violations, pe.violations,
            "{}: enumerated violations differ",
            inst.name
        );
    }
}
