//! Differential testing: YU's symbolic loads, evaluated at any concrete
//! scenario, must equal the independent concrete simulator's loads
//! exactly — and the baselines must agree with YU's verdicts.

use yu::baselines::{jingubang_verify, qarc_verify};
use yu::core::{YuOptions, YuVerifier};
use yu::gen::{fattree, wan, WanParams};
use yu::mtbdd::Ratio;
use yu::net::{scenarios_up_to_k, FailureMode, Flow, LoadPoint, Network, Scenario, Tlp};
use yu::routing::ConcreteRoutes;

/// Sums the concrete per-flow results into per-point loads.
fn concrete_loads(
    net: &Network,
    scenario: &Scenario,
    flows: &[Flow],
) -> std::collections::HashMap<LoadPoint, Ratio> {
    let routes = ConcreteRoutes::compute(net, scenario);
    assert!(routes.converged, "concrete BGP must converge");
    let mut loads: std::collections::HashMap<LoadPoint, Ratio> = Default::default();
    let mut add = |p: LoadPoint, v: Ratio| {
        let e = loads.entry(p).or_insert(Ratio::ZERO);
        *e = e.clone() + v;
    };
    for f in flows {
        let res = routes.forward_flow(f, yu::net::DEFAULT_MAX_HOPS);
        for (l, frac) in res.link_fraction {
            add(LoadPoint::Link(l), frac * f.volume.clone());
        }
        for (r, frac) in res.delivered {
            add(LoadPoint::Delivered(r), frac * f.volume.clone());
        }
        for (r, frac) in res.dropped {
            add(LoadPoint::Dropped(r), frac * f.volume.clone());
        }
    }
    loads
}

fn assert_symbolic_matches_concrete(
    net: &Network,
    flows: &[Flow],
    mode: FailureMode,
    k: u32,
    scenarios: impl Iterator<Item = Scenario>,
) {
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k,
            mode,
            ..Default::default()
        },
    );
    v.add_flows(flows);
    for s in scenarios {
        assert!(s.count() as u32 <= k);
        let expected = concrete_loads(net, &s, flows);
        for l in net.topo.links() {
            let sym = v.load_at(LoadPoint::Link(l), &s);
            let conc = expected
                .get(&LoadPoint::Link(l))
                .cloned()
                .unwrap_or(Ratio::ZERO);
            assert_eq!(
                sym,
                conc,
                "link {} under {}",
                net.topo.link_label(l),
                s.describe(&net.topo)
            );
        }
        for r in net.topo.routers() {
            for p in [LoadPoint::Delivered(r), LoadPoint::Dropped(r)] {
                let sym = v.load_at(p, &s);
                let conc = expected.get(&p).cloned().unwrap_or(Ratio::ZERO);
                assert_eq!(
                    sym,
                    conc,
                    "{} under {}",
                    p.describe(&net.topo),
                    s.describe(&net.topo)
                );
            }
        }
    }
}

#[test]
fn random_wans_match_concrete_under_link_failures() {
    for seed in [1u64, 2, 3] {
        let w = wan(WanParams {
            core_routers: 6,
            stub_routers: 3,
            extra_core_links: 4,
            prefixes: 12,
            sr_policies: 2,
            seed,
        });
        let flows = w.flows(40, seed + 100);
        let scenarios = scenarios_up_to_k(&w.net.topo, FailureMode::Links, 1);
        assert_symbolic_matches_concrete(&w.net, &flows, FailureMode::Links, 1, scenarios);
    }
}

#[test]
fn random_wan_matches_concrete_under_2_link_failures_sampled() {
    let w = wan(WanParams {
        core_routers: 5,
        stub_routers: 2,
        extra_core_links: 3,
        prefixes: 8,
        sr_policies: 1,
        seed: 7,
    });
    let flows = w.flows(25, 70);
    // Every second 2-failure scenario, to keep runtime sane.
    let scenarios = scenarios_up_to_k(&w.net.topo, FailureMode::Links, 2)
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, s)| s);
    assert_symbolic_matches_concrete(&w.net, &flows, FailureMode::Links, 2, scenarios);
}

#[test]
fn random_wan_matches_concrete_under_router_failures() {
    let w = wan(WanParams {
        core_routers: 6,
        stub_routers: 3,
        extra_core_links: 4,
        prefixes: 10,
        sr_policies: 2,
        seed: 11,
    });
    let flows = w.flows(30, 170);
    let scenarios = scenarios_up_to_k(&w.net.topo, FailureMode::Routers, 1);
    assert_symbolic_matches_concrete(&w.net, &flows, FailureMode::Routers, 1, scenarios);
}

#[test]
fn fattree_matches_concrete() {
    let ft = fattree(4);
    let flows = ft.pairwise_flows(10, Ratio::int(5));
    let scenarios = scenarios_up_to_k(&ft.net.topo, FailureMode::Links, 1);
    assert_symbolic_matches_concrete(&ft.net, &flows, FailureMode::Links, 1, scenarios);
}

#[test]
fn yu_and_jingubang_agree_on_verdicts() {
    let w = wan(WanParams {
        core_routers: 6,
        stub_routers: 3,
        extra_core_links: 4,
        prefixes: 12,
        sr_policies: 2,
        seed: 21,
    });
    let flows = w.flows(40, 121);
    for threshold in [Ratio::new(1, 2), Ratio::new(10, 100), Ratio::int(2)] {
        let tlp = Tlp::no_overload(&w.net.topo, threshold.clone());
        let mut v = YuVerifier::new(
            w.net.clone(),
            YuOptions {
                k: 1,
                ..Default::default()
            },
        );
        v.add_flows(&flows);
        let yu_out = v.verify(&tlp);
        let jg_out = jingubang_verify(&w.net, &flows, &tlp, 1, FailureMode::Links, 64, false);
        assert_eq!(
            yu_out.verified(),
            jg_out.verified(),
            "threshold {threshold}: YU={:?} JG={:?}",
            yu_out.violations.first().map(|x| x.describe(&w.net.topo)),
            jg_out.violations.first().map(|x| x.describe(&w.net.topo)),
        );
        // Every YU violation must be confirmed by the enumerator.
        for vi in &yu_out.violations {
            assert!(
                jg_out.violations.iter().any(|jv| jv.point == vi.point
                    && jv.scenario == vi.scenario
                    && jv.load == vi.load),
                "unconfirmed YU violation: {}",
                vi.describe(&w.net.topo)
            );
        }
    }
}

#[test]
fn yu_and_qarc_agree_on_fattrees_at_k1() {
    // At a single failure every surviving BGP path is also a shortest
    // path, so QARC's weighted-graph model coincides with the real
    // control plane and the two verifiers must agree.
    let ft = fattree(4);
    let flows = ft.pairwise_flows(9, Ratio::int(5));
    for threshold in [Ratio::new(30, 100), Ratio::new(90, 100)] {
        let tlp = Tlp::no_overload(&ft.net.topo, threshold.clone());
        let mut v = YuVerifier::new(
            ft.net.clone(),
            YuOptions {
                k: 1,
                ..Default::default()
            },
        );
        v.add_flows(&flows);
        let yu_out = v.verify(&tlp);
        let qa_out = qarc_verify(&ft.net, &flows, &tlp, 1, false);
        assert_eq!(
            yu_out.verified(),
            qa_out.verified(),
            "threshold {threshold}"
        );
    }
}

#[test]
fn qarc_model_diverges_from_bgp_under_double_failures() {
    // The paper's generality argument, demonstrated: fail edge0-agg0 and
    // edge1-agg1 in pod 0. BGP (AS-path loop prevention) leaves
    // edge0 -> edge1 traffic with no route — re-entering pod 0's AS is
    // rejected — while a pure shortest-path model happily routes the
    // "valley" path edge0-agg1-core-agg0-edge1. QARC therefore reports
    // different loads than the real control plane here.
    let ft = fattree(4);
    let e0 = ft.edges[0];
    let e1 = ft.edges[1];
    let flow = Flow::new(
        e0,
        "11.0.0.1".parse().unwrap(),
        "100.0.0.1".parse().unwrap(), // edge prefix 1... computed below
        0,
        Ratio::int(5),
    );
    let dst = {
        let p = ft.edge_prefix(1);
        yu::net::Ipv4(p.addr().0 | 1)
    };
    let flow = Flow { dst, ..flow };
    // Find the two intra-pod ulinks.
    let mut cut = Vec::new();
    for u in ft.net.topo.ulinks() {
        let (fwd, _) = ft.net.topo.directions(u);
        let lk = ft.net.topo.link(fwd);
        let names = [
            ft.net.topo.router(lk.from).name.clone(),
            ft.net.topo.router(lk.to).name.clone(),
        ];
        if names.contains(&"agg0_0".to_string()) && names.contains(&"edge0_0".to_string()) {
            cut.push(u);
        }
        if names.contains(&"agg0_1".to_string()) && names.contains(&"edge0_1".to_string()) {
            cut.push(u);
        }
    }
    assert_eq!(cut.len(), 2);
    let scenario = Scenario::links(cut);

    // Real control plane (concrete BGP simulation): the traffic is
    // dropped at the ingress.
    let loads = concrete_loads(&ft.net, &scenario, std::slice::from_ref(&flow));
    assert_eq!(
        loads.get(&LoadPoint::Delivered(e1)).cloned(),
        None,
        "BGP cannot deliver (valley path rejected)"
    );
    assert_eq!(
        loads.get(&LoadPoint::Dropped(e0)).cloned(),
        Some(Ratio::int(5))
    );

    // QARC's shortest-path model believes the valley path delivers in
    // this scenario, so its violation set misses it, while the
    // BGP-faithful enumerator reports it.
    let tlp = Tlp::new().with(yu::net::TlpReq::at_least(
        LoadPoint::Delivered(e1),
        Ratio::int(5),
    ));
    let qa_out = qarc_verify(&ft.net, std::slice::from_ref(&flow), &tlp, 2, false);
    assert!(
        !qa_out.violations.iter().any(|v| v.scenario == scenario),
        "the shortest-path model believes the valley path delivers here"
    );
    let jg_out = jingubang_verify(
        &ft.net,
        &[flow],
        &tlp,
        2,
        FailureMode::Links,
        yu::net::DEFAULT_MAX_HOPS,
        false,
    );
    assert!(
        jg_out.violations.iter().any(|v| v.scenario == scenario),
        "the real control plane drops the traffic here"
    );
}

#[test]
fn combined_links_and_routers_mode_matches_concrete() {
    let w = wan(WanParams {
        core_routers: 5,
        stub_routers: 2,
        extra_core_links: 3,
        prefixes: 8,
        sr_policies: 1,
        seed: 42,
    });
    let flows = w.flows(20, 4242);
    let scenarios = scenarios_up_to_k(&w.net.topo, FailureMode::LinksAndRouters, 1);
    assert_symbolic_matches_concrete(&w.net, &flows, FailureMode::LinksAndRouters, 1, scenarios);
}

#[test]
fn fig1_network_matches_concrete_under_router_failures() {
    use yu::gen::motivating_example;
    let ex = motivating_example();
    let scenarios = scenarios_up_to_k(&ex.net.topo, FailureMode::Routers, 2);
    assert_symbolic_matches_concrete(&ex.net, &ex.flows, FailureMode::Routers, 2, scenarios);
}
