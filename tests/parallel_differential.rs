//! Differential tests for the sharded parallel execution engine: for
//! every built-in example and both failure modes, a run with `workers >
//! 1` (private per-worker MTBDD arenas, cross-arena import merge) must be
//! indistinguishable from the sequential engine — same
//! `VerificationOutcome`, same violation set (including counterexample
//! scenarios), same aggregation statistics, same load terminals, and the
//! same concrete load at every sampled scenario and load point.

use yu::core::{YuOptions, YuVerifier};
use yu::gen::{
    fattree_with_flows, motivating_example, sr_anycast_incident, static_blackhole_incident, wan,
    WanParams,
};
use yu::mtbdd::{Ratio, Term};
use yu::net::{scenarios_up_to_k, FailureMode, Flow, LoadPoint, Network, Scenario, Tlp};

struct Instance {
    name: &'static str,
    net: Network,
    flows: Vec<Flow>,
    tlp: Tlp,
    k: u32,
}

/// Every built-in `yu export` example (fig1, fig9, fig10, ft4) plus a
/// small random WAN; the paper-scale n0 preset is exercised by the bench
/// harness instead to keep test runtime sane.
fn instances() -> Vec<Instance> {
    let fig1 = motivating_example();
    let fig9 = sr_anycast_incident();
    let fig10 = static_blackhole_incident();
    let (ft, ft_flows) = fattree_with_flows(4, 16);
    let ft_tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
    let w = wan(WanParams {
        core_routers: 5,
        stub_routers: 2,
        extra_core_links: 3,
        prefixes: 8,
        sr_policies: 1,
        seed: 7,
    });
    let w_flows = w.flows(25, 70);
    let w_tlp = Tlp::no_overload(&w.net.topo, Ratio::new(95, 100));
    vec![
        Instance {
            name: "fig1",
            net: fig1.net,
            flows: fig1.flows,
            tlp: fig1.p2,
            k: 1,
        },
        Instance {
            name: "fig9",
            net: fig9.net,
            flows: fig9.flows,
            tlp: fig9.tlp,
            k: 1,
        },
        Instance {
            name: "fig10",
            net: fig10.net,
            flows: fig10.flows,
            tlp: fig10.tlp,
            k: 1,
        },
        Instance {
            name: "ft4",
            net: ft.net,
            flows: ft_flows,
            tlp: ft_tlp,
            k: 2,
        },
        Instance {
            name: "wan-small",
            net: w.net,
            flows: w_flows,
            tlp: w_tlp,
            k: 1,
        },
    ]
}

fn run(inst: &Instance, mode: FailureMode, workers: usize) -> YuVerifier {
    let mut v = YuVerifier::new(
        inst.net.clone(),
        YuOptions {
            k: inst.k,
            mode,
            workers,
            ..Default::default()
        },
    );
    v.add_flows(&inst.flows);
    v
}

/// All load points of a network (links plus per-router pseudo-sinks).
fn all_points(net: &Network) -> Vec<LoadPoint> {
    let mut pts: Vec<LoadPoint> = net.topo.links().map(LoadPoint::Link).collect();
    for r in net.topo.routers() {
        pts.push(LoadPoint::Delivered(r));
        pts.push(LoadPoint::Dropped(r));
    }
    pts
}

/// Sampled `≤ k` scenarios: every scenario for small spaces, every third
/// for larger ones.
fn sampled_scenarios(net: &Network, mode: FailureMode, k: u32) -> Vec<Scenario> {
    let all: Vec<Scenario> = scenarios_up_to_k(&net.topo, mode, k as usize).collect();
    let step = if all.len() > 200 { 3 } else { 1 };
    all.into_iter().step_by(step).collect()
}

/// The core differential assertion: `workers = 1` vs each entry of
/// `worker_counts` must agree on everything observable.
fn assert_parallel_matches_sequential(inst: &Instance, mode: FailureMode, worker_counts: &[usize]) {
    let mut seq = run(inst, mode, 1);
    let seq_out = seq.verify(&inst.tlp);
    let points = all_points(&inst.net);
    let scenarios = sampled_scenarios(&inst.net, mode, inst.k);
    for &w in worker_counts {
        let ctx = format!("{} mode={mode:?} workers={w}", inst.name);
        let mut par = run(inst, mode, w);
        let par_out = par.verify(&inst.tlp);
        // A single flow group legitimately falls back to the sequential
        // engine; otherwise the sharded engine must actually have run.
        if seq_out.stats.flow_groups > 1 {
            assert!(
                par_out.stats.mtbdd_workers.nodes_created > 0,
                "{ctx}: parallel run must report worker arena stats"
            );
        }
        assert_eq!(
            seq_out.verified(),
            par_out.verified(),
            "{ctx}: verdict differs"
        );
        assert_eq!(
            seq_out.violations, par_out.violations,
            "{ctx}: violation set differs"
        );
        assert_eq!(
            seq_out.stats.flow_groups, par_out.stats.flow_groups,
            "{ctx}: group count differs"
        );
        for (point, stats) in &seq_out.stats.per_point {
            assert_eq!(
                Some(stats),
                par_out.stats.per_point.get(point),
                "{ctx}: aggregation stats differ at {point:?}"
            );
        }
        for &p in &points {
            // Identical load terminals (the values Theorem 5.1 scans)...
            let tau_seq = seq.load_mtbdd(p);
            let mut terms_seq: Vec<Term> = seq.manager().terminals(tau_seq);
            let tau_par = par.load_mtbdd(p);
            let mut terms_par: Vec<Term> = par.manager().terminals(tau_par);
            terms_seq.sort();
            terms_par.sort();
            assert_eq!(terms_seq, terms_par, "{ctx}: terminals differ at {p:?}");
            // ...and identical concrete loads at every sampled scenario.
            for s in &scenarios {
                assert_eq!(
                    seq.load_at(p, s),
                    par.load_at(p, s),
                    "{ctx}: load differs at {p:?} under {s:?}"
                );
            }
        }
    }
}

#[test]
fn fig1_parallel_matches_sequential_both_modes() {
    let inst = &instances()[0];
    for mode in [FailureMode::Links, FailureMode::Routers] {
        assert_parallel_matches_sequential(inst, mode, &[4, 8]);
    }
}

#[test]
fn fig9_parallel_matches_sequential_both_modes() {
    let inst = &instances()[1];
    for mode in [FailureMode::Links, FailureMode::Routers] {
        assert_parallel_matches_sequential(inst, mode, &[4, 8]);
    }
}

#[test]
fn fig10_parallel_matches_sequential_both_modes() {
    let inst = &instances()[2];
    for mode in [FailureMode::Links, FailureMode::Routers] {
        assert_parallel_matches_sequential(inst, mode, &[4, 8]);
    }
}

#[test]
fn ft4_parallel_matches_sequential_both_modes() {
    let inst = &instances()[3];
    for mode in [FailureMode::Links, FailureMode::Routers] {
        assert_parallel_matches_sequential(inst, mode, &[4, 8]);
    }
}

#[test]
fn wan_parallel_matches_sequential_both_modes() {
    let inst = &instances()[4];
    for mode in [FailureMode::Links, FailureMode::Routers] {
        assert_parallel_matches_sequential(inst, mode, &[4, 8]);
    }
}

/// Batched `add_flows` calls must merge deterministically in parallel
/// mode too (the flow-ordered import is per batch).
#[test]
fn batched_add_flows_parallel_matches_sequential() {
    let inst = &instances()[3];
    let mut seq = run(inst, FailureMode::Links, 1);
    let mut par = YuVerifier::new(
        inst.net.clone(),
        YuOptions {
            k: inst.k,
            mode: FailureMode::Links,
            workers: 4,
            ..Default::default()
        },
    );
    let mid = inst.flows.len() / 2;
    par.add_flows(&inst.flows[..mid]);
    par.add_flows(&inst.flows[mid..]);
    let so = seq.verify(&inst.tlp);
    let po = par.verify(&inst.tlp);
    assert_eq!(so.verified(), po.verified());
    assert_eq!(so.violations, po.violations);
    for s in sampled_scenarios(&inst.net, FailureMode::Links, inst.k)
        .into_iter()
        .take(20)
    {
        for l in inst.net.topo.links() {
            assert_eq!(
                seq.load_at(LoadPoint::Link(l), &s),
                par.load_at(LoadPoint::Link(l), &s)
            );
        }
    }
}

/// `--workers 8` with fewer groups than workers degrades gracefully.
#[test]
fn more_workers_than_groups() {
    let inst = &instances()[0];
    let mut seq = run(inst, FailureMode::Links, 1);
    let mut par = run(inst, FailureMode::Links, 64);
    assert_eq!(
        seq.verify(&inst.tlp).violations,
        par.verify(&inst.tlp).violations
    );
}
