//! Differential tests for the incremental re-verification engine: every
//! built-in example is driven through a curated edit script (cost bump,
//! link removal, volume change, new requirement, combined edits), and
//! after **every** step the incremental verifier must be bit-identical
//! to a from-scratch run on the updated inputs — same verdict, same
//! violation set (including counterexample scenarios), same per-point
//! aggregation statistics, same prune count, same flow-group results
//! (volumes, members, and symbolic load terminals), and the same
//! concrete loads at sampled scenarios. The whole script runs with
//! static pruning both on and off.
//!
//! Under `YU_AUDIT=1` the reused arena additionally passes the
//! canonicity auditor after each invalidation (the engine's own
//! `audit_checkpoint`), and this harness re-audits explicitly after
//! every step regardless.

use yu::core::{IncrementalVerifier, VerificationOutcome, YuOptions, YuVerifier};
use yu::gen::{
    fattree_with_flows, motivating_example, sr_anycast_incident, static_blackhole_incident, wan,
    WanParams,
};
use yu::mtbdd::{Ratio, Term};
use yu::net::{
    scenarios_up_to_k, Change, ChangeSet, FailureMode, Flow, LoadPoint, Network, PointRef,
    Scenario, Tlp,
};

struct Instance {
    name: &'static str,
    net: Network,
    flows: Vec<Flow>,
    tlp: Tlp,
    k: u32,
}

/// Every built-in `yu export` example (fig1, fig9, fig10, ft4) plus the
/// small random WAN of the parallel differential suite (IGP + SR
/// routing, so cost edits actually invalidate routes).
fn instances() -> Vec<Instance> {
    let fig1 = motivating_example();
    let fig9 = sr_anycast_incident();
    let fig10 = static_blackhole_incident();
    let (ft, ft_flows) = fattree_with_flows(4, 16);
    let ft_tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
    let w = wan(WanParams {
        core_routers: 5,
        stub_routers: 2,
        extra_core_links: 3,
        prefixes: 8,
        sr_policies: 1,
        seed: 7,
    });
    let w_flows = w.flows(25, 70);
    let w_tlp = Tlp::no_overload(&w.net.topo, Ratio::new(95, 100));
    vec![
        Instance {
            name: "fig1",
            net: fig1.net,
            flows: fig1.flows,
            tlp: fig1.p2,
            k: 1,
        },
        Instance {
            name: "fig9",
            net: fig9.net,
            flows: fig9.flows,
            tlp: fig9.tlp,
            k: 1,
        },
        Instance {
            name: "fig10",
            net: fig10.net,
            flows: fig10.flows,
            tlp: fig10.tlp,
            k: 1,
        },
        Instance {
            name: "ft4",
            net: ft.net,
            flows: ft_flows,
            tlp: ft_tlp,
            k: 2,
        },
        Instance {
            name: "wan-small",
            net: w.net,
            flows: w_flows,
            tlp: w_tlp,
            k: 1,
        },
    ]
}

/// The router names of directed link `l`.
fn link_names(net: &Network, l: yu::net::LinkId) -> (String, String) {
    let lk = net.topo.link(l);
    (
        net.topo.router(lk.from).name.clone(),
        net.topo.router(lk.to).name.clone(),
    )
}

/// The curated edit script: one change-set per step, applied
/// cumulatively. Built against the instance's *initial* state; steps
/// only reference elements that survive the earlier steps.
fn edit_script(inst: &Instance) -> Vec<(&'static str, ChangeSet)> {
    let topo = &inst.net.topo;
    let first_link = topo.links().next().expect("instances have links");
    let (from, to) = link_names(&inst.net, first_link);
    let last_ulink = yu::net::ULinkId((topo.num_ulinks() - 1) as u32);
    let (rm_fwd, _) = topo.directions(last_ulink);
    let (rm_from, rm_to) = link_names(&inst.net, rm_fwd);
    let last_router = topo
        .routers()
        .last()
        .map(|r| topo.router(r).name.clone())
        .expect("instances have routers");
    let mut script = vec![
        (
            "cost-bump",
            ChangeSet::single(Change::SetLinkCost {
                from: from.clone(),
                to: to.clone(),
                index: 0,
                cost: topo.link(first_link).igp_cost * 3 + 7,
            }),
        ),
        (
            "volume-change",
            ChangeSet::single(Change::SetFlowVolume {
                flow: 0,
                volume: inst.flows[0].volume.clone() * Ratio::int(2),
            }),
        ),
        (
            "new-req",
            ChangeSet::single(Change::AddReq {
                point: PointRef::Dropped {
                    router: last_router.clone(),
                },
                min: None,
                max: Some(Ratio::int(1_000_000)),
            }),
        ),
        (
            "combined",
            ChangeSet {
                changes: vec![
                    Change::SetLinkCost {
                        from,
                        to,
                        index: 0,
                        cost: topo.link(first_link).igp_cost,
                    },
                    Change::SetFlowVolume {
                        flow: 0,
                        volume: inst.flows[0].volume.clone(),
                    },
                ],
            },
        ),
        (
            "link-removal",
            ChangeSet::single(Change::RemoveLink {
                from: rm_from,
                to: rm_to,
                index: 0,
            }),
        ),
    ];
    // A new flow entering at the last router, toward an address an
    // existing flow already reaches.
    script.push((
        "new-flow",
        ChangeSet::single(Change::AddFlow {
            ingress: last_router,
            src: yu::net::Ipv4::new(11, 99, 0, 1),
            dst: inst.flows[0].dst,
            dscp: 0,
            volume: Ratio::int(3),
        }),
    ));
    script
}

fn options(inst: &Instance, static_prune: bool) -> YuOptions {
    YuOptions {
        k: inst.k,
        mode: FailureMode::Links,
        static_prune,
        ..Default::default()
    }
}

/// A from-scratch run on the given state.
fn scratch(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    opts: YuOptions,
) -> (YuVerifier, VerificationOutcome) {
    let mut v = YuVerifier::new(net.clone(), opts);
    v.add_flows(flows);
    let out = v.verify(tlp);
    (v, out)
}

/// The semantic signature of `flow_results()`: per group (in the
/// deterministic result order) the representative identity, volume,
/// member count, and per-point symbolic load terminals.
#[allow(clippy::type_complexity)]
fn flow_signature(
    v: &YuVerifier,
) -> Vec<(
    (yu::net::RouterId, yu::net::Ipv4, yu::net::Ipv4, u8),
    Ratio,
    usize,
    Vec<(LoadPoint, Vec<Term>)>,
)> {
    v.flow_results()
        .map(|(g, stf)| {
            let mut loads: Vec<(LoadPoint, Vec<Term>)> = stf
                .loads
                .iter()
                .map(|(&p, &n)| {
                    let mut t = v.manager().terminals(n);
                    t.sort();
                    (p, t)
                })
                .collect();
            loads.sort_by_key(|&(p, _)| p);
            (
                (g.rep.ingress, g.rep.src, g.rep.dst, g.rep.dscp),
                g.volume.clone(),
                g.members,
                loads,
            )
        })
        .collect()
}

/// Sampled `≤ k` scenarios (every scenario for small spaces).
fn sampled_scenarios(net: &Network, k: u32) -> Vec<Scenario> {
    let all: Vec<Scenario> = scenarios_up_to_k(&net.topo, FailureMode::Links, k as usize).collect();
    let step = if all.len() > 120 { 5 } else { 1 };
    all.into_iter().step_by(step).collect()
}

/// The full bit-identity assertion between an incremental state and a
/// scratch run on the same inputs.
fn assert_matches_scratch(ctx: &str, inc: &mut IncrementalVerifier, inc_out: &VerificationOutcome) {
    let opts = inc.verifier().options();
    let (mut fresh, fresh_out) = scratch(
        &inc.network().clone(),
        inc.flows(),
        &inc.tlp().clone(),
        opts,
    );
    assert_eq!(
        fresh_out.verified(),
        inc_out.verified(),
        "{ctx}: verdict differs"
    );
    assert_eq!(
        fresh_out.violations, inc_out.violations,
        "{ctx}: violation set differs"
    );
    assert_eq!(
        fresh_out.stats.reqs_pruned, inc_out.stats.reqs_pruned,
        "{ctx}: prune count differs"
    );
    assert_eq!(
        fresh_out.stats.flow_groups, inc_out.stats.flow_groups,
        "{ctx}: group count differs"
    );
    assert_eq!(
        fresh_out.stats.per_point, inc_out.stats.per_point,
        "{ctx}: per-point aggregation stats differ"
    );
    assert_eq!(
        flow_signature(&fresh),
        flow_signature(inc.verifier()),
        "{ctx}: flow_results differ"
    );
    // Concrete loads at every requirement point under sampled scenarios.
    let scenarios = sampled_scenarios(&inc.network().clone(), opts.k);
    let points: Vec<LoadPoint> = inc.tlp().reqs.iter().map(|r| r.point).collect();
    for p in points {
        for s in &scenarios {
            assert_eq!(
                fresh.load_at(p, s),
                inc.verifier_mut().load_at(p, s),
                "{ctx}: load differs at {p:?} under {s:?}"
            );
        }
    }
    // The reused arena stays canonical after every invalidation.
    inc.verifier().audit().assert_ok(ctx);
}

fn run_script(inst: &Instance, static_prune: bool) {
    let opts = options(inst, static_prune);
    let mut inc =
        IncrementalVerifier::new(inst.net.clone(), inst.flows.clone(), inst.tlp.clone(), opts);
    let base = inc.verify();
    assert_matches_scratch(
        &format!("{} base prune={static_prune}", inst.name),
        &mut inc,
        &base,
    );
    for (step, cs) in edit_script(inst) {
        let ctx = format!("{} step={step} prune={static_prune}", inst.name);
        let out = inc
            .apply(&cs)
            .unwrap_or_else(|e| panic!("{ctx}: apply failed: {e}"));
        let delta = inc.delta_stats();
        // The change engine must account for every group, one way or the
        // other.
        assert_eq!(
            delta.reused_groups + delta.recomputed_groups,
            out.stats.flow_groups,
            "{ctx}: reuse counters do not partition the groups"
        );
        assert_matches_scratch(&ctx, &mut inc, &out);
    }
}

#[test]
fn fig1_edit_script_matches_scratch() {
    let inst = &instances()[0];
    run_script(inst, true);
    run_script(inst, false);
}

#[test]
fn fig9_edit_script_matches_scratch() {
    let inst = &instances()[1];
    run_script(inst, true);
    run_script(inst, false);
}

#[test]
fn fig10_edit_script_matches_scratch() {
    let inst = &instances()[2];
    run_script(inst, true);
    run_script(inst, false);
}

#[test]
fn ft4_edit_script_matches_scratch() {
    let inst = &instances()[3];
    run_script(inst, true);
    run_script(inst, false);
}

#[test]
fn wan_edit_script_matches_scratch() {
    let inst = &instances()[4];
    run_script(inst, true);
    run_script(inst, false);
}

/// The headline acceptance criterion: on a fattree m=8, a single
/// link-cost edit through the diff path recomputes strictly fewer flow
/// groups than a scratch run executes, and the `delta.reused_groups`
/// telemetry counter is positive — incremental re-verification provably
/// reuses work.
#[test]
fn fattree_m8_cost_edit_reuses_groups() {
    let (ft, flows) = fattree_with_flows(8, 1);
    let tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
    let mut inc = IncrementalVerifier::new(
        ft.net.clone(),
        flows,
        tlp,
        YuOptions {
            k: 1,
            mode: FailureMode::Links,
            ..Default::default()
        },
    );
    let total = inc.verify().stats.flow_groups;
    assert!(total > 0);
    yu::telemetry::set_enabled(true);
    let first = ft.net.topo.links().next().unwrap();
    let (from, to) = link_names(&ft.net, first);
    let cs = ChangeSet::single(Change::SetLinkCost {
        from,
        to,
        index: 0,
        cost: ft.net.topo.link(first).igp_cost * 7,
    });
    let out = inc.apply(&cs).expect("cost edit applies");
    yu::telemetry::set_enabled(false);
    let delta = inc.delta_stats();
    assert!(!delta.full_rebuild, "a cost edit must not rebuild");
    assert!(delta.reused_groups > 0, "no groups reused: {delta:?}");
    assert!(
        delta.recomputed_groups < out.stats.flow_groups,
        "incremental run recomputed every group: {delta:?}"
    );
    let counters = yu::telemetry::snapshot().counter_totals();
    assert!(
        counters.get("delta.reused_groups").copied().unwrap_or(0) > 0,
        "telemetry counter delta.reused_groups not recorded: {counters:?}"
    );
    // And the incremental verdict still matches scratch.
    assert_matches_scratch("fattree-m8 cost edit", &mut inc, &out);
}

/// A WAN cost edit must actually exercise the trace-replay path: the
/// IGP/SR routing there is cost-sensitive, so flipping a core link's
/// cost either invalidates some groups (recomputed > 0) or provably
/// changes nothing — and in both cases the verdicts must match scratch.
/// This also guards against a vacuously-true replay (empty traces).
#[test]
fn wan_cost_edit_invalidates_something_somewhere() {
    let inst = &instances()[4];
    let mut inc = IncrementalVerifier::new(
        inst.net.clone(),
        inst.flows.clone(),
        inst.tlp.clone(),
        options(inst, true),
    );
    let _ = inc.verify();
    let mut any_invalidated = false;
    // Try every undirected link until one reroutes something.
    for u in inst.net.topo.ulinks() {
        let (fwd, _) = inst.net.topo.directions(u);
        let (from, to) = link_names(&inst.net, fwd);
        let cs = ChangeSet::single(Change::SetLinkCost {
            from,
            to,
            index: 0,
            cost: inst.net.topo.link(fwd).igp_cost * 100 + 13,
        });
        let out = inc.apply(&cs).expect("cost edit applies");
        if inc.delta_stats().recomputed_groups > 0 {
            any_invalidated = true;
            assert_matches_scratch("wan cost edit", &mut inc, &out);
            break;
        }
    }
    assert!(
        any_invalidated,
        "no cost edit on any WAN link invalidated any flow group — \
         trace replay is likely vacuous"
    );
}
