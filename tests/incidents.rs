//! Reproduction of the two production incidents YU caught (paper §6):
//! the Fig. 9 anycast-SR overload and the Fig. 10 static-route blackhole.

use yu::core::{YuOptions, YuVerifier};
use yu::gen::{sr_anycast_incident, static_blackhole_incident};
use yu::mtbdd::Ratio;
use yu::net::{LoadPoint, Scenario};

#[test]
fn fig9_anycast_sr_overload_found() {
    let inc = sr_anycast_incident();
    let mut v = YuVerifier::new(
        inc.net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&inc.flows);

    // No failure: the backbone interconnect carries nothing.
    let (bb_fwd, bb_rev) = inc.net.topo.directions(inc.backbone_link);
    let s = Scenario::none();
    assert_eq!(v.load_at(LoadPoint::Link(bb_fwd), &s), Ratio::ZERO);
    assert_eq!(v.load_at(LoadPoint::Link(bb_rev), &s), Ratio::ZERO);

    // The incident: B2-C2 fails, B2's half of the traffic crosses the
    // 40 Gbps B1-B2 link.
    let s = Scenario::links([inc.trigger_link]);
    let b2_to_b1 = [bb_fwd, bb_rev]
        .into_iter()
        .find(|&l| inc.net.topo.router(inc.net.topo.link(l).from).name == "B2")
        .unwrap();
    assert_eq!(v.load_at(LoadPoint::Link(b2_to_b1), &s), Ratio::int(40));
    // Still fully delivered (the property violated is overload, not
    // delivery).
    let c1 = inc.routers[5];
    assert_eq!(v.load_at(LoadPoint::Delivered(c1), &s), Ratio::int(80));

    // YU's verdict: the overload TLP is violated, and the counterexample
    // names the B1-B2 interconnect with the B2-C2 trigger.
    let out = v.verify(&inc.tlp);
    assert!(!out.verified());
    let vi = out
        .violations
        .iter()
        .find(|vi| vi.point == LoadPoint::Link(b2_to_b1))
        .expect("B1-B2 must be the overloaded link");
    assert_eq!(vi.load, Ratio::int(40)); // > 95% of 40 Gbps
                                         // Note there are two minimal triggers: B2-C2 (the paper's) and
                                         // C2-C1 (same effect one hop further); either is a correct
                                         // counterexample.
    assert_eq!(vi.scenario.failed_links.len(), 1);
    let bad = *vi.scenario.failed_links.iter().next().unwrap();
    let label = inc.net.topo.ulink_label(bad);
    assert!(label == "B2-C2" || label == "C2-C1", "{label}");
}

#[test]
fn fig9_holds_without_the_anycast_trap_at_k0() {
    let inc = sr_anycast_incident();
    let mut v = YuVerifier::new(
        inc.net.clone(),
        YuOptions {
            k: 0,
            ..Default::default()
        },
    );
    v.add_flows(&inc.flows);
    assert!(v.verify(&inc.tlp).verified(), "no-failure case is clean");
}

#[test]
fn fig10_static_blackhole_found() {
    let inc = static_blackhole_incident();
    let mut v = YuVerifier::new(
        inc.net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&inc.flows);
    let w = inc.routers[4];
    let d1 = inc.routers[2];

    // No failure: all 50 Gbps delivered at W through D1.
    let s = Scenario::none();
    assert_eq!(v.load_at(LoadPoint::Delivered(w), &s), Ratio::int(50));

    // D1-W down: the traffic still matches D1's advertised 10/8 and dies
    // in D1's Null0 even though the M2-D2-W path is alive.
    let s = Scenario::links([inc.trigger_link]);
    assert_eq!(v.load_at(LoadPoint::Delivered(w), &s), Ratio::ZERO);
    assert_eq!(v.load_at(LoadPoint::Dropped(d1), &s), Ratio::int(50));

    let out = v.verify(&inc.tlp);
    assert!(!out.verified());
    let vi = &out.violations[0];
    assert_eq!(vi.point, LoadPoint::Delivered(w));
    assert_eq!(vi.load, Ratio::ZERO);
    assert_eq!(vi.scenario, Scenario::links([inc.trigger_link]));
}

#[test]
fn fig10_redundancy_works_without_the_misconfig() {
    // Remove the deny filters (the root cause): with the /26 advertised,
    // M1 fails over to M2-D2-W and delivery survives the D1-W failure.
    let mut inc = static_blackhole_incident();
    for r in [inc.routers[2], inc.routers[3]] {
        inc.net
            .config_mut(r)
            .bgp
            .as_mut()
            .unwrap()
            .deny_exports
            .clear();
    }
    let mut v = YuVerifier::new(
        inc.net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&inc.flows);
    let out = v.verify(&inc.tlp);
    assert!(
        out.verified(),
        "with correct advertisements the network tolerates any single \
         failure: {:?}",
        out.violations
    );
}
