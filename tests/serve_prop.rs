//! Property test for the incremental re-verification engine: random
//! sequences of 1–10 change-sets applied to random WAN and fattree
//! specs, with every step's incremental verdict, violation list, and
//! `flow_results()` compared bit-for-bit against a from-scratch run on
//! the same inputs — across both failure modes and worker counts 1 / 4.
//!
//! The change generator draws only names and indices valid in the
//! *current* state, so most change-sets apply; the ones that still get
//! rejected (e.g. removing a router that a surviving requirement names)
//! must be rejected atomically — the post-error state must keep
//! matching a scratch run on the pre-error inputs.

use yu::core::{IncrementalVerifier, YuOptions, YuVerifier};
use yu::gen::{fattree_with_flows, wan, WanParams};
use yu::mtbdd::{Ratio, Term};
use yu::net::{Change, ChangeSet, FailureMode, Flow, Ipv4, LoadPoint, Network, PointRef, Tlp};

/// A splitmix-style deterministic generator (no external crates).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn router_name(net: &Network, rng: &mut Rng) -> String {
    let routers: Vec<_> = net.topo.routers().collect();
    let r = routers[rng.below(routers.len())];
    net.topo.router(r).name.clone()
}

/// One random change, valid against the current `(net, flows, tlp)`.
fn random_change(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    rng: &mut Rng,
    fresh: &mut u32,
) -> Change {
    loop {
        match rng.below(10) {
            0 => {
                let links: Vec<_> = net.topo.links().collect();
                let l = links[rng.below(links.len())];
                let lk = net.topo.link(l);
                return Change::SetLinkCost {
                    from: net.topo.router(lk.from).name.clone(),
                    to: net.topo.router(lk.to).name.clone(),
                    index: 0,
                    cost: 1 + rng.below(100) as u64,
                };
            }
            1 if !flows.is_empty() => {
                return Change::SetFlowVolume {
                    flow: rng.below(flows.len()),
                    volume: Ratio::int(1 + rng.below(50) as i64),
                };
            }
            2 => {
                // A new flow toward an address some existing flow already
                // uses (so it usually routes), from a random ingress.
                let dst = if flows.is_empty() {
                    Ipv4::new(10, 0, 0, 1)
                } else {
                    flows[rng.below(flows.len())].dst
                };
                *fresh += 1;
                return Change::AddFlow {
                    ingress: router_name(net, rng),
                    src: Ipv4::new(172, 16, (*fresh >> 8) as u8, *fresh as u8),
                    dst,
                    dscp: 0,
                    volume: Ratio::int(1 + rng.below(20) as i64),
                };
            }
            3 if flows.len() > 1 => {
                return Change::RemoveFlow {
                    flow: rng.below(flows.len()),
                };
            }
            4 => {
                let point = match rng.below(3) {
                    0 => {
                        let links: Vec<_> = net.topo.links().collect();
                        let l = links[rng.below(links.len())];
                        PointRef::of(LoadPoint::Link(l), &net.topo)
                    }
                    1 => PointRef::Delivered {
                        router: router_name(net, rng),
                    },
                    _ => PointRef::Dropped {
                        router: router_name(net, rng),
                    },
                };
                return Change::AddReq {
                    point,
                    min: None,
                    max: Some(Ratio::int(1 + rng.below(500) as i64)),
                };
            }
            5 if tlp.reqs.len() > 1 => {
                return Change::RemoveReq {
                    req: rng.below(tlp.reqs.len()),
                };
            }
            6 if !tlp.reqs.is_empty() => {
                return Change::SetReqBounds {
                    req: rng.below(tlp.reqs.len()),
                    min: None,
                    max: Some(Ratio::int(1 + rng.below(500) as i64)),
                };
            }
            7 => {
                let a = router_name(net, rng);
                let b = router_name(net, rng);
                if a != b {
                    return Change::AddLink {
                        a,
                        b,
                        cost: 1 + rng.below(50) as u64,
                        capacity: Ratio::int(100),
                    };
                }
            }
            8 if net.topo.num_ulinks() > net.topo.num_routers() => {
                let ulinks: Vec<_> = net.topo.ulinks().collect();
                let u = ulinks[rng.below(ulinks.len())];
                let (fwd, _) = net.topo.directions(u);
                let lk = net.topo.link(fwd);
                return Change::RemoveLink {
                    from: net.topo.router(lk.from).name.clone(),
                    to: net.topo.router(lk.to).name.clone(),
                    index: 0,
                };
            }
            9 => {
                *fresh += 1;
                return Change::AddRouter {
                    name: format!("Z{fresh}"),
                    loopback: Ipv4::new(99, 99, (*fresh >> 8) as u8, *fresh as u8),
                    asn: 64_000 + *fresh,
                };
            }
            _ => {}
        }
    }
}

/// The semantic signature of `flow_results()`.
#[allow(clippy::type_complexity)]
fn flow_signature(
    v: &YuVerifier,
) -> Vec<(
    (yu::net::RouterId, Ipv4, Ipv4, u8),
    Ratio,
    usize,
    Vec<(LoadPoint, Vec<Term>)>,
)> {
    v.flow_results()
        .map(|(g, stf)| {
            let mut loads: Vec<(LoadPoint, Vec<Term>)> = stf
                .loads
                .iter()
                .map(|(&p, &n)| {
                    let mut t = v.manager().terminals(n);
                    t.sort();
                    (p, t)
                })
                .collect();
            loads.sort_by_key(|&(p, _)| p);
            (
                (g.rep.ingress, g.rep.src, g.rep.dst, g.rep.dscp),
                g.volume.clone(),
                g.members,
                loads,
            )
        })
        .collect()
}

fn assert_matches_scratch(
    ctx: &str,
    inc: &IncrementalVerifier,
    inc_violations: &[yu::core::Violation],
) {
    let mut fresh = YuVerifier::new(inc.network().clone(), inc.verifier().options());
    fresh.add_flows(inc.flows());
    let fresh_out = fresh.verify(inc.tlp());
    assert_eq!(
        fresh_out.violations, inc_violations,
        "{ctx}: violation list differs from scratch"
    );
    assert_eq!(
        flow_signature(&fresh),
        flow_signature(inc.verifier()),
        "{ctx}: flow_results differ from scratch"
    );
}

fn run_sequence(
    seed: u64,
    net: Network,
    flows: Vec<Flow>,
    tlp: Tlp,
    mode: FailureMode,
    workers: usize,
) {
    let opts = YuOptions {
        k: 1,
        mode,
        workers,
        ..Default::default()
    };
    let mut rng = Rng(seed);
    let mut fresh_ids = 0u32;
    let mut inc = IncrementalVerifier::new(net, flows, tlp, opts);
    let out = inc.verify();
    assert_matches_scratch(
        &format!("seed={seed} mode={mode:?} workers={workers} base"),
        &inc,
        &out.violations,
    );
    let steps = 1 + rng.below(10);
    let mut last_violations = out.violations;
    for step in 0..steps {
        let n_changes = 1 + rng.below(3);
        let changes: Vec<Change> = {
            // Draw each change against the state the previous ones would
            // produce is overkill; drawing against the current committed
            // state keeps most sets valid, and invalid ones must be
            // rejected atomically anyway.
            (0..n_changes)
                .map(|_| {
                    random_change(
                        inc.network(),
                        inc.flows(),
                        inc.tlp(),
                        &mut rng,
                        &mut fresh_ids,
                    )
                })
                .collect()
        };
        let ctx =
            format!("seed={seed} mode={mode:?} workers={workers} step={step} changes={changes:?}");
        match inc.apply(&ChangeSet { changes }) {
            Ok(out) => {
                last_violations = out.violations;
                assert_matches_scratch(&ctx, &inc, &last_violations);
            }
            Err(_) => {
                // Rejected: the committed state must be untouched.
                assert_matches_scratch(&format!("{ctx} (rejected)"), &inc, &last_violations);
            }
        }
    }
}

fn wan_spec(seed: u64) -> (Network, Vec<Flow>, Tlp) {
    let w = wan(WanParams {
        core_routers: 4,
        stub_routers: 2,
        extra_core_links: 2,
        prefixes: 6,
        sr_policies: 1,
        seed,
    });
    let flows = w.flows(12, seed ^ 0x5a5a);
    let tlp = Tlp::no_overload(&w.net.topo, Ratio::new(95, 100));
    (w.net, flows, tlp)
}

fn fattree_spec() -> (Network, Vec<Flow>, Tlp) {
    let (ft, flows) = fattree_with_flows(4, 16);
    let tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
    (ft.net, flows, tlp)
}

#[test]
fn wan_random_sequences_links_mode() {
    for seed in [11, 29] {
        let (net, flows, tlp) = wan_spec(seed);
        run_sequence(seed, net, flows, tlp, FailureMode::Links, 1);
    }
}

#[test]
fn wan_random_sequences_routers_mode() {
    let (net, flows, tlp) = wan_spec(17);
    run_sequence(17, net, flows, tlp, FailureMode::Routers, 1);
}

#[test]
fn wan_random_sequences_parallel_workers() {
    let (net, flows, tlp) = wan_spec(43);
    run_sequence(43, net, flows, tlp, FailureMode::Links, 4);
}

#[test]
fn fattree_random_sequences_links_mode() {
    let (net, flows, tlp) = fattree_spec();
    run_sequence(7, net, flows, tlp, FailureMode::Links, 1);
}

#[test]
fn fattree_random_sequences_routers_mode_parallel() {
    let (net, flows, tlp) = fattree_spec();
    run_sequence(13, net, flows, tlp, FailureMode::Routers, 4);
}
