//! API-level integration tests for `YuVerifier`: incremental flow
//! addition, option toggles, statistics, and router-failure mode.

use yu::core::{YuOptions, YuVerifier};
use yu::gen::{motivating_example, wan, WanParams};
use yu::mtbdd::Ratio;
use yu::net::{FailureMode, LoadPoint, Scenario, Tlp, TlpReq};

fn small_wan() -> (yu::net::Network, Vec<yu::net::Flow>) {
    let w = wan(WanParams {
        core_routers: 6,
        stub_routers: 3,
        extra_core_links: 4,
        prefixes: 12,
        sr_policies: 2,
        seed: 33,
    });
    let flows = w.flows(60, 133);
    (w.net, flows)
}

#[test]
fn incremental_add_flows_equals_batch() {
    let (net, flows) = small_wan();
    let opts = YuOptions {
        k: 1,
        ..Default::default()
    };
    let mut batch = YuVerifier::new(net.clone(), opts);
    batch.add_flows(&flows);
    let mut incremental = YuVerifier::new(net.clone(), opts);
    incremental.add_flows(&flows[..30]);
    incremental.add_flows(&flows[30..]);
    let s = Scenario::none();
    for l in net.topo.links() {
        assert_eq!(
            batch.load_at(LoadPoint::Link(l), &s),
            incremental.load_at(LoadPoint::Link(l), &s),
            "link {}",
            net.topo.link_label(l)
        );
    }
}

#[test]
fn disabling_global_equivalence_preserves_loads() {
    let (net, flows) = small_wan();
    let mut with_eq = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    with_eq.add_flows(&flows);
    let mut without_eq = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            use_global_equiv: false,
            ..Default::default()
        },
    );
    without_eq.add_flows(&flows);
    assert!(
        without_eq.verify(&Tlp::new()).stats.flow_groups
            >= with_eq.verify(&Tlp::new()).stats.flow_groups
    );
    for u in net.topo.ulinks() {
        let s = Scenario::links([u]);
        for l in net.topo.links() {
            assert_eq!(
                with_eq.load_at(LoadPoint::Link(l), &s),
                without_eq.load_at(LoadPoint::Link(l), &s)
            );
        }
    }
}

#[test]
fn disabling_link_local_equivalence_preserves_verdicts() {
    let (net, flows) = small_wan();
    let tlp = Tlp::no_overload(&net.topo, Ratio::new(40, 100));
    let mut fast = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    fast.add_flows(&flows);
    let mut slow = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            use_link_local_equiv: false,
            ..Default::default()
        },
    );
    slow.add_flows(&flows);
    let a = fast.verify(&tlp);
    let b = slow.verify(&tlp);
    assert_eq!(a.verified(), b.verified());
    assert_eq!(a.violations.len(), b.violations.len());
}

#[test]
fn early_stop_reports_at_most_one_violation() {
    let ex = motivating_example();
    let mut v = YuVerifier::new(
        ex.net,
        YuOptions {
            k: 1,
            early_stop: true,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    let out = v.verify(&ex.p2);
    assert_eq!(out.violations.len(), 1);
}

#[test]
fn per_point_stats_expose_equivalence_classes() {
    let (net, flows) = small_wan();
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&flows);
    let tlp = Tlp::no_overload(&net.topo, Ratio::new(95, 100));
    let out = v.verify(&tlp);
    assert_eq!(out.stats.per_point.len(), tlp.reqs.len());
    // Classes never exceed flows at any point.
    for stats in out.stats.per_point.values() {
        assert!(stats.classes <= stats.flows);
    }
    // At least one loaded link has fewer classes than flows (the whole
    // point of Sec. 5.3).
    assert!(
        out.stats
            .per_point
            .values()
            .any(|s| s.flows > 0 && s.classes < s.flows),
        "link-local equivalence should collapse something"
    );
}

#[test]
fn router_mode_catches_router_outages() {
    let ex = motivating_example();
    let f = ex.routers[5];
    let mut v = YuVerifier::new(
        ex.net.clone(),
        YuOptions {
            k: 1,
            mode: FailureMode::Routers,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    // Delivery requires F itself: any property demanding delivery > 0
    // must break when F fails.
    let tlp = Tlp::new().with(TlpReq::at_least(LoadPoint::Delivered(f), Ratio::int(1)));
    let out = v.verify(&tlp);
    assert!(!out.verified());
    assert!(
        out.violations[0].scenario.failed_routers.contains(&f)
            || !out.violations[0].scenario.failed_routers.is_empty()
    );
    // And the E-router failure severs everything too.
    let s = Scenario::routers([ex.routers[4]]);
    assert_eq!(v.load_at(LoadPoint::Delivered(f), &s), Ratio::ZERO);
}

#[test]
fn k0_equals_concrete_no_failure_loads() {
    let (net, flows) = small_wan();
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 0,
            ..Default::default()
        },
    );
    v.add_flows(&flows);
    use yu::routing::ConcreteRoutes;
    let routes = ConcreteRoutes::compute(&net, &Scenario::none());
    for f in &flows {
        let _ = routes.forward_flow(f, yu::net::DEFAULT_MAX_HOPS);
    }
    // Spot-check one aggregated value end to end at k = 0: total
    // delivered equals total volume minus total dropped.
    let mut delivered = Ratio::ZERO;
    let mut dropped = Ratio::ZERO;
    let s = Scenario::none();
    for r in net.topo.routers() {
        delivered += v.load_at(LoadPoint::Delivered(r), &s);
        dropped += v.load_at(LoadPoint::Dropped(r), &s);
    }
    let total: Ratio = flows
        .iter()
        .fold(Ratio::ZERO, |acc, f| acc + f.volume.clone());
    assert_eq!(delivered + dropped, total, "conservation of traffic");
}

#[test]
fn verify_no_overload_convenience() {
    let ex = motivating_example();
    let mut v = YuVerifier::new(
        ex.net,
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    let out = v.verify_no_overload(Ratio::new(95, 100));
    assert!(!out.verified());
    // Very generous threshold verifies.
    let out = v.verify_no_overload(Ratio::int(100));
    assert!(out.verified());
}

#[test]
fn violations_are_minimal_in_failure_count() {
    // find_path prefers alive branches, so a violation reachable with
    // zero failures is reported with an empty scenario.
    let (net, flows) = small_wan();
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 2,
            ..Default::default()
        },
    );
    v.add_flows(&flows);
    // Absurdly low threshold: already violated with no failures.
    let tlp = Tlp::no_overload(&net.topo, Ratio::new(1, 1000));
    let out = v.verify(&tlp);
    assert!(!out.verified());
    assert!(
        out.violations.iter().any(|vi| vi.scenario.count() == 0),
        "a no-failure violation must be reported without failures"
    );
}

#[test]
fn flow_results_order_is_deterministic() {
    // flow_results() must iterate in a canonical order (sorted by flow
    // identity), independent of the order flows were added, of batching,
    // and of the worker count — downstream consumers (figures, reports)
    // rely on stable iteration.
    let (net, flows) = small_wan();
    let key = |f: &yu::net::Flow| (f.ingress, f.dst, f.dscp, f.src);
    let mut forward = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    forward.add_flows(&flows);
    let mut reversed_flows = flows.clone();
    reversed_flows.reverse();
    let mut backward = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    // Reversed order AND split into two batches.
    let mid = reversed_flows.len() / 3;
    backward.add_flows(&reversed_flows[..mid]);
    backward.add_flows(&reversed_flows[mid..]);
    let mut parallel = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            workers: 4,
            ..Default::default()
        },
    );
    parallel.add_flows(&reversed_flows);

    // Whatever the insertion order, batching, or worker count, the
    // iteration must come out sorted by flow identity.
    for v in [&forward, &backward, &parallel] {
        let keys: Vec<_> = v.flow_results().map(|(g, _)| key(&g.rep)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "iteration must be sorted by flow id");
    }
    // With identical input order, the sequential and parallel engines
    // must produce the exact same group sequence with aligned results.
    let canonical: Vec<_> = parallel.flow_results().map(|(g, _)| key(&g.rep)).collect();
    let from_reversed_seq: Vec<_> = {
        let mut v = YuVerifier::new(
            net.clone(),
            YuOptions {
                k: 1,
                ..Default::default()
            },
        );
        v.add_flows(&reversed_flows);
        v.flow_results().map(|(g, _)| key(&g.rep)).collect()
    };
    assert_eq!(
        canonical, from_reversed_seq,
        "order must not depend on workers"
    );
    // And the per-group results line up too, not just the keys: each
    // aligned pair of groups must touch the same set of load points.
    let seq_results: Vec<_> = forward
        .flow_results()
        .map(|(g, r)| {
            let mut pts: Vec<_> = r.loads.keys().copied().collect();
            pts.sort();
            (key(&g.rep), pts)
        })
        .collect();
    let mut par_forward = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            workers: 4,
            ..Default::default()
        },
    );
    par_forward.add_flows(&flows);
    let par_results: Vec<_> = par_forward
        .flow_results()
        .map(|(g, r)| {
            let mut pts: Vec<_> = r.loads.keys().copied().collect();
            pts.sort();
            (key(&g.rep), pts)
        })
        .collect();
    assert_eq!(seq_results, par_results, "groups or load points diverge");
}

#[test]
fn forced_gc_does_not_change_results() {
    // A tiny GC threshold forces collections constantly (including inside
    // the per-link aggregation loop); every load and verdict must match a
    // GC-free run bit for bit.
    let (net, flows) = small_wan();
    let tlp = Tlp::no_overload(&net.topo, Ratio::new(60, 100));
    let mut no_gc = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 2,
            gc_node_threshold: 0,
            ..Default::default()
        },
    );
    no_gc.add_flows(&flows);
    let mut heavy_gc = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 2,
            gc_node_threshold: 1,
            ..Default::default()
        },
    );
    heavy_gc.add_flows(&flows);
    let a = no_gc.verify(&tlp);
    let b = heavy_gc.verify(&tlp);
    assert_eq!(a.verified(), b.verified());
    assert_eq!(a.violations.len(), b.violations.len());
    for (x, y) in a.violations.iter().zip(&b.violations) {
        assert_eq!(x.point, y.point);
        assert_eq!(x.load, y.load);
        assert_eq!(x.scenario, y.scenario);
    }
    // Loads match at random scenarios too.
    for u in net.topo.ulinks().take(6) {
        let s = Scenario::links([u]);
        for l in net.topo.links() {
            assert_eq!(
                no_gc.load_at(LoadPoint::Link(l), &s),
                heavy_gc.load_at(LoadPoint::Link(l), &s),
                "link {}",
                net.topo.link_label(l)
            );
        }
    }
    // The GC'd arena must be much smaller.
    assert!(heavy_gc.mtbdd_stats().nodes_created <= no_gc.mtbdd_stats().nodes_created);
}
