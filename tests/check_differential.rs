//! Differential tests for the sharded parallel property-checking stage:
//! for every built-in example and both failure modes, a run with
//! `check_workers > 1` (private per-worker MTBDD arenas that import only
//! the per-point equivalence-class representatives and aggregate with the
//! fused `ADD∘KREDUCE` kernel) must be indistinguishable from the
//! sequential checker — same `VerificationOutcome`, bit-identical
//! violation list (including counterexample scenarios and violating
//! loads), same aggregation statistics, and the same concrete load at
//! every sampled scenario and load point. Enumerated verification
//! (`verify_enumerated`) and the `early_stop`/ablation option
//! combinations are covered too.

use yu::core::{YuOptions, YuVerifier};
use yu::gen::{
    fattree_with_flows, motivating_example, sr_anycast_incident, static_blackhole_incident, wan,
    WanParams,
};
use yu::mtbdd::Ratio;
use yu::net::{scenarios_up_to_k, FailureMode, Flow, LoadPoint, Network, Scenario, Tlp};

struct Instance {
    name: &'static str,
    net: Network,
    flows: Vec<Flow>,
    tlp: Tlp,
    k: u32,
}

/// Every built-in `yu export` example (fig1, fig9, fig10, ft4) plus a
/// small random WAN, mirroring the execution-stage differential suite.
fn instances() -> Vec<Instance> {
    let fig1 = motivating_example();
    let fig9 = sr_anycast_incident();
    let fig10 = static_blackhole_incident();
    let (ft, ft_flows) = fattree_with_flows(4, 16);
    let ft_tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
    let w = wan(WanParams {
        core_routers: 5,
        stub_routers: 2,
        extra_core_links: 3,
        prefixes: 8,
        sr_policies: 1,
        seed: 7,
    });
    let w_flows = w.flows(25, 70);
    let w_tlp = Tlp::no_overload(&w.net.topo, Ratio::new(95, 100));
    vec![
        Instance {
            name: "fig1",
            net: fig1.net,
            flows: fig1.flows,
            tlp: fig1.p2,
            k: 1,
        },
        Instance {
            name: "fig9",
            net: fig9.net,
            flows: fig9.flows,
            tlp: fig9.tlp,
            k: 1,
        },
        Instance {
            name: "fig10",
            net: fig10.net,
            flows: fig10.flows,
            tlp: fig10.tlp,
            k: 1,
        },
        Instance {
            name: "ft4",
            net: ft.net,
            flows: ft_flows,
            tlp: ft_tlp,
            k: 2,
        },
        Instance {
            name: "wan-small",
            net: w.net,
            flows: w_flows,
            tlp: w_tlp,
            k: 1,
        },
    ]
}

fn run(inst: &Instance, mode: FailureMode, opts: YuOptions) -> YuVerifier {
    let mut v = YuVerifier::new(
        inst.net.clone(),
        YuOptions {
            k: inst.k,
            mode,
            ..opts
        },
    );
    v.add_flows(&inst.flows);
    v
}

fn opts_with_check_workers(w: usize) -> YuOptions {
    YuOptions {
        check_workers: w,
        ..Default::default()
    }
}

/// All load points of a network (links plus per-router pseudo-sinks).
fn all_points(net: &Network) -> Vec<LoadPoint> {
    let mut pts: Vec<LoadPoint> = net.topo.links().map(LoadPoint::Link).collect();
    for r in net.topo.routers() {
        pts.push(LoadPoint::Delivered(r));
        pts.push(LoadPoint::Dropped(r));
    }
    pts
}

/// Sampled `≤ k` scenarios: every scenario for small spaces, every third
/// for larger ones.
fn sampled_scenarios(net: &Network, mode: FailureMode, k: u32) -> Vec<Scenario> {
    let all: Vec<Scenario> = scenarios_up_to_k(&net.topo, mode, k as usize).collect();
    let step = if all.len() > 200 { 3 } else { 1 };
    all.into_iter().step_by(step).collect()
}

/// The core differential assertion: `check_workers = 1` vs each entry of
/// `worker_counts` must agree on everything observable, for both plain
/// and enumerated verification.
fn assert_check_matches_sequential(inst: &Instance, mode: FailureMode, worker_counts: &[usize]) {
    let mut seq = run(inst, mode, YuOptions::default());
    let seq_out = seq.verify(&inst.tlp);
    let seq_enum = seq.verify_enumerated(&inst.tlp, 4);
    let points = all_points(&inst.net);
    let scenarios = sampled_scenarios(&inst.net, mode, inst.k);
    for &w in worker_counts {
        let ctx = format!("{} mode={mode:?} check_workers={w}", inst.name);
        let mut par = run(inst, mode, opts_with_check_workers(w));
        let par_out = par.verify(&inst.tlp);
        // A single requirement legitimately falls back to the sequential
        // checker (the static preflight may have discharged the rest);
        // otherwise the sharded checker must actually have run.
        if inst.tlp.reqs.len() - par_out.stats.reqs_pruned > 1 {
            assert!(
                par_out.stats.mtbdd_workers.nodes_created > 0,
                "{ctx}: parallel check must report worker arena stats"
            );
        }
        assert_eq!(
            seq_out.verified(),
            par_out.verified(),
            "{ctx}: verdict differs"
        );
        assert_eq!(
            seq_out.violations, par_out.violations,
            "{ctx}: violation list differs (must be bit-identical)"
        );
        for (point, stats) in &seq_out.stats.per_point {
            assert_eq!(
                Some(stats),
                par_out.stats.per_point.get(point),
                "{ctx}: aggregation stats differ at {point:?}"
            );
        }
        assert_eq!(
            seq_out.stats.per_point.len(),
            par_out.stats.per_point.len(),
            "{ctx}: per-point stats cover different requirement sets"
        );
        // Enumerated verification: full per-requirement violation sets,
        // deduped and sorted — must also match exactly.
        let par_enum = par.verify_enumerated(&inst.tlp, 4);
        assert_eq!(
            seq_enum.violations, par_enum.violations,
            "{ctx}: enumerated violation list differs"
        );
        // The main arena still serves loads after a parallel check; the
        // concrete loads must be unchanged.
        for &p in &points {
            for s in &scenarios {
                assert_eq!(
                    seq.load_at(p, s),
                    par.load_at(p, s),
                    "{ctx}: load differs at {p:?} under {s:?}"
                );
            }
        }
    }
}

#[test]
fn fig1_check_matches_sequential_both_modes() {
    let inst = &instances()[0];
    for mode in [FailureMode::Links, FailureMode::Routers] {
        assert_check_matches_sequential(inst, mode, &[4, 8]);
    }
}

#[test]
fn fig9_check_matches_sequential_both_modes() {
    let inst = &instances()[1];
    for mode in [FailureMode::Links, FailureMode::Routers] {
        assert_check_matches_sequential(inst, mode, &[4, 8]);
    }
}

#[test]
fn fig10_check_matches_sequential_both_modes() {
    let inst = &instances()[2];
    for mode in [FailureMode::Links, FailureMode::Routers] {
        assert_check_matches_sequential(inst, mode, &[4, 8]);
    }
}

#[test]
fn ft4_check_matches_sequential_both_modes() {
    let inst = &instances()[3];
    for mode in [FailureMode::Links, FailureMode::Routers] {
        assert_check_matches_sequential(inst, mode, &[4, 8]);
    }
}

#[test]
fn wan_check_matches_sequential_both_modes() {
    let inst = &instances()[4];
    for mode in [FailureMode::Links, FailureMode::Routers] {
        assert_check_matches_sequential(inst, mode, &[4, 8]);
    }
}

/// Exec sharding and check sharding compose: both stages parallel must
/// still match the fully sequential pipeline bit-for-bit.
#[test]
fn both_stages_parallel_match_sequential() {
    let inst = &instances()[3];
    let mut seq = run(inst, FailureMode::Links, YuOptions::default());
    let mut par = run(
        inst,
        FailureMode::Links,
        YuOptions {
            workers: 4,
            check_workers: 4,
            ..Default::default()
        },
    );
    let so = seq.verify(&inst.tlp);
    let po = par.verify(&inst.tlp);
    assert_eq!(so.verified(), po.verified());
    assert_eq!(so.violations, po.violations);
}

/// `early_stop` in parallel mode reproduces the sequential prefix: only
/// the first violating requirement is reported, and per-point statistics
/// stop at it.
#[test]
fn early_stop_truncates_to_sequential_prefix() {
    let inst = &instances()[3];
    let opts = YuOptions {
        early_stop: true,
        ..Default::default()
    };
    let mut seq = run(inst, FailureMode::Links, opts);
    let mut par = run(
        inst,
        FailureMode::Links,
        YuOptions {
            early_stop: true,
            check_workers: 4,
            ..Default::default()
        },
    );
    let so = seq.verify(&inst.tlp);
    let po = par.verify(&inst.tlp);
    assert_eq!(so.violations, po.violations);
    assert_eq!(so.stats.per_point.len(), po.stats.per_point.len());
}

/// The Fig. 13/15 ablation options flow through the parallel checker:
/// disabling link-local equivalence or KREDUCE must not change verdicts
/// between sequential and sharded checking.
#[test]
fn ablation_options_match_sequential() {
    let inst = &instances()[0];
    for (lle, kred) in [(false, true), (true, false), (false, false)] {
        let opts = YuOptions {
            use_link_local_equiv: lle,
            use_kreduce: kred,
            ..Default::default()
        };
        let mut seq = run(inst, FailureMode::Links, opts);
        let mut par = run(
            inst,
            FailureMode::Links,
            YuOptions {
                use_link_local_equiv: lle,
                use_kreduce: kred,
                check_workers: 4,
                ..Default::default()
            },
        );
        let so = seq.verify(&inst.tlp);
        let po = par.verify(&inst.tlp);
        assert_eq!(
            so.violations, po.violations,
            "lle={lle} kreduce={kred}: violations differ"
        );
        for (point, stats) in &so.stats.per_point {
            assert_eq!(Some(stats), po.stats.per_point.get(point));
        }
    }
}

/// `--check-workers 64` with fewer requirements than workers degrades
/// gracefully.
#[test]
fn more_check_workers_than_requirements() {
    let inst = &instances()[0];
    let mut seq = run(inst, FailureMode::Links, YuOptions::default());
    let mut par = run(inst, FailureMode::Links, opts_with_check_workers(64));
    assert_eq!(
        seq.verify(&inst.tlp).violations,
        par.verify(&inst.tlp).violations
    );
}
