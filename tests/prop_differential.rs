//! Property-based end-to-end differential testing: on randomly generated
//! WANs, the symbolic loads evaluated at random concrete scenarios must
//! equal the independent concrete simulator's loads exactly.

use proptest::prelude::*;
use yu::core::{YuOptions, YuVerifier};
use yu::gen::{wan, WanParams};
use yu::mtbdd::Ratio;
use yu::net::{LoadPoint, Scenario, ULinkId};
use yu::routing::ConcreteRoutes;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn symbolic_equals_concrete_on_random_instances(
        seed in 0u64..1000,
        flow_seed in 0u64..1000,
        fail_a in 0u32..64,
        fail_b in 0u32..64,
    ) {
        let w = wan(WanParams {
            core_routers: 5,
            stub_routers: 3,
            extra_core_links: 3,
            prefixes: 10,
            sr_policies: 1,
            seed,
        });
        let flows = w.flows(20, flow_seed);
        let n = w.net.topo.num_ulinks() as u32;
        let scenario = Scenario::links(
            [ULinkId(fail_a % n), ULinkId(fail_b % n)]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>(),
        );

        let mut v = YuVerifier::new(
            w.net.clone(),
            YuOptions { k: 2, ..Default::default() },
        );
        v.add_flows(&flows);

        let routes = ConcreteRoutes::compute(&w.net, &scenario);
        prop_assert!(routes.converged);
        let mut expected: std::collections::HashMap<LoadPoint, Ratio> = Default::default();
        for f in &flows {
            let res = routes.forward_flow(f, yu::net::DEFAULT_MAX_HOPS);
            for (l, frac) in res.link_fraction {
                let e = expected.entry(LoadPoint::Link(l)).or_insert(Ratio::ZERO);
                *e = e.clone() + frac * f.volume.clone();
            }
            for (r, frac) in res.delivered {
                let e = expected.entry(LoadPoint::Delivered(r)).or_insert(Ratio::ZERO);
                *e = e.clone() + frac * f.volume.clone();
            }
            for (r, frac) in res.dropped {
                let e = expected.entry(LoadPoint::Dropped(r)).or_insert(Ratio::ZERO);
                *e = e.clone() + frac * f.volume.clone();
            }
        }
        for l in w.net.topo.links() {
            let sym = v.load_at(LoadPoint::Link(l), &scenario);
            let conc = expected
                .get(&LoadPoint::Link(l))
                .cloned()
                .unwrap_or(Ratio::ZERO);
            prop_assert_eq!(
                sym,
                conc,
                "link {} under {} (seed {}, flows {})",
                w.net.topo.link_label(l),
                scenario.describe(&w.net.topo),
                seed,
                flow_seed
            );
        }
        for r in w.net.topo.routers() {
            for p in [LoadPoint::Delivered(r), LoadPoint::Dropped(r)] {
                let sym = v.load_at(p, &scenario);
                let conc = expected.get(&p).cloned().unwrap_or(Ratio::ZERO);
                prop_assert_eq!(sym, conc, "{} (seed {})", p.describe(&w.net.topo), seed);
            }
        }
    }
}
