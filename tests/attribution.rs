//! The attribution profiler's two contracts (DESIGN.md §15):
//!
//! 1. **Reconciliation** — per-entity node deltas telescope to the
//!    phase totals, and with GC off and sequential workers the phase
//!    totals telescope further to the arena's own lifetime counter:
//!    `route_nodes + exec.nodes_delta + check.nodes_delta ==
//!    stats.mtbdd.nodes_created`, exactly.
//! 2. **Observation only** — a profiled run is bit-identical to a plain
//!    run: same verdicts, same violations, same arena statistics.

use yu::core::{YuOptions, YuVerifier};
use yu::gen::{fattree_with_flows, motivating_example};
use yu::mtbdd::Ratio;
use yu::net::Tlp;

/// One profiled verification of the fig1 example.
fn run_fig1(opts: YuOptions) -> yu::core::VerificationOutcome {
    let ex = motivating_example();
    let mut v = YuVerifier::new(ex.net.clone(), opts);
    v.add_flows(&ex.flows);
    v.verify(&ex.p2)
}

#[test]
fn sequential_attribution_reconciles_exactly_with_the_arena() {
    // GC off + one worker: every node the run creates is measured by
    // exactly one contiguous per-entity window, so the telescoping sum
    // must land on the arena's lifetime counter to the node.
    let out = run_fig1(YuOptions {
        k: 1,
        profile: true,
        gc_node_threshold: 0,
        workers: 1,
        check_workers: 1,
        static_prune: false,
        ..Default::default()
    });
    let attr = out.stats.attribution.as_ref().expect("profile run");
    assert!(attr.reconciles(), "entity deltas must telescope per phase");
    assert_eq!(
        attr.route_nodes as i64 + attr.exec.nodes_delta + attr.check.nodes_delta,
        out.stats.mtbdd.nodes_created as i64,
        "phase deltas must telescope to the arena lifetime counter"
    );

    // Entity coverage: one cost per flow group, one per checked
    // requirement, no import phase in sequential mode.
    assert_eq!(attr.exec.entities.len(), out.stats.flow_groups);
    let ex = motivating_example();
    assert_eq!(
        attr.check.entities.len(),
        ex.p2.reqs.len() - out.stats.reqs_pruned
    );
    assert!(attr.import.entities.is_empty());
    assert!(attr
        .exec
        .entities
        .iter()
        .all(|e| e.label.starts_with("flow ")));
    assert!(attr
        .check
        .entities
        .iter()
        .all(|e| e.label.starts_with("req ")));

    // Wall clocks: entities are sub-intervals of their phase (true in
    // sequential mode where nothing overlaps).
    assert!(attr.exec.entity_wall_sum() <= attr.exec.wall_us);
    assert!(attr.check.entity_wall_sum() <= attr.check.wall_us);

    // The arena profiles rode along.
    assert!(attr.levels.inner_nodes > 0);
    assert_eq!(
        attr.levels.inner_nodes,
        attr.levels.levels.iter().map(|l| l.nodes).sum::<usize>()
    );
    assert_eq!(attr.caches.len(), 8);
    assert!(attr
        .caches
        .iter()
        .any(|c| c.name == "apply" && c.misses > 0));
    assert!(attr.caches.iter().any(|c| c.name == "unique"));
}

#[test]
fn parallel_attribution_reconciles_per_phase_on_fattree_m8() {
    // The acceptance workload: an m=8 fat-tree, profiled through the
    // sharded execution and checking engines.
    let (ft, flows) = fattree_with_flows(8, 24);
    let tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
    let mut v = YuVerifier::new(
        ft.net.clone(),
        YuOptions {
            k: 1,
            profile: true,
            workers: 3,
            check_workers: 2,
            ..Default::default()
        },
    );
    v.add_flows(&flows);
    let out = v.verify(&tlp);
    let attr = out.stats.attribution.as_ref().expect("profile run");
    // Worker arenas telescope from empty, so the invariant holds shard
    // by shard and therefore in the phase sums.
    assert!(attr.reconciles());
    // Parallel execution books each worker's local route recompute as
    // its own entity, plus one per flow group.
    assert!(attr
        .exec
        .entities
        .iter()
        .any(|e| e.label.starts_with("worker-") && e.label.ends_with("route_sim")));
    assert_eq!(
        attr.exec
            .entities
            .iter()
            .filter(|e| e.label.starts_with("flow "))
            .count(),
        out.stats.flow_groups
    );
    // Importing worker results back is its own phase with one entity
    // per flow group.
    assert_eq!(attr.import.entities.len(), out.stats.flow_groups);
    assert!(!attr.check.entities.is_empty());
    // Per-level attribution rides along and self-reconciles.
    assert!(!attr.levels.levels.is_empty());
    assert_eq!(
        attr.levels.inner_nodes,
        attr.levels.levels.iter().map(|l| l.nodes).sum::<usize>()
    );
}

#[test]
fn profiling_is_an_observer() {
    let run = |profile: bool| {
        run_fig1(YuOptions {
            k: 1,
            profile,
            workers: 2,
            check_workers: 2,
            ..Default::default()
        })
    };
    let plain = run(false);
    let profiled = run(true);
    assert!(plain.stats.attribution.is_none());
    assert!(profiled.stats.attribution.is_some());
    assert_eq!(plain.verified(), profiled.verified());
    assert_eq!(
        format!("{:?}", plain.violations),
        format!("{:?}", profiled.violations)
    );
    assert_eq!(
        plain.stats.mtbdd.nodes_created,
        profiled.stats.mtbdd.nodes_created
    );
    assert_eq!(
        plain.stats.mtbdd_workers.nodes_created,
        profiled.stats.mtbdd_workers.nodes_created
    );
    assert_eq!(plain.stats.flow_groups, profiled.stats.flow_groups);
}
