//! End-to-end smoke tests of the `yu` CLI binary through its JSON spec
//! pipeline (export -> check -> verify round trip, without spawning a
//! process: the same code paths via the library API).

use yu::core::{YuOptions, YuVerifier};
use yu::spec::VerifySpec;

#[test]
fn exported_fig1_spec_verifies_like_the_library() {
    let ex = yu::gen::motivating_example();
    let spec = VerifySpec {
        network: ex.net.clone(),
        flows: ex.flows.clone(),
        tlp: ex.p2.clone(),
        k: 1,
        mode: yu::net::FailureMode::Links,
    };
    // Round-trip through JSON, then verify the deserialized network.
    let spec = VerifySpec::from_json(&spec.to_json()).unwrap();
    assert!(spec.validate().is_empty());
    let mut v = YuVerifier::new(
        spec.network,
        YuOptions {
            k: spec.k,
            mode: spec.mode,
            ..Default::default()
        },
    );
    v.add_flows(&spec.flows);
    let out = v.verify(&spec.tlp);
    assert!(!out.verified());
    // Violations serialize (the CLI's --json output).
    let json = serde_json::to_string(&out.violations).unwrap();
    assert!(json.contains("scenario"));
    assert!(json.contains("load"));
}

#[test]
fn fig10_spec_round_trips_filters_and_static_routes() {
    let inc = yu::gen::static_blackhole_incident();
    let spec = VerifySpec {
        network: inc.net,
        flows: inc.flows,
        tlp: inc.tlp,
        k: 1,
        mode: yu::net::FailureMode::Links,
    };
    let back = VerifySpec::from_json(&spec.to_json()).unwrap();
    // The deserialized network still exhibits the blackhole.
    let mut v = YuVerifier::new(
        back.network,
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&back.flows);
    assert!(!v.verify(&back.tlp).verified());
}

#[test]
fn explain_report_serializes_for_the_cli() {
    // The `yu explain --json` payload: explanations must serialize with
    // the fields the CI smoke step validates (blame summing to the load,
    // replay status, envelope bounds).
    let ex = yu::gen::motivating_example();
    let spec = VerifySpec {
        network: ex.net,
        flows: ex.flows,
        tlp: ex.p2,
        k: 1,
        mode: yu::net::FailureMode::Links,
    };
    let spec = VerifySpec::from_json(&spec.to_json()).unwrap();
    let mut v = YuVerifier::new(
        spec.network,
        YuOptions {
            k: spec.k,
            mode: spec.mode,
            ..Default::default()
        },
    );
    v.add_flows(&spec.flows);
    let out = v.verify_enumerated(&spec.tlp, 4);
    assert!(!out.verified());
    let explanations: Vec<yu::core::Explanation> =
        out.violations.iter().map(|vi| v.explain(vi)).collect();
    let json = serde_json::to_string(&explanations).unwrap();
    for field in [
        "blame",
        "blame_total",
        "contribution",
        "replay",
        "\"match\"",
        "envelope",
        "violating_scenarios",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
}

#[test]
fn lint_exit_policy_is_stable() {
    // The `yu lint` exit-code contract: errors always fail, warnings
    // fail only under --deny-warnings, notes never fail.
    use yu::analysis::Diagnostic;
    use yu::spec::lint_ok;

    let clean: Vec<Diagnostic> = vec![];
    assert!(lint_ok(&clean, false));
    assert!(lint_ok(&clean, true));

    let notes = vec![Diagnostic::note("YU023", "req 0", "discharged")];
    assert!(lint_ok(&notes, false));
    assert!(lint_ok(&notes, true));

    let warnings = vec![Diagnostic::warning("YU027", "link A-B", "bridge")];
    assert!(lint_ok(&warnings, false));
    assert!(!lint_ok(&warnings, true));

    let errors = vec![Diagnostic::error("YU029", "req 1", "contradictory bounds")];
    assert!(!lint_ok(&errors, false));
    assert!(!lint_ok(&errors, true));

    let mixed = vec![
        Diagnostic::note("YU032", "preflight", "summary"),
        Diagnostic::warning("YU030", "req 2", "duplicate point"),
    ];
    assert!(lint_ok(&mixed, false));
    assert!(!lint_ok(&mixed, true));
}

/// The fig1 spec used by the serve tests.
fn fig1_spec() -> VerifySpec {
    let ex = yu::gen::motivating_example();
    VerifySpec {
        network: ex.net,
        flows: ex.flows,
        tlp: ex.p2,
        k: 1,
        mode: yu::net::FailureMode::Links,
    }
}

/// A field of a one-line JSON response.
fn field<'a>(resp: &'a serde_json::Value, name: &str) -> &'a serde_json::Value {
    resp.as_object()
        .and_then(|m| m.get(name))
        .unwrap_or_else(|| panic!("response missing {name:?}: {resp:?}"))
}

#[test]
fn serve_session_handles_errors_without_mutating_state() {
    use serde_json::Value;
    use yu::serve::ServeSession;

    let spec = fig1_spec();
    let mut s = ServeSession::new(&spec, yu::core::YuOptions::default());
    let ready: Value = serde_json::from_str(&s.ready_line()).unwrap();
    assert_eq!(field(&ready, "ready"), &Value::Bool(true));
    let baseline = format!("{:?}", s.verifier().verifier().options());
    let base_flows = s.verifier().flows().to_vec();

    // Malformed JSON -> structured parse error.
    let r: Value = serde_json::from_str(&s.handle_line("{not json")).unwrap();
    assert_eq!(field(&r, "ok"), &Value::Bool(false));
    assert_eq!(
        field(field(&r, "error"), "kind"),
        &Value::Str("parse".into())
    );

    // Unknown change kind -> bad_request.
    let r: Value = serde_json::from_str(
        &s.handle_line(r#"{"id": 2, "changes": [{"FrobnicateRouter": {"name": "A"}}]}"#),
    )
    .unwrap();
    assert_eq!(field(&r, "ok"), &Value::Bool(false));
    assert_eq!(field(&r, "id"), &Value::Int(2));
    assert_eq!(
        field(field(&r, "error"), "kind"),
        &Value::Str("bad_request".into())
    );

    // Nonexistent router -> bad_request, rejected atomically.
    let r: Value = serde_json::from_str(&s.handle_line(
        r#"{"id": 3, "changes": [{"SetLinkCost": {"from": "NOPE", "to": "B", "cost": 5}}]}"#,
    ))
    .unwrap();
    assert_eq!(field(&r, "ok"), &Value::Bool(false));
    assert_eq!(
        field(field(&r, "error"), "kind"),
        &Value::Str("bad_request".into())
    );

    // Partially-valid change-set (valid volume edit + bogus removal) ->
    // rejected as a whole; no partial mutation.
    let r: Value = serde_json::from_str(&s.handle_line(
        r#"{"id": 4, "changes": [{"SetFlowVolume": {"flow": 0, "volume": "7"}}, {"RemoveFlow": {"flow": 9999}}]}"#,
    ))
    .unwrap();
    assert_eq!(field(&r, "ok"), &Value::Bool(false));
    assert_eq!(
        s.verifier().flows(),
        &base_flows[..],
        "state mutated by rejected set"
    );
    assert_eq!(format!("{:?}", s.verifier().verifier().options()), baseline);

    // The session still serves valid requests afterwards.
    let r: Value = serde_json::from_str(
        &s.handle_line(r#"{"id": 5, "changes": [{"SetFlowVolume": {"flow": 0, "volume": "7"}}]}"#),
    )
    .unwrap();
    assert_eq!(
        field(&r, "ok"),
        &Value::Bool(true),
        "valid request after errors: {r:?}"
    );
    assert_eq!(field(&r, "id"), &Value::Int(5));
    for key in [
        "verified",
        "violations",
        "new_violations",
        "resolved_violations",
        "stats",
    ] {
        assert!(
            r.as_object().unwrap().get(key).is_some(),
            "success response missing {key}"
        );
    }
}

#[test]
fn serve_stats_reset_between_requests() {
    use serde_json::Value;
    use yu::serve::ServeSession;

    let spec = fig1_spec();
    let mut s = ServeSession::new(&spec, yu::core::YuOptions::default());

    // Request 1 touches the flows stage: flows_in and exec time are
    // nonzero for THIS request.
    let r1: Value = serde_json::from_str(&s.handle_line(
        r#"{"id": 1, "changes": [{"AddFlow": {"ingress": "A", "src": 151587081, "dst": 1677721601, "volume": "5"}}]}"#,
    ))
    .unwrap();
    assert_eq!(field(&r1, "ok"), &Value::Bool(true), "{r1:?}");
    let flows_now = s.verifier().flows().len();

    // Request 2 is TLP-only: had the counters accumulated across
    // requests (the old RunStats reuse bug), route/exec times and group
    // recompute counts from request 1 would leak into this response.
    let r2: Value = serde_json::from_str(&s.handle_line(
        r#"{"id": 2, "changes": [{"AddReq": {"point": {"Delivered": {"router": "E"}}, "max": "1000000"}}]}"#,
    ))
    .unwrap();
    assert_eq!(field(&r2, "ok"), &Value::Bool(true), "{r2:?}");
    let stats2 = field(&r2, "stats");
    assert_eq!(
        field(stats2, "route_secs"),
        &Value::Float(0.0),
        "route time leaked across requests: {r2:?}"
    );
    assert_eq!(
        field(stats2, "exec_secs"),
        &Value::Float(0.0),
        "exec time leaked across requests: {r2:?}"
    );
    assert_eq!(field(stats2, "recomputed_groups"), &Value::Int(0));
    assert_eq!(field(stats2, "full_rebuild"), &Value::Bool(false));
    // The verifier itself still knows the true flow count.
    assert_eq!(s.verifier().flows().len(), flows_now);
}

#[test]
fn serve_over_a_pipe_end_to_end() {
    use serde_json::Value;
    use std::io::{BufRead, BufReader, Write};
    use std::process::{Command, Stdio};

    let spec = fig1_spec();
    let dir = std::env::temp_dir();
    let spec_path = dir.join("yu-serve-cli-test.json");
    std::fs::write(&spec_path, spec.to_json()).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_yu"))
        .args(["serve", "--spec", spec_path.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn yu serve");
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let mut next = |input: Option<&str>| -> Value {
        if let Some(line) = input {
            writeln!(stdin, "{line}").unwrap();
            stdin.flush().unwrap();
        }
        let line = lines.next().expect("serve closed early").unwrap();
        serde_json::from_str(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e:?}"))
    };

    let ready = next(None);
    assert_eq!(field(&ready, "ready"), &Value::Bool(true));
    assert_eq!(field(&ready, "verified"), &Value::Bool(false)); // fig1 P2 is violated

    // A valid change-set: raising the C-E capacity-bound requirement
    // volume... keep it simple: double flow 0's volume.
    let ok = next(Some(
        r#"{"id": 1, "changes": [{"SetFlowVolume": {"flow": 0, "volume": "80"}}]}"#,
    ));
    assert_eq!(field(&ok, "ok"), &Value::Bool(true), "{ok:?}");
    assert_eq!(field(&ok, "id"), &Value::Int(1));
    assert!(field(&ok, "stats").as_object().is_some());

    // Malformed JSON, unknown kind, unknown router: structured errors,
    // daemon stays alive.
    let e1 = next(Some("this is not json"));
    assert_eq!(
        field(field(&e1, "error"), "kind"),
        &Value::Str("parse".into())
    );
    let e2 = next(Some(r#"{"id": 2, "changes": [{"Nonsense": {}}]}"#));
    assert_eq!(
        field(field(&e2, "error"), "kind"),
        &Value::Str("bad_request".into())
    );
    let e3 = next(Some(
        r#"{"id": 3, "changes": [{"SetLinkCost": {"from": "NOPE", "to": "B", "cost": 1}}]}"#,
    ));
    assert_eq!(
        field(field(&e3, "error"), "kind"),
        &Value::Str("bad_request".into())
    );

    // Still serving after three failures.
    let ok2 = next(Some(
        r#"{"id": 4, "changes": [{"SetFlowVolume": {"flow": 0, "volume": "70"}}]}"#,
    ));
    assert_eq!(field(&ok2, "ok"), &Value::Bool(true), "{ok2:?}");

    drop(stdin); // EOF ends the session cleanly
    let status = child.wait().unwrap();
    assert!(status.success(), "serve exited with {status:?}");
    let _ = std::fs::remove_file(&spec_path);
}

#[test]
fn deep_lint_on_the_preflight_example_reports_discharges() {
    let ex = yu::gen::preflight_example();
    let spec = VerifySpec {
        network: ex.net,
        flows: ex.flows,
        tlp: ex.tlp,
        k: 1,
        mode: yu::net::FailureMode::Links,
    };
    let spec = VerifySpec::from_json(&spec.to_json()).unwrap();
    // Shallow lint: clean except the intentional duplicate-point overlap
    // is a deep-only rule, so no errors either way.
    assert!(!spec.has_errors());
    let deep = spec.validate_deep();
    let discharged = deep.iter().filter(|d| d.code == "YU023").count();
    assert_eq!(discharged, ex.expected_discharged);
    assert!(deep.iter().any(|d| d.code == "YU032"));
    // Deep lint is a superset severity-wise: still no errors here.
    assert!(!deep.iter().any(|d| d.is_error()));
    assert!(yu::spec::lint_ok(&deep, false));
}
