//! End-to-end smoke tests of the `yu` CLI binary through its JSON spec
//! pipeline (export -> check -> verify round trip, without spawning a
//! process: the same code paths via the library API).

use yu::core::{YuOptions, YuVerifier};
use yu::spec::VerifySpec;

#[test]
fn exported_fig1_spec_verifies_like_the_library() {
    let ex = yu::gen::motivating_example();
    let spec = VerifySpec {
        network: ex.net.clone(),
        flows: ex.flows.clone(),
        tlp: ex.p2.clone(),
        k: 1,
        mode: yu::net::FailureMode::Links,
    };
    // Round-trip through JSON, then verify the deserialized network.
    let spec = VerifySpec::from_json(&spec.to_json()).unwrap();
    assert!(spec.validate().is_empty());
    let mut v = YuVerifier::new(
        spec.network,
        YuOptions {
            k: spec.k,
            mode: spec.mode,
            ..Default::default()
        },
    );
    v.add_flows(&spec.flows);
    let out = v.verify(&spec.tlp);
    assert!(!out.verified());
    // Violations serialize (the CLI's --json output).
    let json = serde_json::to_string(&out.violations).unwrap();
    assert!(json.contains("scenario"));
    assert!(json.contains("load"));
}

#[test]
fn fig10_spec_round_trips_filters_and_static_routes() {
    let inc = yu::gen::static_blackhole_incident();
    let spec = VerifySpec {
        network: inc.net,
        flows: inc.flows,
        tlp: inc.tlp,
        k: 1,
        mode: yu::net::FailureMode::Links,
    };
    let back = VerifySpec::from_json(&spec.to_json()).unwrap();
    // The deserialized network still exhibits the blackhole.
    let mut v = YuVerifier::new(
        back.network,
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&back.flows);
    assert!(!v.verify(&back.tlp).verified());
}
