//! End-to-end smoke tests of the `yu` CLI binary through its JSON spec
//! pipeline (export -> check -> verify round trip, without spawning a
//! process: the same code paths via the library API).

use yu::core::{YuOptions, YuVerifier};
use yu::spec::VerifySpec;

#[test]
fn exported_fig1_spec_verifies_like_the_library() {
    let ex = yu::gen::motivating_example();
    let spec = VerifySpec {
        network: ex.net.clone(),
        flows: ex.flows.clone(),
        tlp: ex.p2.clone(),
        k: 1,
        mode: yu::net::FailureMode::Links,
    };
    // Round-trip through JSON, then verify the deserialized network.
    let spec = VerifySpec::from_json(&spec.to_json()).unwrap();
    assert!(spec.validate().is_empty());
    let mut v = YuVerifier::new(
        spec.network,
        YuOptions {
            k: spec.k,
            mode: spec.mode,
            ..Default::default()
        },
    );
    v.add_flows(&spec.flows);
    let out = v.verify(&spec.tlp);
    assert!(!out.verified());
    // Violations serialize (the CLI's --json output).
    let json = serde_json::to_string(&out.violations).unwrap();
    assert!(json.contains("scenario"));
    assert!(json.contains("load"));
}

#[test]
fn fig10_spec_round_trips_filters_and_static_routes() {
    let inc = yu::gen::static_blackhole_incident();
    let spec = VerifySpec {
        network: inc.net,
        flows: inc.flows,
        tlp: inc.tlp,
        k: 1,
        mode: yu::net::FailureMode::Links,
    };
    let back = VerifySpec::from_json(&spec.to_json()).unwrap();
    // The deserialized network still exhibits the blackhole.
    let mut v = YuVerifier::new(
        back.network,
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&back.flows);
    assert!(!v.verify(&back.tlp).verified());
}

#[test]
fn explain_report_serializes_for_the_cli() {
    // The `yu explain --json` payload: explanations must serialize with
    // the fields the CI smoke step validates (blame summing to the load,
    // replay status, envelope bounds).
    let ex = yu::gen::motivating_example();
    let spec = VerifySpec {
        network: ex.net,
        flows: ex.flows,
        tlp: ex.p2,
        k: 1,
        mode: yu::net::FailureMode::Links,
    };
    let spec = VerifySpec::from_json(&spec.to_json()).unwrap();
    let mut v = YuVerifier::new(
        spec.network,
        YuOptions {
            k: spec.k,
            mode: spec.mode,
            ..Default::default()
        },
    );
    v.add_flows(&spec.flows);
    let out = v.verify_enumerated(&spec.tlp, 4);
    assert!(!out.verified());
    let explanations: Vec<yu::core::Explanation> =
        out.violations.iter().map(|vi| v.explain(vi)).collect();
    let json = serde_json::to_string(&explanations).unwrap();
    for field in [
        "blame",
        "blame_total",
        "contribution",
        "replay",
        "\"match\"",
        "envelope",
        "violating_scenarios",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
}

#[test]
fn lint_exit_policy_is_stable() {
    // The `yu lint` exit-code contract: errors always fail, warnings
    // fail only under --deny-warnings, notes never fail.
    use yu::analysis::Diagnostic;
    use yu::spec::lint_ok;

    let clean: Vec<Diagnostic> = vec![];
    assert!(lint_ok(&clean, false));
    assert!(lint_ok(&clean, true));

    let notes = vec![Diagnostic::note("YU023", "req 0", "discharged")];
    assert!(lint_ok(&notes, false));
    assert!(lint_ok(&notes, true));

    let warnings = vec![Diagnostic::warning("YU027", "link A-B", "bridge")];
    assert!(lint_ok(&warnings, false));
    assert!(!lint_ok(&warnings, true));

    let errors = vec![Diagnostic::error("YU029", "req 1", "contradictory bounds")];
    assert!(!lint_ok(&errors, false));
    assert!(!lint_ok(&errors, true));

    let mixed = vec![
        Diagnostic::note("YU032", "preflight", "summary"),
        Diagnostic::warning("YU030", "req 2", "duplicate point"),
    ];
    assert!(lint_ok(&mixed, false));
    assert!(!lint_ok(&mixed, true));
}

#[test]
fn deep_lint_on_the_preflight_example_reports_discharges() {
    let ex = yu::gen::preflight_example();
    let spec = VerifySpec {
        network: ex.net,
        flows: ex.flows,
        tlp: ex.tlp,
        k: 1,
        mode: yu::net::FailureMode::Links,
    };
    let spec = VerifySpec::from_json(&spec.to_json()).unwrap();
    // Shallow lint: clean except the intentional duplicate-point overlap
    // is a deep-only rule, so no errors either way.
    assert!(!spec.has_errors());
    let deep = spec.validate_deep();
    let discharged = deep.iter().filter(|d| d.code == "YU023").count();
    assert_eq!(discharged, ex.expected_discharged);
    assert!(deep.iter().any(|d| d.code == "YU032"));
    // Deep lint is a superset severity-wise: still no errors here.
    assert!(!deep.iter().any(|d| d.is_error()));
    assert!(yu::spec::lint_ok(&deep, false));
}
