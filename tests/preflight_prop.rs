//! Property-based soundness tests for the semantic preflight analyzer
//! against the symbolic engine (the ground truth):
//!
//! * a min-cut the analyzer claims disconnects a measurement point from
//!   every traffic source must actually zero out the symbolic load there;
//! * a requirement the analyzer classifies `ProvenSafe` must verify
//!   symbolically, and one classified `ProvenViolated` must not.

use proptest::prelude::*;
use std::collections::BTreeSet;
use yu::analysis::{classify, min_disconnecting_failures, CutTarget, PreflightConfig, ReqClass};
use yu::core::{YuOptions, YuVerifier};
use yu::gen::{wan, WanParams};
use yu::mtbdd::Ratio;
use yu::net::{FailureMode, LoadPoint, RouterId, Tlp, TlpReq, DEFAULT_MAX_HOPS};

fn small_wan(seed: u64) -> (yu::net::Network, Vec<yu::net::Flow>) {
    let w = wan(WanParams {
        core_routers: 4,
        stub_routers: 3,
        extra_core_links: 2,
        prefixes: 8,
        sr_policies: 1,
        seed,
    });
    let flows = w.flows(10, seed.wrapping_mul(0x9E3779B9));
    (w.net, flows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// If the analyzer finds a disconnecting failure set within the
    /// budget, replaying that exact scenario through the symbolic engine
    /// yields zero delivered and zero dropped traffic at the target.
    #[test]
    fn min_cut_zeroes_the_symbolic_load(
        seed in 0u64..500,
        target_sel in 0usize..16,
        mode_sel in 0usize..3,
    ) {
        let (net, flows) = small_wan(seed);
        let mode = [FailureMode::Links, FailureMode::Routers, FailureMode::LinksAndRouters][mode_sel];
        let target = RouterId((target_sel % net.topo.num_routers()) as u32);
        let sources: Vec<RouterId> = flows
            .iter()
            .filter(|f| !f.volume.is_zero())
            .map(|f| f.ingress)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let Some(cut) =
            min_disconnecting_failures(&net.topo, mode, &sources, CutTarget::Router(target))
        else {
            return Ok(()); // unseverable (e.g. source == target in Links mode)
        };
        let k = (cut.count() as u32).max(1);
        let mut v = YuVerifier::new(net.clone(), YuOptions { k, mode, ..Default::default() });
        v.add_flows(&flows);
        for point in [LoadPoint::Delivered(target), LoadPoint::Dropped(target)] {
            let load = v.load_at(point, &cut);
            prop_assert!(
                load.is_zero(),
                "{} under claimed cut {} is {} (seed {seed})",
                point.describe(&net.topo),
                cut.describe(&net.topo),
                load
            );
        }
    }

    /// Static verdicts agree with the symbolic engine: every requirement
    /// classified ProvenSafe verifies, every ProvenViolated one fails.
    /// NeedsSymbolic makes no claim, so nothing is asserted for it.
    #[test]
    fn static_verdicts_match_symbolic_verdicts(
        seed in 0u64..500,
        k in 1u32..3,
        mode_sel in 0usize..2,
        point_sel in 0usize..8,
        min_sel in 0u64..260,
        max_sel in 0u64..260,
    ) {
        let (net, flows) = small_wan(seed);
        let mode = [FailureMode::Links, FailureMode::Routers][mode_sel];
        let r = RouterId((point_sel % net.topo.num_routers()) as u32);
        let point = match point_sel % 3 {
            0 => LoadPoint::Delivered(r),
            1 => LoadPoint::Dropped(r),
            _ => {
                let links: Vec<_> = net.topo.links().collect();
                LoadPoint::Link(links[point_sel % links.len()])
            }
        };
        // Selectors >= 200 encode "no bound" so one-sided requirements
        // are exercised too.
        let req = TlpReq {
            point,
            min: (min_sel < 200).then(|| Ratio::int(min_sel as i64)),
            max: (max_sel < 200).then(|| Ratio::int(max_sel as i64)),
        };
        if req.min.is_none() && req.max.is_none() {
            return Ok(());
        }
        let tlp = Tlp::new().with(req.clone());
        let cfg = PreflightConfig { k, mode, max_hops: DEFAULT_MAX_HOPS };
        let classes = classify(&net, &flows, &tlp, cfg);
        prop_assert_eq!(classes.len(), 1);

        let mut v = YuVerifier::new(
            net.clone(),
            YuOptions { k, mode, static_prune: false, ..Default::default() },
        );
        v.add_flows(&flows);
        let out = v.verify(&tlp);
        match classes[0].class {
            ReqClass::ProvenSafe => prop_assert!(
                out.verified(),
                "ProvenSafe req {} failed symbolically (seed {seed}, cert {:?})",
                req.point.describe(&net.topo),
                classes[0].certificate
            ),
            ReqClass::ProvenViolated => prop_assert!(
                !out.verified(),
                "ProvenViolated req {} verified symbolically (seed {seed}, cert {:?})",
                req.point.describe(&net.topo),
                classes[0].certificate
            ),
            ReqClass::NeedsSymbolic => {}
        }
    }
}
