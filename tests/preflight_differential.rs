//! The static preflight pruner must be invisible in the verdict: running
//! every built-in example with pruning on and off has to produce
//! bit-identical verification results — same verdict, same violations in
//! the same order — in every failure mode. Pruning may only change how
//! much work the symbolic engine does, never what it concludes.
//!
//! Certificates are independently re-validated inside the pruner under
//! `debug_assertions` (the configuration this test runs in), so a pass
//! here also means every discharged requirement carried a checkable
//! proof.

use yu::core::{VerificationOutcome, YuOptions, YuVerifier};
use yu::gen::{
    motivating_example, preflight_example, sr_anycast_incident, static_blackhole_incident, wan,
    WanParams,
};
use yu::net::{FailureMode, Flow, Network, Tlp};

fn run(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    mode: FailureMode,
    static_prune: bool,
) -> VerificationOutcome {
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k: 1,
            mode,
            static_prune,
            ..Default::default()
        },
    );
    v.add_flows(flows);
    v.verify(tlp)
}

fn cases() -> Vec<(&'static str, Network, Vec<Flow>, Tlp)> {
    let fig1 = motivating_example();
    let fig9 = sr_anycast_incident();
    let fig10 = static_blackhole_incident();
    let pf = preflight_example();
    let w = wan(WanParams {
        core_routers: 5,
        stub_routers: 3,
        extra_core_links: 2,
        prefixes: 8,
        sr_policies: 1,
        seed: 7,
    });
    let wan_flows = w.flows(12, 0xBEEF);
    let wan_tlp = Tlp::no_overload(&w.net.topo, yu::mtbdd::Ratio::new(95, 100));
    vec![
        ("fig1/p1", fig1.net.clone(), fig1.flows.clone(), fig1.p1),
        ("fig1/p2", fig1.net, fig1.flows, fig1.p2),
        ("fig9", fig9.net, fig9.flows, fig9.tlp),
        ("fig10", fig10.net, fig10.flows, fig10.tlp),
        ("preflight", pf.net, pf.flows, pf.tlp),
        ("wan-small", w.net, wan_flows, wan_tlp),
    ]
}

#[test]
fn pruned_and_unpruned_runs_are_bit_identical() {
    for (name, net, flows, tlp) in cases() {
        for mode in [FailureMode::Links, FailureMode::Routers] {
            let pruned = run(&net, &flows, &tlp, mode, true);
            let full = run(&net, &flows, &tlp, mode, false);
            assert_eq!(
                pruned.verified(),
                full.verified(),
                "{name} ({mode:?}): verdict changed under pruning"
            );
            assert_eq!(
                pruned.violations, full.violations,
                "{name} ({mode:?}): violations changed under pruning"
            );
            assert_eq!(
                full.stats.reqs_pruned, 0,
                "{name} ({mode:?}): --no-static-prune must not prune"
            );
        }
    }
}

#[test]
fn preflight_example_actually_discharges_requirements() {
    let pf = preflight_example();
    let out = run(&pf.net, &pf.flows, &pf.tlp, FailureMode::Links, true);
    assert_eq!(
        out.stats.reqs_pruned, pf.expected_discharged,
        "the preflight example exists to exercise the pruner"
    );
    // P1 and the P2 overload reqs still went through the symbolic
    // engine and produced the known Fig. 1 counterexamples.
    assert!(!out.verified());
}

#[test]
fn enumerated_verification_is_also_prune_invariant() {
    let pf = preflight_example();
    let mut outs = [true, false].map(|static_prune| {
        let mut v = YuVerifier::new(
            pf.net.clone(),
            YuOptions {
                k: 1,
                static_prune,
                ..Default::default()
            },
        );
        v.add_flows(&pf.flows);
        v.verify_enumerated(&pf.tlp, 3)
    });
    let full = outs[1].violations.clone();
    let pruned = &mut outs[0];
    assert!(!pruned.verified());
    assert_eq!(pruned.violations, full);
    assert!(pruned.stats.reqs_pruned >= 1);
}

#[test]
fn preflight_records_telemetry_spans_and_counters() {
    let pf = preflight_example();
    yu::telemetry::set_enabled(true);
    yu::telemetry::reset();
    let out = run(&pf.net, &pf.flows, &pf.tlp, FailureMode::Links, true);
    let report = yu::telemetry::snapshot();
    yu::telemetry::reset();
    yu::telemetry::set_enabled(false);

    assert!(out.stats.reqs_pruned >= 1);
    let aggs = report.stage_aggs();
    assert!(
        aggs.contains_key("preflight"),
        "pruner must record its stage span"
    );
    let counters = report.counter_totals();
    assert!(counters.get("preflight.proven_safe").copied().unwrap_or(0) >= 1);
    assert!(counters.contains_key("preflight.needs_symbolic"));
}
