//! End-to-end observability of the `yu serve` loop: the structured
//! event log (slow-request detection with correlation ids, the
//! threshold tunable) and the in-band `metrics` request type.
//!
//! The event sink is process global, so the tests that use it
//! serialize on [`SINK_LOCK`]; this file is its own test binary, so
//! nothing outside it can race them.

use std::sync::Mutex;
use std::time::Duration;
use yu::core::YuOptions;
use yu::net::FailureMode;
use yu::serve::{ServeConfig, ServeSession};
use yu::spec::VerifySpec;

fn fig1_spec() -> VerifySpec {
    let ex = yu::gen::motivating_example();
    VerifySpec {
        network: ex.net,
        flows: ex.flows,
        tlp: ex.p2,
        k: 1,
        mode: FailureMode::Links,
    }
}

fn session(spec: &VerifySpec, slow_threshold: Duration) -> ServeSession {
    let opts = YuOptions {
        k: spec.k,
        mode: spec.mode,
        ..Default::default()
    };
    ServeSession::with_config(
        spec,
        opts,
        ServeConfig {
            slow_threshold,
            ..Default::default()
        },
    )
}

/// Serializes the tests against each other: both configure the
/// process-global in-memory event sink.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn events_of_kind(events: &[String], kind: &str) -> Vec<String> {
    events
        .iter()
        .filter(|e| e.contains(&format!("\"kind\":\"{kind}\"")))
        .cloned()
        .collect()
}

#[test]
fn serve_emits_slow_request_events_and_answers_metrics_requests() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = fig1_spec();

    // A zero threshold marks every request slow: the event must fire and
    // carry the request's own correlation id plus the configured bound.
    yu::telemetry::set_event_sink_memory();
    let mut s = session(&spec, Duration::ZERO);
    let resp = s.handle_line("{\"id\":42,\"changes\":[]}");
    assert!(resp.contains("\"ok\":true"), "request rejected: {resp}");
    let events = yu::telemetry::take_memory_events();
    let slow = events_of_kind(&events, "slow_request");
    assert_eq!(slow.len(), 1, "exactly one slow event: {events:?}");
    assert!(slow[0].contains("\"id\":42"), "wrong id: {}", slow[0]);
    assert!(slow[0].contains("\"level\":\"warn\""));
    assert!(slow[0].contains("\"threshold_us\":0"));
    assert!(slow[0].contains("\"elapsed_us\":"));
    // The request lifecycle events carry the same id.
    assert!(events_of_kind(&events, "request_start")[0].contains("\"id\":42"));
    assert!(events_of_kind(&events, "request_finish")[0].contains("\"id\":42"));
    assert_eq!(s.lifetime().slow_requests, 1);

    // An unreachable threshold: same request shape, no slow event.
    let mut calm = session(&spec, Duration::from_secs(3600));
    let resp = calm.handle_line("{\"id\":43,\"changes\":[]}");
    assert!(resp.contains("\"ok\":true"));
    let events = yu::telemetry::take_memory_events();
    assert!(events_of_kind(&events, "slow_request").is_empty());
    assert_eq!(events_of_kind(&events, "request_finish").len(), 1);
    assert_eq!(calm.lifetime().slow_requests, 0);

    // Raising the minimum level filters the info-level lifecycle events
    // but keeps the warn-level slow event.
    yu::telemetry::set_event_min_level(yu::telemetry::EventLevel::Warn);
    s.handle_line("{\"id\":44,\"changes\":[]}");
    let events = yu::telemetry::take_memory_events();
    assert!(events_of_kind(&events, "request_start").is_empty());
    assert!(events_of_kind(&events, "request_finish").is_empty());
    assert!(events_of_kind(&events, "slow_request")[0].contains("\"id\":44"));
    yu::telemetry::set_event_min_level(yu::telemetry::EventLevel::Info);
    yu::telemetry::close_event_sink();

    // The in-band metrics request: answered from the registry without
    // touching verifier state or counting as a change request.
    let requests_before = s.lifetime().requests;
    let resp = s.handle_line("{\"id\":7,\"metrics\":true}");
    assert_eq!(s.lifetime().requests, requests_before);
    let v: serde::Value = serde_json::from_str(&resp).expect("metrics response is JSON");
    let root = v.as_object().expect("metrics response is an object");
    assert_eq!(root.get("id").and_then(|x| x.as_object()), None);
    assert!(resp.contains("\"id\":7"));
    assert!(resp.contains("\"ok\":true"));
    let metrics = root
        .get("metrics")
        .and_then(|m| m.as_object())
        .expect("metrics object");
    for section in ["counters", "gauges", "histograms"] {
        assert!(metrics.get(section).is_some(), "missing {section}");
    }
    let lifetime = root
        .get("lifetime")
        .and_then(|m| m.as_object())
        .expect("lifetime object");
    assert!(lifetime.get("requests").is_some());
    assert!(lifetime.get("verdict_flips").is_some());
    // The registry snapshot digests latency histograms to quantiles.
    assert!(resp.contains("\"yu_serve_request_seconds\""));
    assert!(resp.contains("\"p99\""));
}

/// The regression detector's serve wiring: baselines train per request
/// kind, an unarmed or unreachable baseline never alarms, and the
/// wall-clock-dependent signal stays out of the response lines. (The
/// trip/retrain behavior of the rule itself is unit-tested in
/// `yu::serve` where it can run on synthetic latencies.)
#[test]
fn serve_trains_latency_baselines_per_request_kind() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = fig1_spec();
    let opts = YuOptions {
        k: spec.k,
        mode: spec.mode,
        ..Default::default()
    };
    // An unreachable factor makes "no alarm" deterministic even on a
    // noisy machine: a request would have to be a billion times slower
    // than its baseline.
    let config = ServeConfig {
        regress_factor: 1e9,
        ..Default::default()
    };
    yu::telemetry::set_event_sink_memory();
    let mut s = ServeSession::with_config(&spec, opts, config);
    assert!(s.baseline("empty").is_none(), "no samples yet");
    let mut names = spec
        .network
        .topo
        .routers()
        .map(|r| spec.network.topo.router(r).name.clone());
    let (from, to) = (
        names.next().expect("fig1 has routers"),
        names.next().expect("fig1 has two routers"),
    );
    for id in 0..3 {
        let resp = s.handle_line(&format!("{{\"id\":{id},\"changes\":[]}}"));
        assert!(resp.contains("\"ok\":true"));
        assert!(
            !resp.contains("regress"),
            "regression signals must stay out of response lines: {resp}"
        );
    }
    // Kinds train independently: three empty requests, one rejected
    // SetLinkCost (errors never train a baseline).
    let bad = format!(
        "{{\"id\":9,\"changes\":[{{\"SetLinkCost\":{{\"from\":\"{from}\",\"to\":\"{to}\",\
         \"index\":99,\"cost\":1}}}}]}}"
    );
    assert!(s.handle_line(&bad).contains("\"ok\":false"));
    let empty = s.baseline("empty").expect("empty-kind baseline trained");
    assert_eq!(empty.samples, 3);
    assert!(empty.mean_us >= 0.0);
    assert!(s.baseline("SetLinkCost").is_none());
    assert!(s.baseline("mixed").is_none());
    let events = yu::telemetry::take_memory_events();
    assert!(events_of_kind(&events, "perf_regression").is_empty());
    yu::telemetry::close_event_sink();
}
