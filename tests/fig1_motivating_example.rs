//! End-to-end reproduction of the paper's Fig. 1 motivating example:
//! the exact per-link loads of scenarios (a)-(e), the P1/P2 verdicts, and
//! agreement between symbolic and concrete simulation.

use yu::core::{YuOptions, YuVerifier};
use yu::gen::motivating_example;
use yu::mtbdd::Ratio;
use yu::net::{LinkId, LoadPoint, Scenario};

/// Directed link id from router `from` to router `to` (nth parallel).
fn dlink(ex: &yu::gen::MotivatingExample, from: usize, to: usize, nth: usize) -> LinkId {
    let f = ex.routers[from];
    let t = ex.routers[to];
    let mut count = 0;
    for l in ex.net.topo.links() {
        let lk = ex.net.topo.link(l);
        if lk.from == f && lk.to == t {
            if count == nth {
                return l;
            }
            count += 1;
        }
    }
    panic!("no such link");
}

const A: usize = 0;
const B: usize = 1;
const C: usize = 2;
const D: usize = 3;
const E: usize = 4;
const F: usize = 5;

fn load(v: &mut YuVerifier, l: LinkId, s: &Scenario) -> Ratio {
    v.load_at(LoadPoint::Link(l), s)
}

#[test]
fn figure1a_no_failure_loads() {
    let ex = motivating_example();
    let mut v = YuVerifier::new(
        ex.net.clone(),
        YuOptions {
            k: 2,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    let s = Scenario::none();
    // Paper Fig. 1(a): A->C 20, B->C 40, B->D 40, C->E 70, D->E 30,
    // D->C 10, E->F 50 + 50, delivered 100.
    assert_eq!(load(&mut v, dlink(&ex, A, C, 0), &s), Ratio::int(20));
    assert_eq!(load(&mut v, dlink(&ex, B, C, 0), &s), Ratio::int(40));
    assert_eq!(load(&mut v, dlink(&ex, B, D, 0), &s), Ratio::int(40));
    assert_eq!(load(&mut v, dlink(&ex, C, E, 0), &s), Ratio::int(70));
    assert_eq!(load(&mut v, dlink(&ex, D, E, 0), &s), Ratio::int(30));
    assert_eq!(load(&mut v, dlink(&ex, D, C, 0), &s), Ratio::int(10));
    assert_eq!(load(&mut v, dlink(&ex, E, F, 0), &s), Ratio::int(50));
    assert_eq!(load(&mut v, dlink(&ex, E, F, 1), &s), Ratio::int(50));
    assert_eq!(load(&mut v, dlink(&ex, A, B, 0), &s), Ratio::ZERO);
    assert_eq!(
        v.load_at(LoadPoint::Delivered(ex.routers[F]), &s),
        Ratio::int(100)
    );
}

#[test]
fn figure1b_bc_failed() {
    let ex = motivating_example();
    let mut v = YuVerifier::new(
        ex.net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    // (b): B-C fails -> B sends all 80 to D; D splits 60 (SR p1 via E) /
    // 20 (SR p2 via C); f1 still A->C->E.
    let s = Scenario::links([ex.ulinks[2]]);
    assert_eq!(load(&mut v, dlink(&ex, B, D, 0), &s), Ratio::int(80));
    assert_eq!(load(&mut v, dlink(&ex, D, E, 0), &s), Ratio::int(60));
    assert_eq!(load(&mut v, dlink(&ex, D, C, 0), &s), Ratio::int(20));
    // C->E: f1 (20) + tunneled [F] traffic (20).
    assert_eq!(load(&mut v, dlink(&ex, C, E, 0), &s), Ratio::int(40));
    assert_eq!(
        v.load_at(LoadPoint::Delivered(ex.routers[F]), &s),
        Ratio::int(100)
    );
}

#[test]
fn figure1c_bd_failed_overloads_ce() {
    let ex = motivating_example();
    let mut v = YuVerifier::new(
        ex.net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    // (c): B-D fails -> everything crosses C-E: 100 Gbps (the paper's P2
    // violation).
    let s = Scenario::links([ex.ulinks[3]]);
    assert_eq!(load(&mut v, dlink(&ex, B, C, 0), &s), Ratio::int(80));
    assert_eq!(load(&mut v, dlink(&ex, C, E, 0), &s), Ratio::int(100));
    assert_eq!(load(&mut v, dlink(&ex, D, E, 0), &s), Ratio::ZERO);
    assert_eq!(
        v.load_at(LoadPoint::Delivered(ex.routers[F]), &s),
        Ratio::int(100)
    );
}

#[test]
fn figure1d_half_f1_on_ce() {
    // Scenario (d) of Fig. 5: A-C failed -> f1 detours via B and only
    // half of it rides C-E... (f1 ECMPs at B over B-C / B-D).
    let ex = motivating_example();
    let mut v = YuVerifier::new(
        ex.net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&[ex.flows[0].clone()]); // f1 only, to mirror Fig. 5
    let s = Scenario::links([ex.ulinks[1]]);
    // STF of f1 on C-E is 0.5 (paper Fig. 5 scenario (d)).
    let ce = load(&mut v, dlink(&ex, C, E, 0), &s);
    assert_eq!(ce, Ratio::int(10)); // 0.5 * 20 Gbps
}

#[test]
fn figure1e_both_b_links_failed() {
    let ex = motivating_example();
    let mut v = YuVerifier::new(
        ex.net.clone(),
        YuOptions {
            k: 2,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    // (e): B-C and B-D fail -> B routes f2 back through A.
    let s = Scenario::links([ex.ulinks[2], ex.ulinks[3]]);
    assert_eq!(load(&mut v, dlink(&ex, B, A, 0), &s), Ratio::int(80));
    assert_eq!(load(&mut v, dlink(&ex, A, C, 0), &s), Ratio::int(100));
    assert_eq!(
        v.load_at(LoadPoint::Delivered(ex.routers[F]), &s),
        Ratio::int(100)
    );
}

#[test]
fn p1_holds_p2_violated_at_k1() {
    let ex = motivating_example();
    let mut v = YuVerifier::new(
        ex.net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    let p1 = v.verify(&ex.p1);
    assert!(p1.verified(), "P1 must hold under any single link failure");
    let p2 = v.verify(&ex.p2);
    assert!(!p2.verified(), "P2 must be violated");
    // The paper's example: failing B-D overloads C-E with 100 Gbps.
    let ce = dlink(&ex, C, E, 0);
    let bd_violation = p2
        .violations
        .iter()
        .find(|vi| vi.point == LoadPoint::Link(ce))
        .expect("C-E must be overloadable");
    assert_eq!(bd_violation.load, Ratio::int(100));
    assert_eq!(bd_violation.scenario.failed_links.len(), 1);
}

#[test]
fn p1_violated_at_k2() {
    // Failing A-B and A-C strands f1 at A: delivery drops to 80 < ...
    // no wait: P1 requires >= 70 and 80 >= 70. Failing A-C and B-C and
    // ... at k=2: A-C + A-B strands f1 (20) -> delivered 80, still >= 70.
    // Stranding f2 (80) needs B isolated: A-B + B-C + B-D = 3 failures,
    // or delivery cut at E-F x2: delivered 0 < 70.
    let ex = motivating_example();
    let mut v = YuVerifier::new(
        ex.net.clone(),
        YuOptions {
            k: 2,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    let p1 = v.verify(&ex.p1);
    assert!(!p1.verified(), "two failures can cut delivery below 70");
    let viol = &p1.violations[0];
    assert!(viol.load < Ratio::int(70));
    assert!(viol.scenario.count() <= 2);
}

#[test]
fn symbolic_matches_concrete_on_all_2_failure_scenarios() {
    use yu::routing::ConcreteRoutes;
    let ex = motivating_example();
    let mut v = YuVerifier::new(
        ex.net.clone(),
        YuOptions {
            k: 2,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    for s in yu::net::scenarios_up_to_k(&ex.net.topo, yu::net::FailureMode::Links, 2) {
        let routes = ConcreteRoutes::compute(&ex.net, &s);
        assert!(routes.converged);
        let mut expected: std::collections::HashMap<LoadPoint, Ratio> = Default::default();
        for f in &ex.flows {
            let res = routes.forward_flow(f, yu::net::DEFAULT_MAX_HOPS);
            for (l, frac) in res.link_fraction {
                let cur = expected
                    .get(&LoadPoint::Link(l))
                    .cloned()
                    .unwrap_or(Ratio::ZERO);
                expected.insert(LoadPoint::Link(l), cur + frac * f.volume.clone());
            }
            for (r, frac) in res.delivered {
                let cur = expected
                    .get(&LoadPoint::Delivered(r))
                    .cloned()
                    .unwrap_or(Ratio::ZERO);
                expected.insert(LoadPoint::Delivered(r), cur + frac * f.volume.clone());
            }
        }
        for l in ex.net.topo.links() {
            let sym = v.load_at(LoadPoint::Link(l), &s);
            let conc = expected
                .get(&LoadPoint::Link(l))
                .cloned()
                .unwrap_or(Ratio::ZERO);
            assert_eq!(
                sym,
                conc,
                "link {} under {}",
                ex.net.topo.link_label(l),
                s.describe(&ex.net.topo)
            );
        }
        let sym = v.load_at(LoadPoint::Delivered(ex.routers[F]), &s);
        let conc = expected
            .get(&LoadPoint::Delivered(ex.routers[F]))
            .cloned()
            .unwrap_or(Ratio::ZERO);
        assert_eq!(sym, conc, "delivery under {}", s.describe(&ex.net.topo));
    }
}
