//! Edge cases of symbolic traffic execution: multi-segment label stacks,
//! unresolvable next hops, SR weight redistribution, and drop accounting.

use yu_core::{simulate_flow, ExecOptions, FlowStf};
use yu_mtbdd::{Mtbdd, Ratio, Term};
use yu_net::{
    BgpConfig, FailureMode, FailureVars, Flow, Ipv4, LoadPoint, Network, Prefix, RouterId,
    Scenario, SrPath, SrPolicy, StaticNextHop, StaticRoute, Topology, ULinkId,
};
use yu_routing::SymbolicRoutes;

fn eval(m: &Mtbdd, fv: &FailureVars, stf: &FlowStf, p: LoadPoint, s: &Scenario) -> Ratio {
    match m.eval(stf.at(m, p), fv.assignment(s)) {
        Term::Num(v) => v,
        Term::PosInf => unreachable!(),
    }
}

/// A 5-router chain H - M1 - M2 - M3 - T in one AS; H steers traffic to
/// T's loopback through the 3-segment tunnel [M1, M2, M3, T]... the
/// tunnel pops one segment per hop.
fn chain_with_long_tunnel() -> (Network, [RouterId; 5]) {
    let mut t = Topology::new();
    let cap = Ratio::int(100);
    let h = t.add_router("H", Ipv4::new(10, 0, 0, 1), 300);
    let m1 = t.add_router("M1", Ipv4::new(10, 0, 0, 2), 300);
    let m2 = t.add_router("M2", Ipv4::new(10, 0, 0, 3), 300);
    let m3 = t.add_router("M3", Ipv4::new(10, 0, 0, 4), 300);
    let tr = t.add_router("T", Ipv4::new(10, 0, 0, 5), 300);
    t.add_link(h, m1, 10, cap.clone());
    t.add_link(m1, m2, 10, cap.clone());
    t.add_link(m2, m3, 10, cap.clone());
    t.add_link(m3, tr, 10, cap.clone());
    let mut net = Network::new(t);
    let dest: Prefix = "70.0.0.0/24".parse().unwrap();
    for r in [h, m1, m2, m3, tr] {
        net.config_mut(r).isis_enabled = true;
        net.config_mut(r).bgp = Some(BgpConfig::default());
    }
    net.config_mut(tr).connected.push(dest);
    net.config_mut(tr).bgp.as_mut().unwrap().networks = vec![dest];
    net.config_mut(h).sr_policies.push(SrPolicy {
        endpoint: Ipv4::new(10, 0, 0, 5),
        match_dscp: None,
        paths: vec![SrPath {
            segments: vec![
                Ipv4::new(10, 0, 0, 2),
                Ipv4::new(10, 0, 0, 3),
                Ipv4::new(10, 0, 0, 4),
                Ipv4::new(10, 0, 0, 5),
            ],
            weight: 1,
        }],
    });
    (net, [h, m1, m2, m3, tr])
}

#[test]
fn long_label_stacks_pop_hop_by_hop() {
    let (net, [h, _, _, _, tr]) = chain_with_long_tunnel();
    let mut m = Mtbdd::new();
    let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
    let mut routes = SymbolicRoutes::compute(&mut m, &net, &fv, None);
    let flow = Flow::new(
        h,
        Ipv4::new(11, 0, 0, 1),
        "70.0.0.9".parse().unwrap(),
        0,
        Ratio::int(10),
    );
    let stf = simulate_flow(
        &mut m,
        &net,
        &fv,
        &mut routes,
        &flow,
        ExecOptions::default(),
    );
    let s = Scenario::none();
    // Every chain link carries the full flow; delivery at T.
    for l in net.topo.links() {
        let want = if net.topo.link(l).from.0 < net.topo.link(l).to.0 {
            Ratio::ONE
        } else {
            Ratio::ZERO
        };
        assert_eq!(eval(&m, &fv, &stf, LoadPoint::Link(l), &s), want);
    }
    assert_eq!(
        eval(&m, &fv, &stf, LoadPoint::Delivered(tr), &s),
        Ratio::ONE
    );
    // The tunnel has no alternate path: any chain failure drops it all.
    let s = Scenario::links([ULinkId(1)]);
    assert_eq!(
        eval(&m, &fv, &stf, LoadPoint::Delivered(tr), &s),
        Ratio::ZERO
    );
    let total_dropped: Ratio = net
        .topo
        .routers()
        .map(|r| eval(&m, &fv, &stf, LoadPoint::Dropped(r), &s))
        .fold(Ratio::ZERO, |a, b| a + b);
    assert_eq!(
        total_dropped,
        Ratio::ONE,
        "all traffic accounted as dropped"
    );
}

#[test]
fn unresolvable_static_next_hop_drops() {
    // A static route pointing at an address the IGP does not know: the
    // traffic must be charged to Dropped, not silently vanish.
    let mut t = Topology::new();
    let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 300);
    let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 300);
    t.add_link(a, b, 10, Ratio::int(100));
    let mut net = Network::new(t);
    for r in [a, b] {
        net.config_mut(r).isis_enabled = true;
    }
    net.config_mut(a).static_routes.push(StaticRoute {
        prefix: "80.0.0.0/8".parse().unwrap(),
        next_hop: StaticNextHop::Ip(Ipv4::new(99, 99, 99, 99)),
    });
    let mut m = Mtbdd::new();
    let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
    let mut routes = SymbolicRoutes::compute(&mut m, &net, &fv, None);
    let flow = Flow::new(
        a,
        Ipv4::new(11, 0, 0, 1),
        "80.1.2.3".parse().unwrap(),
        0,
        Ratio::int(7),
    );
    let stf = simulate_flow(
        &mut m,
        &net,
        &fv,
        &mut routes,
        &flow,
        ExecOptions::default(),
    );
    let s = Scenario::none();
    assert_eq!(eval(&m, &fv, &stf, LoadPoint::Dropped(a), &s), Ratio::ONE);
    assert!(m.eval_all_alive(stf.truncated).is_zero());
}

#[test]
fn sr_weight_redistribution_on_tunnel_failure() {
    // Triangle H-X, H-Y, X-T, Y-T with two weighted tunnels; when one
    // dies, the survivor takes 100% (the paper's c_p renormalization).
    let mut t = Topology::new();
    let cap = Ratio::int(100);
    let h = t.add_router("H", Ipv4::new(10, 0, 0, 1), 300);
    let x = t.add_router("X", Ipv4::new(10, 0, 0, 2), 300);
    let y = t.add_router("Y", Ipv4::new(10, 0, 0, 3), 300);
    let tr = t.add_router("T", Ipv4::new(10, 0, 0, 4), 300);
    t.add_link(h, x, 10, cap.clone()); // u0
    t.add_link(h, y, 10, cap.clone()); // u1
    let u_xt = t.add_link(x, tr, 10, cap.clone()); // u2
    t.add_link(y, tr, 10, cap.clone()); // u3
    let mut net = Network::new(t);
    let dest: Prefix = "70.0.0.0/24".parse().unwrap();
    for r in [h, x, y, tr] {
        net.config_mut(r).isis_enabled = true;
        net.config_mut(r).bgp = Some(BgpConfig::default());
    }
    net.config_mut(tr).connected.push(dest);
    net.config_mut(tr).bgp.as_mut().unwrap().networks = vec![dest];
    net.config_mut(h).sr_policies.push(SrPolicy {
        endpoint: Ipv4::new(10, 0, 0, 4),
        match_dscp: None,
        paths: vec![
            SrPath {
                segments: vec![Ipv4::new(10, 0, 0, 2), Ipv4::new(10, 0, 0, 4)],
                weight: 75,
            },
            SrPath {
                segments: vec![Ipv4::new(10, 0, 0, 3), Ipv4::new(10, 0, 0, 4)],
                weight: 25,
            },
        ],
    });
    let mut m = Mtbdd::new();
    let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
    let mut routes = SymbolicRoutes::compute(&mut m, &net, &fv, None);
    let flow = Flow::new(
        h,
        Ipv4::new(11, 0, 0, 1),
        "70.0.0.9".parse().unwrap(),
        0,
        Ratio::int(100),
    );
    let stf = simulate_flow(
        &mut m,
        &net,
        &fv,
        &mut routes,
        &flow,
        ExecOptions::default(),
    );
    let (hx, _) = net.topo.directions(ULinkId(0));
    let (hy, _) = net.topo.directions(ULinkId(1));
    // 75/25 split normally.
    let s = Scenario::none();
    assert_eq!(
        eval(&m, &fv, &stf, LoadPoint::Link(hx), &s),
        Ratio::new(3, 4)
    );
    assert_eq!(
        eval(&m, &fv, &stf, LoadPoint::Link(hy), &s),
        Ratio::new(1, 4)
    );
    // X-T failure: reach(X, T) survives via X-H-Y-T? X's IGP reaches T
    // through H and Y, so tunnel 1 stays up and re-routes through H!
    // The pure weight-redistribution case needs X fully cut off from T:
    // fail X-T and H-X; then tunnel 2 carries everything.
    let s = Scenario::links([u_xt, ULinkId(0)]);
    assert_eq!(eval(&m, &fv, &stf, LoadPoint::Link(hy), &s), Ratio::ONE);
    assert_eq!(
        eval(&m, &fv, &stf, LoadPoint::Delivered(tr), &s),
        Ratio::ONE
    );
}

#[test]
fn dscp_selects_among_policies() {
    let (mut net, [h, ..]) = chain_with_long_tunnel();
    // A second policy for DSCP 7 with an invalid segment: DSCP-7 traffic
    // must drop while DSCP-0 traffic still uses the long tunnel.
    net.config_mut(h).sr_policies.insert(
        0,
        SrPolicy {
            endpoint: Ipv4::new(10, 0, 0, 5),
            match_dscp: Some(7),
            paths: vec![SrPath {
                segments: vec![Ipv4::new(99, 0, 0, 1)],
                weight: 1,
            }],
        },
    );
    let mut m = Mtbdd::new();
    let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
    let mut routes = SymbolicRoutes::compute(&mut m, &net, &fv, None);
    let tr = net.topo.router_by_name("T").unwrap();
    let mk = |dscp| {
        Flow::new(
            h,
            Ipv4::new(11, 0, 0, 1),
            "70.0.0.9".parse().unwrap(),
            dscp,
            Ratio::int(1),
        )
    };
    let s = Scenario::none();
    let f0 = simulate_flow(
        &mut m,
        &net,
        &fv,
        &mut routes,
        &mk(0),
        ExecOptions::default(),
    );
    assert_eq!(eval(&m, &fv, &f0, LoadPoint::Delivered(tr), &s), Ratio::ONE);
    let f7 = simulate_flow(
        &mut m,
        &net,
        &fv,
        &mut routes,
        &mk(7),
        ExecOptions::default(),
    );
    assert_eq!(
        eval(&m, &fv, &f7, LoadPoint::Delivered(tr), &s),
        Ratio::ZERO
    );
    assert_eq!(eval(&m, &fv, &f7, LoadPoint::Dropped(h), &s), Ratio::ONE);
}

#[test]
fn kreduce_during_exec_shrinks_nodes() {
    let (net, [h, ..]) = chain_with_long_tunnel();
    let flow = Flow::new(
        h,
        Ipv4::new(11, 0, 0, 1),
        "70.0.0.9".parse().unwrap(),
        0,
        Ratio::int(10),
    );
    let count = |k: Option<u32>| {
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let mut routes = SymbolicRoutes::compute(&mut m, &net, &fv, k);
        let _ = simulate_flow(
            &mut m,
            &net,
            &fv,
            &mut routes,
            &flow,
            ExecOptions { k, max_hops: 40 },
        );
        m.stats().nodes_created
    };
    let reduced = count(Some(1));
    let exact = count(None);
    assert!(
        reduced <= exact,
        "KREDUCE must not create more nodes ({reduced} vs {exact})"
    );
}
