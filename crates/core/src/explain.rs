//! Violation forensics: turning a bare counterexample into an
//! inspectable, self-verifying explanation.
//!
//! A [`crate::Violation`] names a `≤ k`-failure scenario and a load, but
//! not *which flows* produce that load, *how* they were rerouted, or any
//! independent evidence that the symbolic number is right. This module
//! produces an [`Explanation`] per violation with four parts:
//!
//! 1. **Per-flow blame** — every flow group's symbolic traffic fraction
//!    at the violating point is restricted to the counterexample
//!    scenario ([`yu_net::FailureVars::assignment`] + [`Mtbdd::eval`]).
//!    Because the aggregated load is `τ = Σ V_f · ω_f` and every KREDUCE
//!    along the way preserves values on scenarios with at most `k`
//!    failures (Lemma 1), while every counterexample path decodes to such
//!    a scenario (Lemma 2), the per-flow contributions sum *Ratio-exactly*
//!    to the violating load.
//! 2. **Rerouted-path reconstruction** — the flow's per-hop symbolic
//!    forwarding is walked concretely under the scenario (evaluating each
//!    FIB selection guard, ECMP denominator, SR tunnel guard, and `V^IGP`
//!    share under the fixed assignment), recovering the exact packet
//!    paths before vs. after the failures plus an added/removed link diff
//!    and an optional Graphviz overlay ([`explanation_dot`]).
//! 3. **Concrete replay cross-check** — the single counterexample
//!    scenario is re-simulated with the independent enumerative engine
//!    ([`yu_routing::ConcreteRoutes`], the same simulator behind the
//!    Jingubang baseline) and the loads compared bit-exactly, so every
//!    explanation doubles as a differential test of the symbolic
//!    pipeline.
//! 4. **Load envelope** — min/max reachable terminals of the reduced
//!    load ([`Mtbdd::terminal_range`]) plus the exact number of violating
//!    `≤ k` scenarios ([`Mtbdd::count_scenarios`]), showing how close the
//!    point sits to its bound.

use crate::api::YuVerifier;
use crate::exec::selection_guards;
use crate::verify::Violation;
use serde::Serialize;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use yu_mtbdd::{Mtbdd, NodeRef, Ratio, Term};
use yu_net::{
    FailureVars, Flow, Ipv4, LinkId, LoadPoint, Network, RouterId, Scenario, Tlp, TlpReq, Topology,
};
use yu_routing::{ConcreteRoutes, NextHop, SymbolicRoutes};

/// Cap on the number of concrete paths reconstructed per flow and
/// scenario (ECMP fan-out is exponential in the worst case; forensics
/// reports stay readable).
pub const MAX_TRACED_PATHS: usize = 64;

/// One flow group's share of a violating load.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FlowBlame {
    /// The group's representative flow.
    pub flow: Flow,
    /// Number of member flows in the group.
    pub members: usize,
    /// Total volume of the group (Gbps).
    pub volume: Ratio,
    /// Fraction of the group's traffic crossing the point under the
    /// counterexample scenario.
    pub fraction: Ratio,
    /// `fraction × volume`: the group's exact share of the violating
    /// load.
    pub contribution: Ratio,
    /// The group's share of the load with no failures.
    pub baseline: Ratio,
    /// `contribution − baseline`: how much the failures shifted onto
    /// (positive) or away from (negative) the point.
    pub delta: Ratio,
}

/// Where one reconstructed packet path ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PathOutcome {
    /// Delivered locally at a router.
    Delivered(RouterId),
    /// Dropped at a router (Null0, no route, dead tunnels, ...).
    Dropped(RouterId),
    /// Still in flight at the TTL bound.
    Truncated,
}

/// One concrete packet path of a flow under a fixed scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TracedPath {
    /// Routers visited, ingress first.
    pub hops: Vec<RouterId>,
    /// Directed links traversed (one fewer than `hops` unless truncated
    /// mid-hop).
    pub links: Vec<LinkId>,
    /// Fraction of the flow on this path (ECMP/weighted splits).
    pub fraction: Ratio,
    /// How the path ends.
    pub outcome: PathOutcome,
}

/// Before/after packet paths of one flow across the failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FlowPathDiff {
    /// The flow whose forwarding is reconstructed.
    pub flow: Flow,
    /// Concrete paths with no failures.
    pub before: Vec<TracedPath>,
    /// Concrete paths under the counterexample scenario.
    pub after: Vec<TracedPath>,
    /// Links used after but not before (sorted).
    pub added_links: Vec<LinkId>,
    /// Links used before but not after (sorted).
    pub removed_links: Vec<LinkId>,
    /// Whether the forwarding changed at all (paths, splits, or
    /// outcomes).
    pub changed: bool,
}

/// Result of re-simulating the counterexample scenario with the
/// enumerative engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ReplayCheck {
    /// `"match"` iff the concrete replay reproduces the symbolic load
    /// bit-exactly, else `"mismatch"`.
    pub status: String,
    /// The symbolic load being certified (the violation's load).
    pub symbolic: Ratio,
    /// The load the concrete simulator computed for the same scenario.
    pub replay: Ratio,
}

impl ReplayCheck {
    fn new(symbolic: Ratio, replay: Ratio) -> ReplayCheck {
        let status = if symbolic == replay {
            "match"
        } else {
            "mismatch"
        };
        ReplayCheck {
            status: status.into(),
            symbolic,
            replay,
        }
    }

    /// Whether the cross-check passed.
    pub fn matches(&self) -> bool {
        self.status == "match"
    }
}

/// The load envelope of one measurement point: the reachable extremes of
/// the reduced symbolic load and the exact violating-scenario count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PointEnvelope {
    /// The measurement point.
    pub point: LoadPoint,
    /// Minimum load over all `≤ k`-failure scenarios.
    pub min: Ratio,
    /// Maximum load over all `≤ k`-failure scenarios.
    pub max: Ratio,
    /// The requirement's lower bound, if any.
    pub req_min: Option<Ratio>,
    /// The requirement's upper bound, if any.
    pub req_max: Option<Ratio>,
    /// Exact number of `≤ k`-failure scenarios violating the bounds.
    pub violating_scenarios: u128,
}

impl PointEnvelope {
    /// Human-readable description.
    pub fn describe(&self, topo: &Topology) -> String {
        let bound = match (&self.req_min, &self.req_max) {
            (Some(lo), Some(hi)) => format!("bound [{lo}, {hi}]"),
            (Some(lo), None) => format!("bound >= {lo}"),
            (None, Some(hi)) => format!("bound <= {hi}"),
            (None, None) => "unbounded".into(),
        };
        format!(
            "{}: load in [{}, {}], {}, {} violating scenario(s)",
            self.point.describe(topo),
            self.min,
            self.max,
            bound,
            self.violating_scenarios
        )
    }
}

/// A self-verifying account of one TLP violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Explanation {
    /// The violation being explained.
    pub violation: Violation,
    /// The load at the point with no failures.
    pub baseline_load: Ratio,
    /// Per-flow shares of the violating load, largest contribution
    /// first. Flows touching the point only in the baseline (rerouted
    /// away) appear with `contribution` 0 and a negative `delta`.
    pub blame: Vec<FlowBlame>,
    /// `Σ contribution` — equals the violating load Ratio-exactly.
    pub blame_total: Ratio,
    /// Before/after packet paths of every blamed flow.
    pub paths: Vec<FlowPathDiff>,
    /// The concrete replay cross-check.
    pub replay: ReplayCheck,
    /// The load envelope at the violated point.
    pub envelope: PointEnvelope,
}

impl Explanation {
    /// Human-readable multi-line report.
    pub fn describe(&self, topo: &Topology) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.violation.describe(topo));
        let _ = writeln!(s, "  envelope: {}", self.envelope.describe(topo));
        let _ = writeln!(s, "  baseline (no failures): {}", self.baseline_load);
        let _ = writeln!(
            s,
            "  per-flow blame (fraction x volume = contribution; total {}):",
            self.blame_total
        );
        for b in &self.blame {
            let _ = writeln!(
                s,
                "    {}: {} x {} = {} (baseline {}, delta {}{})",
                flow_label(topo, &b.flow),
                b.fraction,
                b.volume,
                b.contribution,
                b.baseline,
                if b.delta >= Ratio::ZERO { "+" } else { "" },
                b.delta
            );
        }
        let changed: Vec<&FlowPathDiff> = self.paths.iter().filter(|d| d.changed).collect();
        if changed.is_empty() {
            let _ = writeln!(s, "  rerouted paths: none (forwarding unchanged)");
        } else {
            let _ = writeln!(s, "  rerouted paths:");
            for d in changed {
                let _ = writeln!(s, "    {}:", flow_label(topo, &d.flow));
                for p in &d.before {
                    let _ = writeln!(s, "      - {}", path_line(topo, p));
                }
                for p in &d.after {
                    let _ = writeln!(s, "      + {}", path_line(topo, p));
                }
                if !d.added_links.is_empty() {
                    let _ = writeln!(
                        s,
                        "      added links:   {}",
                        link_list(topo, &d.added_links)
                    );
                }
                if !d.removed_links.is_empty() {
                    let _ = writeln!(
                        s,
                        "      removed links: {}",
                        link_list(topo, &d.removed_links)
                    );
                }
            }
        }
        let _ = writeln!(
            s,
            "  replay: {} (symbolic {} vs enumerative {})",
            self.replay.status, self.replay.symbolic, self.replay.replay
        );
        s
    }
}

fn flow_label(topo: &Topology, f: &Flow) -> String {
    format!(
        "flow {}->{} dscp {} @ {}",
        f.src,
        f.dst,
        f.dscp,
        topo.router(f.ingress).name
    )
}

fn path_line(topo: &Topology, p: &TracedPath) -> String {
    let outcome = match p.outcome {
        PathOutcome::Delivered(r) => format!("delivered@{}", topo.router(r).name),
        PathOutcome::Dropped(r) => format!("dropped@{}", topo.router(r).name),
        PathOutcome::Truncated => "truncated".into(),
    };
    format!(
        "{} ({}) [{}]",
        topo.path_label(&p.hops),
        p.fraction,
        outcome
    )
}

fn link_list(topo: &Topology, links: &[LinkId]) -> String {
    links
        .iter()
        .map(|&l| topo.link_label(l))
        .collect::<Vec<_>>()
        .join(", ")
}

impl YuVerifier {
    /// Produces the full forensic explanation of one violation: per-flow
    /// blame, rerouted paths, concrete replay cross-check, and the load
    /// envelope at the violated point.
    pub fn explain(&mut self, v: &Violation) -> Explanation {
        let _stage = yu_telemetry::span("explain");
        // Envelope first: it may aggregate (and garbage-collect), which
        // remaps the per-flow STF handles the blame pass reads.
        let envelope = self.point_envelope(&TlpReq {
            point: v.point,
            min: v.min.clone(),
            max: v.max.clone(),
        });

        // Per-flow blame: restrict each group's STF at the point to the
        // counterexample scenario (and to no-failures for the baseline).
        let blame_span = yu_telemetry::span("explain.blame");
        let none = Scenario::none();
        let mut blame: Vec<FlowBlame> = Vec::new();
        let mut blame_total = Ratio::ZERO;
        let mut baseline_load = Ratio::ZERO;
        for (g, stf) in self.flow_results() {
            let h = stf.at(&self.m, v.point);
            let fraction = eval_ratio(&self.m, h, &self.fv, &v.scenario);
            let base_frac = eval_ratio(&self.m, h, &self.fv, &none);
            let contribution = fraction.clone() * g.volume.clone();
            let baseline = base_frac * g.volume.clone();
            blame_total += contribution.clone();
            baseline_load += baseline.clone();
            if contribution.is_zero() && baseline.is_zero() {
                continue;
            }
            let delta = contribution.clone() - baseline.clone();
            blame.push(FlowBlame {
                flow: g.rep.clone(),
                members: g.members,
                volume: g.volume.clone(),
                fraction,
                contribution,
                baseline,
                delta,
            });
        }
        // Largest contribution first; ties broken by flow identity so
        // the order is stable.
        blame.sort_by(|a, b| {
            b.contribution.cmp(&a.contribution).then_with(|| {
                (a.flow.ingress, a.flow.dst, a.flow.dscp, a.flow.src).cmp(&(
                    b.flow.ingress,
                    b.flow.dst,
                    b.flow.dscp,
                    b.flow.src,
                ))
            })
        });
        drop(blame_span);
        yu_telemetry::counter("explain.flows_blamed", blame.len() as u64);

        // Rerouted-path reconstruction for every blamed flow.
        let paths_span = yu_telemetry::span("explain.paths");
        let mut paths = Vec::new();
        let mut traced = 0u64;
        for b in &blame {
            let before = trace_flow(
                &mut self.m,
                &self.net,
                &self.fv,
                &mut self.routes,
                &b.flow,
                &none,
                self.opts.max_hops,
            );
            let after = trace_flow(
                &mut self.m,
                &self.net,
                &self.fv,
                &mut self.routes,
                &b.flow,
                &v.scenario,
                self.opts.max_hops,
            );
            traced += (before.len() + after.len()) as u64;
            let before_links: BTreeSet<LinkId> = before
                .iter()
                .flat_map(|p| p.links.iter().copied())
                .collect();
            let after_links: BTreeSet<LinkId> =
                after.iter().flat_map(|p| p.links.iter().copied()).collect();
            let added_links: Vec<LinkId> = after_links.difference(&before_links).copied().collect();
            let removed_links: Vec<LinkId> =
                before_links.difference(&after_links).copied().collect();
            let changed = before != after;
            paths.push(FlowPathDiff {
                flow: b.flow.clone(),
                before,
                after,
                added_links,
                removed_links,
                changed,
            });
        }
        drop(paths_span);
        yu_telemetry::counter("explain.paths_traced", traced);

        // Concrete replay: re-simulate just this scenario with the
        // independent enumerative engine and compare bit-exactly.
        let replay_span = yu_telemetry::span("explain.replay");
        let replay_load = replay_point_load(
            &self.net,
            &v.scenario,
            v.point,
            self.opts.max_hops,
            self.flow_results().map(|(g, _)| g.clone()),
        );
        let replay = ReplayCheck::new(v.load.clone(), replay_load);
        drop(replay_span);
        if !replay.matches() {
            yu_telemetry::counter("explain.replay_mismatches", 1);
        }

        Explanation {
            violation: v.clone(),
            baseline_load,
            blame,
            blame_total,
            paths,
            replay,
            envelope,
        }
    }

    /// The load envelope of one requirement's point: min/max reachable
    /// load over all `≤ k`-failure scenarios and the exact count of
    /// violating scenarios.
    pub fn point_envelope(&mut self, req: &TlpReq) -> PointEnvelope {
        let tau = self.load_mtbdd(req.point);
        let k = self.options().k;
        let reduced = self.m.kreduce(tau, k);
        let (min, max) = self.m.terminal_range(reduced);
        let as_ratio = |t: Term| match t {
            Term::Num(v) => v,
            Term::PosInf => unreachable!("traffic loads are finite"),
        };
        let req_min = req.min.clone();
        let req_max = req.max.clone();
        let (lo, hi) = (req_min.clone(), req_max.clone());
        let violating_scenarios = self
            .m
            .count_scenarios(reduced, self.m.num_vars(), k, move |t| match t {
                Term::Num(v) => {
                    lo.as_ref().is_some_and(|b| &v < b) || hi.as_ref().is_some_and(|b| &v > b)
                }
                Term::PosInf => true,
            });
        PointEnvelope {
            point: req.point,
            min: as_ratio(min),
            max: as_ratio(max),
            req_min,
            req_max,
            violating_scenarios,
        }
    }

    /// Load envelopes for every requirement of a TLP (reports show how
    /// close each point sits to its bound, violated or not).
    pub fn envelopes(&mut self, tlp: &Tlp) -> Vec<PointEnvelope> {
        let mut out = Vec::with_capacity(tlp.reqs.len());
        for req in &tlp.reqs {
            out.push(self.point_envelope(req));
        }
        out
    }
}

/// Evaluates an STF handle to the concrete fraction under a scenario.
fn eval_ratio(m: &Mtbdd, f: NodeRef, fv: &FailureVars, scenario: &Scenario) -> Ratio {
    match m.eval(f, fv.assignment(scenario)) {
        Term::Num(v) => v,
        Term::PosInf => unreachable!("traffic fractions are finite"),
    }
}

/// Replays one scenario with the concrete simulator and returns the load
/// at `point` (`Σ V_g · fraction_g`, the enumerative baseline's number).
fn replay_point_load(
    net: &Network,
    scenario: &Scenario,
    point: LoadPoint,
    max_hops: usize,
    groups: impl Iterator<Item = crate::equivalence::FlowGroup>,
) -> Ratio {
    let routes = ConcreteRoutes::compute(net, scenario);
    let mut load = Ratio::ZERO;
    for g in groups {
        let res = routes.forward_flow(&g.rep, max_hops);
        let frac = match point {
            LoadPoint::Link(l) => res.link_fraction.get(&l),
            LoadPoint::Delivered(r) => res.delivered.get(&r),
            LoadPoint::Dropped(r) => res.dropped.get(&r),
        }
        .cloned()
        .unwrap_or(Ratio::ZERO);
        load += frac * g.volume.clone();
    }
    load
}

/// Reconstructs the concrete packet paths of one flow under one failure
/// scenario by walking the *symbolic* forwarding state (guarded FIBs,
/// selection guards, SR policies, `V^IGP` shares) with every guard and
/// share evaluated under the scenario's assignment. This mirrors
/// [`crate::exec`]'s `forward`/`forwardIp`/`resolveNhIp` step for step,
/// so the traced fractions agree with the symbolic STFs pointwise.
pub fn trace_flow(
    m: &mut Mtbdd,
    net: &Network,
    fv: &FailureVars,
    routes: &mut SymbolicRoutes,
    flow: &Flow,
    scenario: &Scenario,
    max_hops: usize,
) -> Vec<TracedPath> {
    if !scenario.router_alive(flow.ingress) {
        return Vec::new();
    }
    let mut tracer = Tracer {
        m,
        net,
        fv,
        routes,
        flow,
        scenario,
        out: Vec::new(),
    };
    tracer.walk(
        flow.ingress,
        &[],
        Ratio::ONE,
        vec![flow.ingress],
        Vec::new(),
        max_hops,
    );
    let paths = tracer.out;
    // Distinct forwarding branches (e.g. parallel SR paths over the same
    // routers) can produce identical concrete paths; coalesce them by
    // summing fractions so the report shows each path once.
    let mut merged: Vec<TracedPath> = Vec::new();
    for p in paths {
        match merged
            .iter_mut()
            .find(|q| q.hops == p.hops && q.links == p.links && q.outcome == p.outcome)
        {
            Some(q) => q.fraction = q.fraction.clone() + p.fraction,
            None => merged.push(p),
        }
    }
    merged
}

struct Tracer<'a> {
    m: &'a mut Mtbdd,
    net: &'a Network,
    fv: &'a FailureVars,
    routes: &'a mut SymbolicRoutes,
    flow: &'a Flow,
    scenario: &'a Scenario,
    out: Vec<TracedPath>,
}

impl Tracer<'_> {
    /// Evaluates a guard/share diagram under the fixed scenario.
    fn frac_of(&self, f: NodeRef) -> Ratio {
        eval_ratio(self.m, f, self.fv, self.scenario)
    }

    fn finish(
        &mut self,
        hops: &[RouterId],
        links: &[LinkId],
        fraction: Ratio,
        outcome: PathOutcome,
    ) {
        if fraction <= Ratio::ZERO || self.out.len() >= MAX_TRACED_PATHS {
            return;
        }
        self.out.push(TracedPath {
            hops: hops.to_vec(),
            links: links.to_vec(),
            fraction,
            outcome,
        });
    }

    /// Crosses link `l` carrying `stack` and recurses at the far end.
    fn follow(
        &mut self,
        l: LinkId,
        stack: &[Ipv4],
        q: Ratio,
        hops: &[RouterId],
        links: &[LinkId],
        hops_left: usize,
    ) {
        if q.is_zero() {
            return;
        }
        let to = self.net.topo.link(l).to;
        let mut hops = hops.to_vec();
        hops.push(to);
        let mut links = links.to_vec();
        links.push(l);
        self.walk(to, stack, q, hops, links, hops_left - 1);
    }

    /// The concrete mirror of `Exec::step`: `hops` already ends with
    /// `router`; `fraction` is this path branch's share of the flow.
    fn walk(
        &mut self,
        router: RouterId,
        stack: &[Ipv4],
        fraction: Ratio,
        hops: Vec<RouterId>,
        links: Vec<LinkId>,
        hops_left: usize,
    ) {
        if self.out.len() >= MAX_TRACED_PATHS {
            return;
        }
        if hops_left == 0 {
            self.finish(&hops, &links, fraction, PathOutcome::Truncated);
            return;
        }
        // Pop every leading segment owned by this router.
        let mut stack = stack;
        while let Some((&top, rest)) = stack.split_first() {
            if self.routes.owns(self.net, router, top) {
                stack = rest;
            } else {
                break;
            }
        }
        let consumed = if let Some(&top) = stack.first() {
            // Labeled traffic: toward the top segment via V^IGP.
            let shares = self.routes.vigp(self.m, self.net, self.fv, router, top);
            let mut consumed = Ratio::ZERO;
            for (l, share) in shares {
                let s = self.frac_of(share);
                if s.is_zero() {
                    continue;
                }
                let q = fraction.clone() * s;
                consumed += q.clone();
                self.follow(l, stack, q, &hops, &links, hops_left);
            }
            consumed
        } else {
            self.forward_ip(router, fraction.clone(), &hops, &links, hops_left)
        };
        let dropped = fraction - consumed;
        self.finish(&hops, &links, dropped, PathOutcome::Dropped(router));
    }

    /// The concrete mirror of `Exec::forward_ip`: guarded FIB lookup,
    /// route selection, ECMP. Returns the consumed fraction.
    fn forward_ip(
        &mut self,
        router: RouterId,
        fraction: Ratio,
        hops: &[RouterId],
        links: &[LinkId],
        hops_left: usize,
    ) -> Ratio {
        let rules = self
            .routes
            .fib_rules(self.m, self.net, self.fv, router, self.flow.dst);
        let multipath = self.net.bgp(router).map(|b| b.multipath).unwrap_or(true);
        let sel = selection_guards(self.m, &rules, multipath);
        // ECMP: every selected rule (guard evaluates to 1) takes an equal
        // share — the concrete value of c_r = s_r / Σ s_{r'}.
        let flags: Vec<Ratio> = sel.iter().map(|&s| self.frac_of(s)).collect();
        let total = flags.iter().fold(Ratio::ZERO, |acc, f| acc + f.clone());
        if total.is_zero() {
            return Ratio::ZERO;
        }
        let mut consumed = Ratio::ZERO;
        for (rule, flag) in rules.iter().zip(&flags) {
            if flag.is_zero() {
                continue;
            }
            let share = fraction.clone() * flag.clone() / total.clone();
            match rule.next_hop {
                NextHop::Receive => {
                    self.finish(hops, links, share.clone(), PathOutcome::Delivered(router));
                    consumed += share;
                }
                NextHop::Null0 => {
                    // Falls into the dropped residual of `walk`.
                }
                NextHop::Direct(l) => {
                    consumed += share.clone();
                    self.follow(l, &[], share, hops, links, hops_left);
                }
                NextHop::Ip(nip) => {
                    consumed += self.resolve_nh(router, nip, share, hops, links, hops_left);
                }
            }
        }
        consumed
    }

    /// The concrete mirror of `Exec::resolve_nh`: SR policy steering or
    /// IGP route iteration. Returns the fraction successfully forwarded.
    fn resolve_nh(
        &mut self,
        router: RouterId,
        nip: Ipv4,
        amount: Ratio,
        hops: &[RouterId],
        links: &[LinkId],
        hops_left: usize,
    ) -> Ratio {
        let mut consumed = Ratio::ZERO;
        let policy = self.routes.sr_policy(router, nip, self.flow.dscp).cloned();
        if let Some(pol) = policy {
            // c_p = g_p · w_p / Σ g_{p'} · w_{p'} under the scenario.
            let weights: Vec<Ratio> = pol
                .paths
                .iter()
                .map(|p| self.frac_of(p.guard) * Ratio::int(p.weight as i64))
                .collect();
            let total = weights.iter().fold(Ratio::ZERO, |acc, w| acc + w.clone());
            if total.is_zero() {
                return Ratio::ZERO;
            }
            for (p, w) in pol.paths.iter().zip(&weights) {
                if w.is_zero() {
                    continue;
                }
                let share = amount.clone() * w.clone() / total.clone();
                let first = p.segments[0];
                if self.routes.owns(self.net, router, first) {
                    // Degenerate headend-owns-first-segment case: process
                    // the stack immediately at this router.
                    self.walk(
                        router,
                        &p.segments,
                        share.clone(),
                        hops.to_vec(),
                        links.to_vec(),
                        hops_left,
                    );
                    consumed += share;
                    continue;
                }
                let shares = self.routes.vigp(self.m, self.net, self.fv, router, first);
                for (l, lshare) in shares {
                    let s = self.frac_of(lshare);
                    if s.is_zero() {
                        continue;
                    }
                    let q = share.clone() * s;
                    consumed += q.clone();
                    self.follow(l, &p.segments, q, hops, links, hops_left);
                }
            }
        } else {
            let shares = self.routes.vigp(self.m, self.net, self.fv, router, nip);
            for (l, share) in shares {
                let s = self.frac_of(share);
                if s.is_zero() {
                    continue;
                }
                let q = amount.clone() * s;
                consumed += q.clone();
                self.follow(l, &[], q, hops, links, hops_left);
            }
        }
        consumed
    }
}

/// Graphviz overlay of the subtopology an explanation touches: links
/// used only before the failure are dashed gray, links used only after
/// are bold red, links used in both are black, failed elements are
/// marked, and the violated point (when a link) is highlighted.
pub fn explanation_dot(topo: &Topology, ex: &Explanation) -> String {
    let mut before: BTreeSet<LinkId> = BTreeSet::new();
    let mut after: BTreeSet<LinkId> = BTreeSet::new();
    let mut routers: BTreeSet<RouterId> = BTreeSet::new();
    for d in &ex.paths {
        for p in &d.before {
            before.extend(p.links.iter().copied());
            routers.extend(p.hops.iter().copied());
        }
        for p in &d.after {
            after.extend(p.links.iter().copied());
            routers.extend(p.hops.iter().copied());
        }
    }
    for &u in &ex.violation.scenario.failed_links {
        let (fwd, _) = topo.directions(u);
        let lk = topo.link(fwd);
        routers.insert(lk.from);
        routers.insert(lk.to);
    }
    routers.extend(ex.violation.scenario.failed_routers.iter().copied());
    let mut s = String::new();
    let _ = writeln!(s, "digraph explanation {{");
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(
        s,
        "  label=\"{}\";",
        ex.violation.describe(topo).replace('"', "'")
    );
    for &r in &routers {
        let name = &topo.router(r).name;
        if ex.violation.scenario.failed_routers.contains(&r) {
            let _ = writeln!(
                s,
                "  \"{name}\" [style=filled, fillcolor=lightgray, label=\"{name}\\n(failed)\"];"
            );
        } else {
            let _ = writeln!(s, "  \"{name}\";");
        }
    }
    let highlight = match ex.violation.point {
        LoadPoint::Link(l) => Some(l),
        _ => None,
    };
    for &l in before.union(&after) {
        let lk = topo.link(l);
        let from = &topo.router(lk.from).name;
        let to = &topo.router(lk.to).name;
        let mut attrs: Vec<String> = Vec::new();
        match (before.contains(&l), after.contains(&l)) {
            (true, false) => {
                attrs.push("color=gray".into());
                attrs.push("style=dashed".into());
                attrs.push("label=\"was\"".into());
            }
            (false, true) => {
                attrs.push("color=red".into());
                attrs.push("penwidth=2".into());
                attrs.push("label=\"now\"".into());
            }
            _ => attrs.push("color=black".into()),
        }
        if highlight == Some(l) {
            attrs.push("penwidth=3".into());
        }
        let _ = writeln!(s, "  \"{from}\" -> \"{to}\" [{}];", attrs.join(", "));
    }
    for &u in &ex.violation.scenario.failed_links {
        let (fwd, _) = topo.directions(u);
        let lk = topo.link(fwd);
        let from = &topo.router(lk.from).name;
        let to = &topo.router(lk.to).name;
        let _ = writeln!(
            s,
            "  \"{from}\" -> \"{to}\" [dir=none, color=red, style=dotted, label=\"failed\"];"
        );
    }
    let _ = writeln!(s, "}}");
    s
}
