//! TLP verification over symbolic traffic loads (paper §4.5, Theorem 5.1).
//!
//! After KREDUCE, every root-to-terminal path of a symbolic traffic load
//! encodes a scenario with at most `k` failures (Lemma 2) and agrees with
//! the exact load on all such scenarios (Lemma 1). Verifying
//! `load ∈ [v1, v2]` therefore reduces to scanning the terminals of the
//! reduced diagram — no SMT solving — and a violating terminal's path *is*
//! the counterexample failure scenario.

use serde::Serialize;
use yu_mtbdd::{Mtbdd, NodeRef, Ratio, Term};
use yu_net::{FailureVars, LoadPoint, Scenario, Tlp, TlpReq, Topology};

/// A verified TLP violation: a concrete `≤ k`-failure scenario under which
/// the load at a point leaves its required range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Violation {
    /// Where the violation occurs.
    pub point: LoadPoint,
    /// The failure scenario (don't-care elements are alive).
    pub scenario: Scenario,
    /// The violating load.
    pub load: Ratio,
    /// The required lower bound, if any.
    pub min: Option<Ratio>,
    /// The required upper bound, if any.
    pub max: Option<Ratio>,
}

impl Violation {
    /// Human-readable description.
    pub fn describe(&self, topo: &Topology) -> String {
        let bound = match (&self.min, &self.max) {
            (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
            (Some(lo), None) => format!(">= {lo}"),
            (None, Some(hi)) => format!("<= {hi}"),
            (None, None) => "(unbounded)".into(),
        };
        format!(
            "{}: load {} violates {} when {}",
            self.point.describe(topo),
            self.load,
            bound,
            self.scenario.describe(topo)
        )
    }
}

/// Checks one requirement against a symbolic traffic load under the
/// k-failure constraint. `tau` must already be the aggregated load at
/// `req.point`; it is KREDUCE-d here (idempotent if already reduced).
///
/// Returns the first (fewest-failure) violation found, if any.
pub fn check_requirement(
    m: &mut Mtbdd,
    fv: &FailureVars,
    tau: NodeRef,
    req: &TlpReq,
    k: u32,
) -> Option<Violation> {
    // node_count is O(|tau|): only pay for the before/after reduction
    // ratio when telemetry is recording.
    let count_nodes = yu_telemetry::enabled();
    if count_nodes {
        yu_telemetry::counter("kreduce.nodes_before", m.node_count(tau) as u64);
    }
    let reduced = {
        let _stage = yu_telemetry::span("kreduce");
        m.kreduce(tau, k)
    };
    if count_nodes {
        yu_telemetry::counter("kreduce.nodes_after", m.node_count(reduced) as u64);
    }
    let min = req.min.clone();
    let max = req.max.clone();
    let violates = move |t: Term| match t {
        Term::Num(v) => {
            min.as_ref().is_some_and(|lo| &v < lo) || max.as_ref().is_some_and(|hi| &v > hi)
        }
        Term::PosInf => true,
    };
    let path = m.find_path(reduced, violates)?;
    let load = match &path.value {
        Term::Num(v) => v.clone(),
        Term::PosInf => unreachable!("traffic loads are finite"),
    };
    Some(Violation {
        point: req.point,
        scenario: fv.scenario_of_path(&path),
        load,
        min: req.min.clone(),
        max: req.max.clone(),
    })
}

/// Enumerates *every* violating `≤ k`-failure scenario for one
/// requirement, up to `limit` (the reduced MTBDD's paths each encode at
/// most k failures by Lemma 2, so the enumeration is exact — one entry
/// per distinct decoded scenario whose don't-care variables are alive).
/// Results are deduped on the concrete scenario and sorted by failure
/// count, then by the scenario itself, so the fewest-failure triggers
/// come first and the order is stable across runs; `limit` truncates
/// *after* sorting. Operators use this to see the complete set of
/// triggers, not just the first counterexample.
pub fn enumerate_violations(
    m: &mut Mtbdd,
    fv: &FailureVars,
    tau: NodeRef,
    req: &TlpReq,
    k: u32,
    limit: usize,
) -> Vec<Violation> {
    let reduced = m.kreduce(tau, k);
    let mut out = Vec::new();
    for path in m.all_paths(reduced) {
        let load = match &path.value {
            Term::Num(v) => v.clone(),
            Term::PosInf => continue,
        };
        if !req.satisfied_by(load.clone()) {
            out.push(Violation {
                point: req.point,
                scenario: fv.scenario_of_path(&path),
                load,
                min: req.min.clone(),
                max: req.max.clone(),
            });
        }
    }
    // Distinct paths can decode to the same scenario set (don't-cares);
    // dedupe on the concrete scenario, then order fewest-failures-first.
    let mut seen = std::collections::HashSet::new();
    out.retain(|v| seen.insert(v.scenario.clone()));
    out.sort_by(|a, b| (a.scenario.count(), &a.scenario).cmp(&(b.scenario.count(), &b.scenario)));
    out.truncate(limit);
    out
}

/// Checks a whole TLP given a function producing the aggregated load at
/// each point. Stops early per point; with `early_stop` set, stops at the
/// first violation overall.
pub fn check_tlp(
    m: &mut Mtbdd,
    fv: &FailureVars,
    tlp: &Tlp,
    k: u32,
    early_stop: bool,
    mut load_at: impl FnMut(&mut Mtbdd, LoadPoint) -> NodeRef,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for req in &tlp.reqs {
        let tau = load_at(m, req.point);
        if let Some(v) = check_requirement(m, fv, tau, req, k) {
            out.push(v);
            if early_stop {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_mtbdd::Term;
    use yu_net::{FailureMode, LinkId, Topology, ULinkId};

    fn topo2() -> Topology {
        let mut t = Topology::new();
        let a = t.add_router("A", yu_net::Ipv4::new(1, 0, 0, 1), 1);
        let b = t.add_router("B", yu_net::Ipv4::new(1, 0, 0, 2), 1);
        t.add_link(a, b, 1, Ratio::int(100));
        t.add_link(a, b, 1, Ratio::int(100));
        t
    }

    #[test]
    fn finds_overload_with_minimal_failure_set() {
        let t = topo2();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &t, FailureMode::Links);
        // Load on link 0: 60 + 40 more when ulink 1 failed.
        let v1 = fv.link_var(ULinkId(1)).unwrap();
        let shifted = m.nvar_guard(v1);
        let extra = m.scale(shifted, Term::int(40));
        let base = m.constant(Ratio::int(60));
        let tau = m.add(base, extra);
        let req = TlpReq::at_most(LoadPoint::Link(LinkId(0)), Ratio::int(95));
        let v = check_requirement(&mut m, &fv, tau, &req, 1).expect("violation");
        assert_eq!(v.load, Ratio::int(100));
        assert_eq!(v.scenario.failed_links.len(), 1);
        assert!(v.scenario.failed_links.contains(&ULinkId(1)));
        // k = 0 cannot fail anything: property holds.
        assert!(check_requirement(&mut m, &fv, tau, &req, 0).is_none());
    }

    #[test]
    fn finds_underdelivery() {
        let t = topo2();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &t, FailureMode::Links);
        let v0 = fv.link_var(ULinkId(0)).unwrap();
        let g = m.var_guard(v0);
        let tau = m.scale(g, Term::int(80)); // delivered only while u0 alive
        let req = TlpReq::at_least(LoadPoint::Delivered(yu_net::RouterId(1)), Ratio::int(70));
        let v = check_requirement(&mut m, &fv, tau, &req, 2).expect("violation");
        assert_eq!(v.load, Ratio::ZERO);
        assert_eq!(v.scenario.failed_links.len(), 1);
        let msg = v.describe(&t);
        assert!(msg.contains("delivered@B"), "{msg}");
        assert!(msg.contains(">= 70"), "{msg}");
    }

    #[test]
    fn check_tlp_early_stop() {
        let t = topo2();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &t, FailureMode::Links);
        let hundred = m.constant(Ratio::int(100));
        let tlp = Tlp::new()
            .with(TlpReq::at_most(LoadPoint::Link(LinkId(0)), Ratio::int(50)))
            .with(TlpReq::at_most(LoadPoint::Link(LinkId(1)), Ratio::int(50)));
        let all = check_tlp(&mut m, &fv, &tlp, 1, false, |_, _| hundred);
        assert_eq!(all.len(), 2);
        let first = check_tlp(&mut m, &fv, &tlp, 1, true, |_, _| hundred);
        assert_eq!(first.len(), 1);
    }
}

#[cfg(test)]
mod enumeration_tests {
    use super::*;
    use yu_mtbdd::Term;
    use yu_net::{FailureMode, LinkId, LoadPoint, Topology, ULinkId};

    #[test]
    fn enumerates_all_violating_scenarios() {
        // Load on link 0 is 100 when either of ulinks 1, 2 fails (and 150
        // when both do); threshold 95: three violating scenarios at k=2.
        let mut t = Topology::new();
        let a = t.add_router("A", yu_net::Ipv4::new(1, 0, 0, 1), 1);
        let b = t.add_router("B", yu_net::Ipv4::new(1, 0, 0, 2), 1);
        for _ in 0..3 {
            t.add_link(a, b, 1, Ratio::int(100));
        }
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &t, FailureMode::Links);
        let v1 = fv.link_var(ULinkId(1)).unwrap();
        let v2 = fv.link_var(ULinkId(2)).unwrap();
        let n1 = m.nvar_guard(v1);
        let n2 = m.nvar_guard(v2);
        let e1 = m.scale(n1, Term::int(50));
        let e2 = m.scale(n2, Term::int(50));
        let base = m.constant(Ratio::int(50));
        let t0 = m.add(base, e1);
        let tau = m.add(t0, e2);
        let req = yu_net::TlpReq::at_most(LoadPoint::Link(LinkId(0)), Ratio::int(95));
        let all = enumerate_violations(&mut m, &fv, tau, &req, 2, 100);
        assert_eq!(all.len(), 3, "{all:?}");
        let loads: Vec<i128> = all.iter().map(|v| v.load.numer()).collect();
        assert!(loads.contains(&150));
        assert_eq!(loads.iter().filter(|&&l| l == 100).count(), 2);
        // Sorted: fewest failures first, then by scenario.
        let counts: Vec<usize> = all.iter().map(|v| v.scenario.count()).collect();
        assert_eq!(counts, vec![1, 1, 2]);
        assert!(all[0].scenario < all[1].scenario);
        // At k = 1 only the two single-failure triggers remain.
        let single = enumerate_violations(&mut m, &fv, tau, &req, 1, 100);
        assert_eq!(single.len(), 2);
        // The limit caps output after sorting: the fewest-failure
        // trigger survives truncation, never the double failure.
        let capped = enumerate_violations(&mut m, &fv, tau, &req, 2, 1);
        assert_eq!(capped.len(), 1);
        assert_eq!(capped[0].scenario.count(), 1);
    }
}
