//! Flow equivalence reductions (paper §5.3 and §6).
//!
//! * **Global flow equivalence**: flows with the same ingress router,
//!   destination, and DSCP are forwarded identically everywhere in every
//!   scenario, so symbolic execution runs once per group with summed
//!   volume.
//! * **Link-local flow equivalence**: even globally different flows often
//!   place the *same* symbolic traffic fraction on a given link. Because
//!   MTBDDs are hash-consed, that equivalence test is pointer equality, so
//!   aggregating a link's load needs one multiplication and one addition
//!   per *equivalence class* instead of per flow:
//!   `τ_l = Σ_i ω_i · (Σ_{f ∈ G_i} V_f)`.

use std::collections::HashMap;
use yu_mtbdd::{Mtbdd, NodeRef, Ratio, Term};
use yu_net::{Flow, Ipv4, Network, Prefix, PrefixTrie};

/// A group of globally equivalent flows.
#[derive(Debug, Clone)]
pub struct FlowGroup {
    /// A representative flow (forwarding behavior of the whole group).
    pub rep: Flow,
    /// Total volume of the group.
    pub volume: Ratio,
    /// Number of member flows.
    pub members: usize,
}

/// Groups flows by their forwarding key `(ingress, dst, dscp)`.
pub fn global_groups(flows: &[Flow]) -> Vec<FlowGroup> {
    group_by_key(flows, |f| (f.ingress, Some(Prefix::host(f.dst)), f.dscp))
}

/// Groups flows by `(ingress, destination prefix class, dscp)`: since all
/// forwarding decisions (LPM, SR matching) are made against configured
/// prefixes, two destinations covered by exactly the same configured
/// prefixes are forwarded identically — the heavy lifting behind Fig. 12's
/// near-flat scaling in the flow count. The classifier is a trie over
/// every configured prefix; the class key is the longest match (configured
/// prefixes nest, so the longest match determines the whole matching set).
pub fn global_groups_classified(net: &Network, flows: &[Flow]) -> Vec<FlowGroup> {
    let mut trie = PrefixTrie::new();
    for p in net.all_prefixes() {
        trie.insert(p, ());
    }
    group_by_key(flows, |f| {
        let class: Option<Prefix> = trie.longest_match(f.dst).map(|(p, _)| p);
        (f.ingress, class, f.dscp)
    })
}

fn group_by_key(
    flows: &[Flow],
    key: impl Fn(&Flow) -> (yu_net::RouterId, Option<Prefix>, u8),
) -> Vec<FlowGroup> {
    let mut map: HashMap<(yu_net::RouterId, Option<Prefix>, u8), FlowGroup> = HashMap::new();
    for f in flows {
        map.entry(key(f))
            .and_modify(|g| {
                g.volume += &f.volume;
                g.members += 1;
            })
            .or_insert_with(|| FlowGroup {
                rep: f.clone(),
                volume: f.volume.clone(),
                members: 1,
            });
    }
    let mut out: Vec<(_, FlowGroup)> = map.into_iter().collect();
    out.sort_by_key(|(k, _)| *k);
    out.into_iter().map(|(_, g)| g).collect()
}

/// Unused import guard (Ipv4 used by tests).
#[allow(unused)]
fn _ipv4_witness(_: Ipv4) {}

/// Statistics of one aggregation (feeds Figs. 13 and 14).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggStats {
    /// Flows (groups) with a non-zero fraction at the point.
    pub flows: usize,
    /// Distinct STF equivalence classes among them.
    pub classes: usize,
}

/// Aggregates per-flow symbolic fractions into the point's symbolic
/// traffic load `τ = Σ V_f · ω_f`.
///
/// With `link_local = true` flows are first grouped by their STF MTBDD
/// (pointer equality, §5.3) and volumes summed per class; with `false`
/// the naive per-flow multiply-accumulate chain is used (the ablation of
/// Fig. 13).
pub fn aggregate_load(
    m: &mut Mtbdd,
    contributions: &[(NodeRef, Ratio)],
    link_local: bool,
    k: Option<u32>,
) -> (NodeRef, AggStats) {
    let reduce = |m: &mut Mtbdd, f: NodeRef| match k {
        Some(k) => m.kreduce(f, k),
        None => f,
    };
    let nonzero: Vec<(NodeRef, Ratio)> = contributions
        .iter()
        .filter(|(stf, v)| *stf != m.zero() && !v.is_zero())
        .cloned()
        .collect();
    let mut stats = AggStats {
        flows: nonzero.len(),
        classes: 0,
    };
    let tau = if link_local {
        let mut by_class: HashMap<NodeRef, Ratio> = HashMap::new();
        for (stf, v) in &nonzero {
            *by_class.entry(*stf).or_insert(Ratio::ZERO) += v;
        }
        stats.classes = by_class.len();
        let mut parts: Vec<NodeRef> = Vec::with_capacity(by_class.len());
        let mut classes: Vec<(NodeRef, Ratio)> = by_class.into_iter().collect();
        classes.sort_by_key(|(n, _)| *n);
        for (stf, vol) in classes {
            let scaled = m.scale(stf, Term::Num(vol));
            parts.push(reduce(m, scaled));
        }
        let s = m.sum(&parts);
        reduce(m, s)
    } else {
        stats.classes = nonzero.len();
        let mut acc = m.zero();
        for (stf, v) in &nonzero {
            let scaled = m.scale(*stf, Term::Num(v.clone()));
            let scaled = reduce(m, scaled);
            acc = m.add(acc, scaled);
            acc = reduce(m, acc);
        }
        acc
    };
    (tau, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_net::{Ipv4, RouterId};

    fn flow(ingress: u32, dst: [u8; 4], dscp: u8, vol: i64) -> Flow {
        Flow::new(
            RouterId(ingress),
            Ipv4::new(11, 0, 0, 1),
            Ipv4::new(dst[0], dst[1], dst[2], dst[3]),
            dscp,
            Ratio::int(vol),
        )
    }

    #[test]
    fn global_grouping_sums_volumes() {
        let flows = vec![
            flow(0, [100, 0, 0, 1], 0, 20),
            flow(0, [100, 0, 0, 1], 0, 30),
            flow(0, [100, 0, 0, 1], 5, 10),
            flow(1, [100, 0, 0, 1], 0, 40),
        ];
        let groups = global_groups(&flows);
        assert_eq!(groups.len(), 3);
        let g = groups
            .iter()
            .find(|g| g.rep.ingress == RouterId(0) && g.rep.dscp == 0)
            .unwrap();
        assert_eq!(g.volume, Ratio::int(50));
        assert_eq!(g.members, 2);
    }

    #[test]
    fn link_local_aggregation_matches_naive() {
        let mut m = Mtbdd::new();
        let v1 = m.fresh_var();
        let v2 = m.fresh_var();
        let g1 = m.var_guard(v1);
        let g2 = m.var_guard(v2);
        // Three flows share STF g1; one has g2.
        let contributions = vec![
            (g1, Ratio::int(10)),
            (g1, Ratio::int(20)),
            (g1, Ratio::int(30)),
            (g2, Ratio::int(5)),
        ];
        let (fast, s_fast) = aggregate_load(&mut m, &contributions, true, None);
        let (slow, s_slow) = aggregate_load(&mut m, &contributions, false, None);
        assert_eq!(fast, slow, "hash-consing must make both identical");
        assert_eq!(s_fast.flows, 4);
        assert_eq!(s_fast.classes, 2);
        assert_eq!(s_slow.classes, 4);
        assert_eq!(m.eval_all_alive(fast), Term::int(65));
        assert_eq!(m.eval(fast, |v| v == v2), Term::int(5));
    }

    #[test]
    fn zero_contributions_are_ignored() {
        let mut m = Mtbdd::new();
        let _ = m.fresh_var();
        let z = m.zero();
        let (tau, stats) = aggregate_load(&mut m, &[(z, Ratio::int(10))], true, None);
        assert_eq!(tau, m.zero());
        assert_eq!(stats.flows, 0);
    }
}
