//! Incremental re-verification: the change-set engine behind `yu serve`
//! and `yu diff`.
//!
//! An [`IncrementalVerifier`] wraps a [`YuVerifier`] together with the
//! concrete flows and TLP it was built from, and re-executes **only what a
//! change invalidated**:
//!
//! * **Topology changes** (router/link add/remove) renumber the failure
//!   variables, so everything is rebuilt from scratch — the only sound
//!   option, since every guard in the arena is indexed by them.
//! * **Routing changes** (link-cost edits) recompute the guarded routing
//!   state *in the same arena* (hash-consing dedupes everything that did
//!   not change), then replay every flow group's recorded
//!   [`RouteTrace`] against the new state; only groups with a mismatched
//!   answer are re-executed. A reused group's symbolic traffic functions
//!   are bit-identical by construction (§ [`crate::trace`]).
//! * **Flow changes** regroup and key-match against the executed groups:
//!   a matched group keeps its STF (symbolic fractions are
//!   volume-independent; globally equivalent representatives forward
//!   identically), only its volume/representative metadata is refreshed.
//! * **TLP changes** touch neither routes nor STFs; the per-requirement
//!   verdict cache simply misses on new or re-bounded requirements.
//!
//! Per-point **epochs** track which aggregated loads a change dirtied:
//! a cached verdict is reused iff its load point's epoch is unchanged,
//! so untouched requirements cost a hash lookup. The preflight
//! classification is likewise cached per requirement and invalidated
//! only when its bounds inputs (network or flows) changed.
//!
//! Soundness of all this reuse rests on the arena's canonicity: MTBDDs
//! are hash-consed with a fixed variable order and exact arithmetic, so
//! semantic equality is handle equality, τ-aggregation is independent of
//! association order, and a verdict is a pure function of
//! `(τ, requirement, k)`. The differential harnesses
//! (`tests/serve_differential.rs`, `tests/serve_prop.rs`) enforce
//! bit-identity against from-scratch runs for every change kind.

use crate::api::{VerificationOutcome, YuOptions, YuVerifier};
use crate::equivalence::{global_groups_classified, AggStats, FlowGroup};
use crate::exec::{simulate_flow_traced, ExecOptions};
use crate::verify::{check_requirement, Violation};
use std::collections::HashMap;
use std::time::Instant;
use yu_mtbdd::Ratio;
use yu_net::{
    ChangeError, ChangeSet, Flow, Impact, LoadPoint, Network, Prefix, PrefixTrie, Tlp, TlpReq,
};
use yu_routing::SymbolicRoutes;

/// Reuse-vs-recompute statistics of one incremental request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Flow groups whose symbolic traffic functions were reused.
    pub reused_groups: usize,
    /// Flow groups (re-)executed symbolically.
    pub recomputed_groups: usize,
    /// Requirements answered from the verdict cache.
    pub reused_reqs: usize,
    /// Requirements re-aggregated and re-checked.
    pub rechecked_reqs: usize,
    /// Load points dirtied by the change.
    pub dirty_points: usize,
    /// Whether the change forced a from-scratch rebuild (topology edits).
    pub full_rebuild: bool,
}

/// A cached per-requirement verdict, valid while its load point's epoch
/// is unchanged. Plain data — safe across garbage collections.
#[derive(Debug, Clone)]
struct CachedVerdict {
    epoch: u64,
    violation: Option<Violation>,
    agg: AggStats,
}

/// Cache key of a requirement: the verdict is a pure function of the
/// (canonical) load at the point and the bounds.
type ReqKey = (LoadPoint, Option<Ratio>, Option<Ratio>);

fn req_key(req: &TlpReq) -> ReqKey {
    (req.point, req.min.clone(), req.max.clone())
}

/// The grouping key of one flow under the active equivalence setting.
/// Mirrors [`global_groups_classified`] exactly (longest-match prefix
/// class) so key-matching reproduces the scratch grouping; without
/// global equivalence the flow's full identity plus an occurrence index
/// distinguishes duplicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum GroupKey {
    Class(yu_net::RouterId, Option<Prefix>, u8),
    Identity(yu_net::RouterId, yu_net::Ipv4, yu_net::Ipv4, u8, usize),
}

/// A verifier that carries its inputs and re-verifies change-sets
/// incrementally, reusing the arena, caches, and every result the change
/// did not invalidate.
pub struct IncrementalVerifier {
    v: YuVerifier,
    flows: Vec<Flow>,
    tlp: Tlp,
    /// Monotone generation counter; bumped once per applied update.
    gen: u64,
    /// Last generation that dirtied each load point (absent = never).
    point_epoch: HashMap<LoadPoint, u64>,
    verdicts: HashMap<ReqKey, CachedVerdict>,
    /// `true` = requirement proven safe by preflight (pruned).
    preflight_cache: HashMap<ReqKey, bool>,
    /// Whether `preflight_cache` still matches the current network and
    /// flows (its bounds inputs).
    preflight_valid: bool,
    last_delta: DeltaStats,
}

impl IncrementalVerifier {
    /// Builds the verifier and executes `flows` with route-dependency
    /// recording on (required for trace replay), keeping `tlp` as the
    /// property to re-verify after each change.
    pub fn new(
        net: Network,
        flows: Vec<Flow>,
        tlp: Tlp,
        mut opts: YuOptions,
    ) -> IncrementalVerifier {
        opts.record_route_deps = true;
        let mut v = YuVerifier::new(net, opts);
        v.add_flows(&flows);
        let groups = v.flow_results().count();
        IncrementalVerifier {
            v,
            flows,
            tlp,
            gen: 0,
            point_epoch: HashMap::new(),
            verdicts: HashMap::new(),
            preflight_cache: HashMap::new(),
            preflight_valid: false,
            last_delta: DeltaStats {
                recomputed_groups: groups,
                full_rebuild: true,
                ..DeltaStats::default()
            },
        }
    }

    /// The wrapped batch verifier (read-only).
    pub fn verifier(&self) -> &YuVerifier {
        &self.v
    }

    /// The wrapped batch verifier (tests and the CLI).
    pub fn verifier_mut(&mut self) -> &mut YuVerifier {
        &mut self.v
    }

    /// The current network.
    pub fn network(&self) -> &Network {
        self.v.network()
    }

    /// The current flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// The current TLP.
    pub fn tlp(&self) -> &Tlp {
        &self.tlp
    }

    /// Reuse statistics of the most recent update + verify.
    pub fn delta_stats(&self) -> DeltaStats {
        self.last_delta
    }

    /// Applies a change-set atomically and re-verifies: on error the
    /// state is untouched; on success only what the change invalidated
    /// is recomputed. Returns the new outcome (bit-identical to a
    /// from-scratch run on the updated inputs).
    pub fn apply(&mut self, cs: &ChangeSet) -> Result<VerificationOutcome, ChangeError> {
        let (net, flows, tlp, impact) = cs.apply(self.v.network(), &self.flows, &self.tlp)?;
        self.v.reset_run_counters();
        self.update(net, flows, tlp, impact);
        Ok(self.verify())
    }

    /// Replaces the inputs wholesale (the `yu diff` path), inferring the
    /// impact from a field-by-field comparison, then re-verifies.
    pub fn set_state(&mut self, net: Network, flows: Vec<Flow>, tlp: Tlp) -> VerificationOutcome {
        let impact = yu_net::diff_impact(
            (self.v.network(), &self.flows, &self.tlp),
            (&net, &flows, &tlp),
        );
        self.v.reset_run_counters();
        self.update(net, flows, tlp, impact);
        self.verify()
    }

    /// Invalidates and recomputes state for already-validated new inputs.
    fn update(&mut self, net: Network, flows: Vec<Flow>, tlp: Tlp, impact: Impact) {
        self.gen += 1;
        self.last_delta = DeltaStats::default();
        if impact.topology {
            self.rebuild(net, flows, tlp);
        } else {
            let inv = yu_telemetry::span_detail("delta.invalidate", || impact.to_string());
            if impact.routing {
                self.apply_routing(net);
            } else {
                // The network can only differ when routing (or topology)
                // is impacted; assigning is a no-op otherwise.
                self.v.net = net;
            }
            if impact.flows {
                self.apply_flows(flows);
            } else {
                self.flows = flows;
            }
            if impact.routing || impact.flows {
                // The preflight bounds read the network and the flows.
                self.preflight_valid = false;
            }
            self.tlp = tlp;
            drop(inv);
        }
        // Normalise the reuse counters over the *final* group set: a
        // group counts as recomputed if any stage of this update
        // re-executed it (the routing replay and the flow regroup touch
        // disjoint groups), and as reused otherwise — so the two
        // counters always partition the groups, including TLP-only
        // updates (everything reused) and full rebuilds (nothing).
        let total = self.v.groups.len();
        self.last_delta.recomputed_groups = self.last_delta.recomputed_groups.min(total);
        self.last_delta.reused_groups = total - self.last_delta.recomputed_groups;
        self.last_delta.dirty_points = self
            .point_epoch
            .values()
            .filter(|&&e| e == self.gen)
            .count();
        yu_telemetry::counter("delta.reused_groups", self.last_delta.reused_groups as u64);
        yu_telemetry::counter(
            "delta.recomputed_groups",
            self.last_delta.recomputed_groups as u64,
        );
        yu_telemetry::with_registry(|r| {
            r.incremental_reused_groups_total
                .add(self.last_delta.reused_groups as u64);
            r.incremental_recomputed_groups_total
                .add(self.last_delta.recomputed_groups as u64);
            if self.last_delta.full_rebuild {
                r.incremental_full_rebuilds_total.inc();
            }
        });
        self.v.audit_checkpoint("after incremental invalidation");
    }

    /// Topology edits renumber the failure variables, invalidating every
    /// guard: rebuild from scratch and drop all caches.
    fn rebuild(&mut self, net: Network, flows: Vec<Flow>, tlp: Tlp) {
        let opts = self.v.options();
        let mut v = YuVerifier::new(net, opts);
        v.add_flows(&flows);
        self.last_delta.recomputed_groups = v.flow_results().count();
        self.last_delta.full_rebuild = true;
        self.v = v;
        self.flows = flows;
        self.tlp = tlp;
        self.verdicts.clear();
        self.point_epoch.clear();
        self.preflight_cache.clear();
        self.preflight_valid = false;
    }

    /// Marks one load point dirty: bump its epoch (invalidating cached
    /// verdicts) and evict its cached aggregate.
    fn mark_dirty(&mut self, p: LoadPoint) {
        self.point_epoch.insert(p, self.gen);
        self.v.load_cache.remove(&p);
    }

    /// Routing changed (same topology): recompute the guarded routing
    /// state in the same arena, then replay each group's route trace and
    /// re-execute only the groups whose answers changed.
    fn apply_routing(&mut self, net: Network) {
        let v = &mut self.v;
        v.net = net;
        let k = v.opts.use_kreduce.then_some(v.opts.k);
        let t0 = Instant::now();
        let routes = {
            let _stage = yu_telemetry::span("route_sim");
            SymbolicRoutes::compute(&mut v.m, &v.net, &v.fv, k)
        };
        v.routes = routes;
        v.route_time += t0.elapsed();
        let exec_opts = ExecOptions {
            k,
            max_hops: v.opts.max_hops,
        };
        let t1 = Instant::now();
        let mut dirty: Vec<LoadPoint> = Vec::new();
        for i in 0..v.groups.len() {
            let valid = match &v.traces[i] {
                Some(t) => t.still_valid(&mut v.m, &v.net, &v.fv, &mut v.routes),
                None => false,
            };
            if valid {
                self.last_delta.reused_groups += 1;
                continue;
            }
            let _stage = yu_telemetry::span_detail("delta.reexec", || {
                format!("{:?}->{:?}", v.groups[i].rep.ingress, v.groups[i].rep.dst)
            });
            let (stf, trace) = simulate_flow_traced(
                &mut v.m,
                &v.net,
                &v.fv,
                &mut v.routes,
                &v.groups[i].rep,
                exec_opts,
            );
            // Dirty every point where the group's fraction changed
            // (handle inequality is semantic inequality in one arena).
            for (&p, &n) in &v.results[i].loads {
                if stf.at(&v.m, p) != n {
                    dirty.push(p);
                }
            }
            for (&p, &n) in &stf.loads {
                if v.results[i].at(&v.m, p) != n {
                    dirty.push(p);
                }
            }
            v.results[i] = stf;
            v.traces[i] = Some(trace);
            self.last_delta.recomputed_groups += 1;
        }
        v.exec_time += t1.elapsed();
        for p in dirty {
            self.mark_dirty(p);
        }
    }

    /// The grouping keys of `flows` in scratch grouping order, paired
    /// with the scratch groups themselves.
    fn grouped(&self, flows: &[Flow]) -> Vec<(GroupKey, FlowGroup)> {
        if self.v.opts.use_global_equiv {
            let mut trie = PrefixTrie::new();
            for p in self.v.net.all_prefixes() {
                trie.insert(p, ());
            }
            global_groups_classified(&self.v.net, flows)
                .into_iter()
                .map(|g| {
                    let class = trie.longest_match(g.rep.dst).map(|(p, _)| p);
                    (GroupKey::Class(g.rep.ingress, class, g.rep.dscp), g)
                })
                .collect()
        } else {
            let mut occurrence: HashMap<(yu_net::RouterId, yu_net::Ipv4, yu_net::Ipv4, u8), usize> =
                HashMap::new();
            flows
                .iter()
                .map(|f| {
                    let id = (f.ingress, f.src, f.dst, f.dscp);
                    let n = occurrence.entry(id).or_insert(0);
                    let key = GroupKey::Identity(f.ingress, f.src, f.dst, f.dscp, *n);
                    *n += 1;
                    (
                        key,
                        FlowGroup {
                            rep: f.clone(),
                            volume: f.volume.clone(),
                            members: 1,
                        },
                    )
                })
                .collect()
        }
    }

    /// Flows changed: regroup exactly as a scratch run would, key-match
    /// against the executed groups, and keep matched STFs (symbolic
    /// fractions do not depend on volume, and equivalent representatives
    /// forward identically). Unmatched new groups are executed; points
    /// touched by changed volumes, new groups, or vanished groups are
    /// dirtied.
    fn apply_flows(&mut self, flows: Vec<Flow>) {
        let old_keys: Vec<GroupKey> = self
            .grouped(&self.flows)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let new_grouped = self.grouped(&flows);
        let mut old_by_key: HashMap<&GroupKey, usize> = HashMap::new();
        for (i, k) in old_keys.iter().enumerate() {
            old_by_key.entry(k).or_insert(i);
        }
        let v = &mut self.v;
        v.flows_in += flows.len();
        let exec_opts = ExecOptions {
            k: v.opts.use_kreduce.then_some(v.opts.k),
            max_hops: v.opts.max_hops,
        };
        let mut groups = Vec::with_capacity(new_grouped.len());
        let mut results = Vec::with_capacity(new_grouped.len());
        let mut traces = Vec::with_capacity(new_grouped.len());
        let mut matched_old = vec![false; old_keys.len()];
        let mut dirty: Vec<LoadPoint> = Vec::new();
        let t0 = Instant::now();
        for (key, g) in new_grouped {
            if let Some(&i) = old_by_key.get(&key) {
                matched_old[i] = true;
                if v.groups[i].volume != g.volume {
                    dirty.extend(v.results[i].loads.keys().copied());
                }
                self.last_delta.reused_groups += 1;
                groups.push(g);
                results.push(v.results[i].clone());
                traces.push(v.traces[i].clone());
            } else {
                let _stage = yu_telemetry::span_detail("delta.reexec", || {
                    format!("{:?}->{:?}", g.rep.ingress, g.rep.dst)
                });
                let (stf, trace) =
                    simulate_flow_traced(&mut v.m, &v.net, &v.fv, &mut v.routes, &g.rep, exec_opts);
                dirty.extend(stf.loads.keys().copied());
                self.last_delta.recomputed_groups += 1;
                groups.push(g);
                results.push(stf);
                traces.push(Some(trace));
            }
        }
        for (i, hit) in matched_old.iter().enumerate() {
            if !hit {
                dirty.extend(v.results[i].loads.keys().copied());
            }
        }
        v.exec_time += t0.elapsed();
        v.groups = groups;
        v.results = results;
        v.traces = traces;
        self.flows = flows;
        for p in dirty {
            self.mark_dirty(p);
        }
    }

    /// The preflight pass with per-requirement caching: classifications
    /// are reused while their bounds inputs (network, flows) are
    /// unchanged; only missing requirements are classified, against a
    /// preflight instance built on demand. Pruning decisions are
    /// bit-identical to [`YuVerifier`]'s batch preflight because the
    /// classifier is deterministic in the same inputs.
    fn preflight_kept_cached(&mut self) -> (Vec<TlpReq>, usize) {
        if !self.v.opts.static_prune || self.tlp.reqs.is_empty() {
            return (self.tlp.reqs.clone(), 0);
        }
        let _stage = yu_telemetry::span("preflight");
        if !self.preflight_valid {
            self.preflight_cache.clear();
            self.preflight_valid = true;
        }
        let missing: Vec<&TlpReq> = self
            .tlp
            .reqs
            .iter()
            .filter(|r| !self.preflight_cache.contains_key(&req_key(r)))
            .collect();
        if !missing.is_empty() {
            let flows: Vec<Flow> = self
                .v
                .groups
                .iter()
                .map(|g| {
                    let mut f = g.rep.clone();
                    f.volume = g.volume.clone();
                    f
                })
                .collect();
            let cfg = yu_analysis::PreflightConfig {
                k: self.v.opts.k,
                mode: self.v.opts.mode,
                max_hops: self.v.opts.max_hops,
            };
            let mut pf = yu_analysis::Preflight::new(&self.v.net, &flows, cfg);
            for (ix, req) in missing.into_iter().enumerate() {
                let classification = pf.classify_req(ix, req);
                let safe = matches!(classification.class, yu_analysis::ReqClass::ProvenSafe);
                if safe && yu_mtbdd::audit_enabled() {
                    yu_analysis::check_certificate(&self.v.net, &flows, req, cfg, &classification)
                        .unwrap_or_else(|e| {
                            panic!("preflight certificate failed its independent check: {e}")
                        });
                }
                self.preflight_cache.insert(req_key(req), safe);
            }
        }
        let mut kept = Vec::with_capacity(self.tlp.reqs.len());
        let mut pruned = 0usize;
        for req in &self.tlp.reqs {
            if self.preflight_cache[&req_key(req)] {
                pruned += 1;
            } else {
                kept.push(req.clone());
            }
        }
        (kept, pruned)
    }

    /// Re-verifies the current TLP, answering unchanged requirements from
    /// the verdict cache and re-aggregating only dirtied load points. The
    /// outcome (violations, per-point statistics, prune count) is
    /// bit-identical to a from-scratch [`YuVerifier::verify`] on the same
    /// inputs.
    pub fn verify(&mut self) -> VerificationOutcome {
        let t0 = Instant::now();
        let verify_span = yu_telemetry::span("verify");
        let (kept, pruned) = self.preflight_kept_cached();
        let mut violations = Vec::new();
        let mut per_point = HashMap::new();
        for req in &kept {
            let key = req_key(req);
            let epoch = self.point_epoch.get(&req.point).copied().unwrap_or(0);
            let cached = self
                .verdicts
                .get(&key)
                .filter(|c| c.epoch == epoch)
                .cloned();
            let (violation, agg) = match cached {
                Some(c) => {
                    self.last_delta.reused_reqs += 1;
                    (c.violation, c.agg)
                }
                None => {
                    self.last_delta.rechecked_reqs += 1;
                    let (tau, agg) = self.v.load_with_stats(req.point);
                    let violation =
                        check_requirement(&mut self.v.m, &self.v.fv, tau, req, self.v.opts.k);
                    self.verdicts.insert(
                        key,
                        CachedVerdict {
                            epoch,
                            violation: violation.clone(),
                            agg,
                        },
                    );
                    (violation, agg)
                }
            };
            per_point.insert(req.point, agg);
            if let Some(v) = violation {
                violations.push(v);
                if self.v.opts.early_stop {
                    break;
                }
            }
        }
        yu_telemetry::counter("delta.reused_reqs", self.last_delta.reused_reqs as u64);
        yu_telemetry::counter(
            "delta.rechecked_reqs",
            self.last_delta.rechecked_reqs as u64,
        );
        yu_telemetry::with_registry(|r| {
            r.incremental_reused_reqs_total
                .add(self.last_delta.reused_reqs as u64);
            r.incremental_rechecked_reqs_total
                .add(self.last_delta.rechecked_reqs as u64);
        });
        drop(verify_span);
        self.v
            .finish_outcome(violations, per_point, t0.elapsed(), pruned)
    }
}
