//! Route-dependency traces for incremental re-verification.
//!
//! Symbolic execution of one flow consults the routing state through five
//! query kinds: guarded FIB lookups, IGP route iteration (`V^IGP`), SR
//! policy matching, segment ownership, and ingress liveness. A
//! [`RouteTrace`] records every *distinct* query a flow's execution issued
//! together with the answer it received. Because execution is a
//! deterministic function of those answers, replaying the queries against a
//! *new* routing state and getting identical answers proves the flow's
//! symbolic traffic fractions are unchanged — bit-for-bit, since answers
//! are compared by `NodeRef` (canonical-handle) equality inside one arena.
//!
//! This is the dependency tracker behind `yu serve` / `yu diff`: after a
//! routing-affecting change, each flow group's trace is replayed and only
//! groups with a mismatching answer are re-executed.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use yu_mtbdd::{ImportMemo, Mtbdd, NodeRef, Remap};
use yu_net::{FailureVars, Ipv4, LinkId, Network, RouterId};
use yu_routing::{Rule, SymbolicRoutes};

/// A routing-state query issued during symbolic execution, keyed by every
/// input that can change the answer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TraceQuery {
    /// Guarded FIB lookup: `(router, dstip)` (plus the router's multipath
    /// setting, folded into the answer).
    Fib(RouterId, Ipv4),
    /// IGP route iteration toward `nip` at `router`.
    Vigp(RouterId, Ipv4),
    /// SR policy matching `(nip, dscp)` at `router`.
    Sr(RouterId, Ipv4, u8),
    /// Whether `router` owns (terminates) IGP destination `ip`.
    Owns(RouterId, Ipv4),
    /// The ingress-liveness guard of `router`.
    Alive(RouterId),
}

/// The recorded answer to a [`TraceQuery`]. Guarded answers hold `NodeRef`s
/// into the arena the trace lives in; they are GC roots.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceAnswer {
    /// FIB rules (sorted, with guards) and the router's multipath setting.
    Fib {
        /// The guarded rules, in selection order.
        rules: Vec<Rule>,
        /// Whether ECMP across equally-preferred BGP routes is enabled.
        multipath: bool,
    },
    /// ECMP shares per outgoing link.
    Vigp(Vec<(LinkId, NodeRef)>),
    /// The matching policy's weighted guarded paths (`None` = no policy).
    /// Endpoint and DSCP match are part of the query key.
    Sr(Option<Vec<(Vec<Ipv4>, u64, NodeRef)>>),
    /// Ownership verdict.
    Owns(bool),
    /// Liveness guard.
    Alive(NodeRef),
}

/// The set of routing queries one flow's execution depended on.
#[derive(Debug, Clone, Default)]
pub struct RouteTrace {
    entries: Vec<(TraceQuery, TraceAnswer)>,
    seen: HashSet<TraceQuery>,
}

impl RouteTrace {
    /// Empty trace.
    pub fn new() -> RouteTrace {
        RouteTrace::default()
    }

    /// Number of distinct queries recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no query was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records the first occurrence of `query`; repeats are dropped
    /// (queries are deterministic per key within one execution).
    pub fn record(&mut self, query: TraceQuery, answer: impl FnOnce() -> TraceAnswer) {
        if self.seen.insert(query.clone()) {
            self.entries.push((query, answer()));
        }
    }

    /// Replays every recorded query against a (possibly new) routing state
    /// in the *same arena* and checks the answers are identical. `true`
    /// means the flow's execution would produce bit-identical STFs;
    /// `false` means it must be re-executed. Conservative by construction:
    /// any mismatch, including one that would not change the outcome,
    /// forces re-execution.
    pub fn still_valid(
        &self,
        m: &mut Mtbdd,
        net: &Network,
        fv: &FailureVars,
        routes: &mut SymbolicRoutes,
    ) -> bool {
        self.entries.iter().all(|(q, a)| match (q, a) {
            (TraceQuery::Fib(r, dst), TraceAnswer::Fib { rules, multipath }) => {
                let now = routes.fib_rules(m, net, fv, *r, *dst);
                let mp = net.bgp(*r).map(|b| b.multipath).unwrap_or(true);
                mp == *multipath && *now == *rules
            }
            (TraceQuery::Vigp(r, nip), TraceAnswer::Vigp(shares)) => {
                routes.vigp(m, net, fv, *r, *nip) == *shares
            }
            (TraceQuery::Sr(r, nip, dscp), TraceAnswer::Sr(paths)) => {
                snapshot_sr(routes, *r, *nip, *dscp) == *paths
            }
            (TraceQuery::Owns(r, ip), TraceAnswer::Owns(owned)) => {
                routes.owns(net, *r, *ip) == *owned
            }
            (TraceQuery::Alive(r), TraceAnswer::Alive(g)) => fv.router_alive(m, *r) == *g,
            _ => false,
        })
    }

    /// Collects every recorded guard handle (GC roots).
    pub fn gc_roots(&self, out: &mut Vec<NodeRef>) {
        for (_, a) in &self.entries {
            match a {
                TraceAnswer::Fib { rules, .. } => out.extend(rules.iter().map(|r| r.guard)),
                TraceAnswer::Vigp(shares) => out.extend(shares.iter().map(|(_, g)| *g)),
                TraceAnswer::Sr(Some(paths)) => out.extend(paths.iter().map(|(_, _, g)| *g)),
                TraceAnswer::Sr(None) | TraceAnswer::Owns(_) => {}
                TraceAnswer::Alive(g) => out.push(*g),
            }
        }
    }

    /// Translates every guard handle after a collection.
    pub fn remap(&mut self, remap: &Remap) {
        self.for_each_guard(|g| *g = remap.get(*g));
    }

    /// Re-homes the trace from arena `src` into `dst` (used when a worker
    /// shard recorded it in a private arena).
    pub fn import_into(&mut self, dst: &mut Mtbdd, src: &Mtbdd, memo: &mut ImportMemo) {
        self.for_each_guard(|g| *g = dst.import(src, *g, memo));
    }

    fn for_each_guard(&mut self, mut f: impl FnMut(&mut NodeRef)) {
        for (_, a) in &mut self.entries {
            match a {
                TraceAnswer::Fib { rules, .. } => {
                    for r in rules {
                        f(&mut r.guard);
                    }
                }
                TraceAnswer::Vigp(shares) => {
                    for (_, g) in shares {
                        f(g);
                    }
                }
                TraceAnswer::Sr(Some(paths)) => {
                    for (_, _, g) in paths {
                        f(g);
                    }
                }
                TraceAnswer::Sr(None) | TraceAnswer::Owns(_) => {}
                TraceAnswer::Alive(g) => f(g),
            }
        }
    }
}

/// The comparable snapshot of the SR policy matching `(nip, dscp)` at
/// `router`: segment lists, weights, and tunnel guards.
pub(crate) fn snapshot_sr(
    routes: &SymbolicRoutes,
    router: RouterId,
    nip: Ipv4,
    dscp: u8,
) -> Option<Vec<(Vec<Ipv4>, u64, NodeRef)>> {
    routes.sr_policy(router, nip, dscp).map(|pol| {
        pol.paths
            .iter()
            .map(|p| (p.segments.clone(), p.weight, p.guard))
            .collect()
    })
}

/// Records a FIB answer (shared helper for the recording wrappers in
/// `exec`).
pub(crate) fn fib_answer(rules: &Rc<Vec<Rule>>, multipath: bool) -> TraceAnswer {
    TraceAnswer::Fib {
        rules: (**rules).clone(),
        multipath,
    }
}

/// Looks up the number of trace entries per query kind (telemetry).
pub fn query_histogram(trace: &RouteTrace) -> HashMap<&'static str, usize> {
    let mut h: HashMap<&'static str, usize> = HashMap::new();
    for (q, _) in &trace.entries {
        let name = match q {
            TraceQuery::Fib(..) => "fib",
            TraceQuery::Vigp(..) => "vigp",
            TraceQuery::Sr(..) => "sr",
            TraceQuery::Owns(..) => "owns",
            TraceQuery::Alive(..) => "alive",
        };
        *h.entry(name).or_default() += 1;
    }
    h
}
