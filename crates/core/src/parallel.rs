//! Sharded parallel symbolic execution and property checking.
//!
//! Two stages of the pipeline are embarrassingly parallel and share the
//! worker-pool plumbing here:
//!
//! * **Execution** (§5): every flow group's symbolic traffic function is
//!   built independently before loads are summed per link, so flow groups
//!   are dealt round-robin across a pool of OS threads
//!   ([`execute_sharded`]).
//! * **Checking** (§4.5/§5.3): every requirement's load point is
//!   aggregated and scanned independently, so requirements are dealt the
//!   same way ([`check_sharded`]).
//!
//! In both stages **each worker owns a private [`Mtbdd`] arena** — no
//! locks, no contended unique tables, no sharing of apply caches. An
//! execution worker allocates its own failure variables (deterministically
//! identical to the main arena's, because [`FailureVars::allocate`] is a
//! pure function of topology and mode), recomputes the guarded routing
//! state locally, executes its share of the flows with per-worker
//! `KREDUCE`, and hands back its arena plus per-flow STFs; the caller
//! imports the results into the main arena with
//! [`yu_mtbdd::Mtbdd::import`] in *flow order*, so the merged state is
//! independent of thread scheduling.
//!
//! A check worker goes the other way: the main arena is **frozen** once
//! ([`yu_mtbdd::Mtbdd::freeze`]) and every worker opens a zero-copy
//! overlay on it ([`Mtbdd::with_base`]). Main-arena handles stay valid
//! inside the overlay, so workers use the class representatives
//! *directly* — no per-worker import, no memo tables, no duplicated
//! diagrams — and allocate only their private result nodes while
//! aggregating with the fused n-ary `Σ∘KREDUCE` kernel and scanning
//! terminals locally. Because hash-consed MTBDDs with a fixed variable
//! order are canonical and `KREDUCE` is canonicalizing, the reduced
//! diagram a worker scans denotes exactly the function the sequential
//! checker builds, so the returned [`Violation`]s are **bit-identical**
//! to a sequential run — independent of worker count and scheduling.
//!
//! Per-worker `KREDUCE` before any merge is sound in both stages:
//! k-failure equivalence is a congruence under pointwise `+`, `min`, and
//! `max` (Lemma 2 / Theorem 5.1 of the paper), and `KREDUCE` is
//! canonicalizing for `≈ₖ`, so reducing early and reducing late yield the
//! same final diagrams.

use crate::attribution::{flow_label, EntityCost};
use crate::equivalence::{AggStats, FlowGroup};
use crate::exec::{simulate_flow, simulate_flow_traced, ExecOptions, FlowStf};
use crate::trace::RouteTrace;
use crate::verify::{check_requirement, enumerate_violations, Violation};
use std::collections::HashMap;
use std::time::Instant;
use yu_mtbdd::{Mtbdd, MtbddStats, NodeRef, Ratio, Term};
use yu_net::{FailureMode, FailureVars, Network, TlpReq};
use yu_routing::SymbolicRoutes;

/// Runs `job(w)` for `w in 0..workers` on scoped OS threads, each with
/// its own telemetry track (named by `track`) and a `span_name` stage
/// span, flushing the thread-local telemetry buffer before joining.
///
/// # Panics
/// Propagates panics from worker threads (including audit failures when
/// `YU_AUDIT=1`).
fn run_worker_pool<T: Send>(
    workers: usize,
    track: impl Fn(usize) -> String + Sync,
    span_name: &'static str,
    job: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (track, job) = (&track, &job);
                scope.spawn(move || {
                    // Each worker records into its own thread-local
                    // telemetry buffer (its own trace track); the flush
                    // before returning makes the buffer visible to the
                    // main thread's snapshot without any contention
                    // during execution.
                    yu_telemetry::set_thread_track(track(w));
                    let out = {
                        let _stage = yu_telemetry::span(span_name);
                        job(w)
                    };
                    yu_telemetry::flush_thread();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// The result of one execution worker: its private arena and the symbolic
/// traffic functions it produced, tagged with the global flow-group index.
pub struct Shard {
    /// The worker's private arena. All [`FlowStf`] handles in
    /// [`Shard::stfs`] live here until imported.
    pub arena: Mtbdd,
    /// `(global group index, STF, route trace)` triples, in this worker's
    /// execution order (ascending group index by construction). The trace
    /// is `Some` iff the shard ran with `record_traces` and holds handles
    /// of this shard's arena until imported.
    pub stfs: Vec<(usize, FlowStf, Option<RouteTrace>)>,
    /// Per-entity costs of this worker (its local route recompute plus
    /// one entry per flow group), measured against the private arena.
    /// Empty unless the shard ran with `profile`. The entity node deltas
    /// telescope from an empty arena, so they sum exactly to
    /// `arena.stats().nodes_created`.
    pub costs: Vec<EntityCost>,
}

/// Executes `groups` across `workers` threads, each with a private arena
/// and locally recomputed routing state.
///
/// Sharding is deterministic (round-robin by group index), and so is
/// each shard's content; only wall-clock interleaving varies between
/// runs. Returns one [`Shard`] per worker, indexed by worker id.
///
/// # Panics
/// Propagates panics from worker threads (including audit failures when
/// `YU_AUDIT=1`).
#[allow(clippy::too_many_arguments)]
pub fn execute_sharded(
    net: &Network,
    mode: FailureMode,
    routes_k: Option<u32>,
    groups: &[FlowGroup],
    opts: ExecOptions,
    workers: usize,
    record_traces: bool,
    profile: bool,
) -> Vec<Shard> {
    let workers = workers.clamp(1, groups.len().max(1));
    run_worker_pool(
        workers,
        |w| format!("worker-{w}"),
        "exec.worker",
        move |w| {
            let mut costs = Vec::new();
            let t_routes = Instant::now();
            let mut m = Mtbdd::new();
            let fv = FailureVars::allocate(&mut m, &net.topo, mode);
            let mut routes = SymbolicRoutes::compute(&mut m, net, &fv, routes_k);
            if profile {
                costs.push(EntityCost {
                    label: format!("worker-{w} route_sim"),
                    wall_us: t_routes.elapsed().as_micros() as u64,
                    nodes_delta: m.stats().nodes_created as i64,
                });
            }
            let mut stfs = Vec::new();
            for (ix, g) in groups.iter().enumerate().skip(w).step_by(workers) {
                let t_flow = Instant::now();
                let nodes_before = m.stats().nodes_created as i64;
                if record_traces {
                    let (stf, trace) =
                        simulate_flow_traced(&mut m, net, &fv, &mut routes, &g.rep, opts);
                    stfs.push((ix, stf, Some(trace)));
                } else {
                    let stf = simulate_flow(&mut m, net, &fv, &mut routes, &g.rep, opts);
                    stfs.push((ix, stf, None));
                }
                let wall_us = t_flow.elapsed().as_micros() as u64;
                yu_telemetry::with_registry(|r| r.flow_exec_seconds.record(wall_us));
                if profile {
                    costs.push(EntityCost {
                        label: flow_label(net, &g.rep, g.members),
                        wall_us,
                        nodes_delta: m.stats().nodes_created as i64 - nodes_before,
                    });
                }
            }
            Shard {
                arena: m,
                stfs,
                costs,
            }
        },
    )
}

/// Read-only view of the verifier state a check worker needs: the main
/// arena, the failure-variable allocation, and the executed flow groups.
pub struct CheckCtx<'a> {
    /// The main arena, shared immutably across the pool.
    pub m: &'a Mtbdd,
    /// Failure variables (for decoding violating paths into scenarios).
    pub fv: &'a FailureVars,
    /// Per-group symbolic traffic functions (handles of `m`).
    pub results: &'a [FlowStf],
    /// The flow groups, parallel to `results`.
    pub groups: &'a [FlowGroup],
    /// Group contributions link-locally by STF handle (§5.3).
    pub use_link_local_equiv: bool,
    /// Apply KREDUCE throughout (the fused kernel when aggregating).
    pub use_kreduce: bool,
    /// The failure budget.
    pub k: u32,
}

/// The verdict for one requirement, tagged with its index in the TLP.
pub struct CheckUnit {
    /// Index of the requirement in `tlp.reqs`.
    pub req_ix: usize,
    /// Violations found for it (at most one unless enumerating).
    pub violations: Vec<Violation>,
    /// Aggregation statistics of its load point (Figs. 13/14 data).
    pub agg: AggStats,
    /// Wall-clock the worker spent aggregating and scanning it, in
    /// microseconds.
    pub wall_us: u64,
    /// Net growth of the worker's private arena while processing it.
    pub nodes_delta: i64,
}

/// The result of one check worker: its verdicts and its private arena's
/// final statistics (the arena itself is dropped — violations are plain
/// data, no handles escape).
pub struct CheckShard {
    /// One entry per requirement this worker checked, in ascending
    /// `req_ix` order by construction.
    pub units: Vec<CheckUnit>,
    /// Statistics of the worker's private arena.
    pub stats: MtbddStats,
}

/// Checks `reqs` across `workers` threads (round-robin by requirement
/// index). The main arena is frozen once; each worker opens a zero-copy
/// overlay on the shared frozen base and allocates only its private
/// result nodes. With `max_violations <= 1` each unit carries at most
/// the first (fewest-failure) violation, exactly like
/// [`check_requirement`]; larger values enumerate per requirement like
/// [`enumerate_violations`].
///
/// The returned violations are bit-identical to what the sequential
/// checker produces for the same requirements (see the module docs).
///
/// # Panics
/// Propagates panics from worker threads (including audit failures when
/// `YU_AUDIT=1`).
pub fn check_sharded(
    ctx: &CheckCtx<'_>,
    reqs: &[TlpReq],
    max_violations: usize,
    workers: usize,
) -> Vec<CheckShard> {
    let workers = workers.clamp(1, reqs.len().max(1));
    let t_freeze = Instant::now();
    let frozen = ctx.m.freeze();
    yu_telemetry::counter("check.freeze_us", t_freeze.elapsed().as_micros() as u64);
    let frozen = &frozen;
    run_worker_pool(
        workers,
        |w| format!("check-worker-{w}"),
        "check.worker",
        move |w| {
            let mut m = Mtbdd::with_base(frozen);
            let mut units = Vec::new();
            for (ix, req) in reqs.iter().enumerate().skip(w).step_by(workers) {
                units.push(check_unit(ctx, &mut m, ix, req, max_violations));
            }
            CheckShard {
                units,
                stats: m.stats(),
            }
        },
    )
}

/// Aggregates and checks one requirement in the worker overlay `m`.
///
/// The link-local classing walks `(results, groups)` in group order
/// against main-arena handles — the same first-seen class order and the
/// same volume sums as the sequential `load_with_stats`. The class
/// representatives are then used directly (the overlay resolves base
/// handles) and combined with the fused n-ary `Σ∘KREDUCE` kernel.
fn check_unit(
    ctx: &CheckCtx<'_>,
    m: &mut Mtbdd,
    ix: usize,
    req: &TlpReq,
    max_violations: usize,
) -> CheckUnit {
    let point = req.point;
    let _stage = yu_telemetry::span_detail("aggregate", || format!("{point:?}"));
    let t_unit = Instant::now();
    let nodes_before = m.stats().nodes_created as i64;
    let zero = ctx.m.zero();
    let mut classes: Vec<(usize, Ratio)> = Vec::new();
    let mut flows = 0usize;
    let mut by_stf: HashMap<NodeRef, usize> = HashMap::new();
    for (gi, (stf, g)) in ctx.results.iter().zip(ctx.groups).enumerate() {
        let handle = stf.at(ctx.m, point);
        if handle == zero || g.volume.is_zero() {
            continue;
        }
        flows += 1;
        if ctx.use_link_local_equiv {
            match by_stf.entry(handle) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    classes[*e.get()].1 += &g.volume;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(classes.len());
                    classes.push((gi, g.volume.clone()));
                }
            }
        } else {
            classes.push((gi, g.volume.clone()));
        }
    }
    let agg = AggStats {
        flows,
        classes: classes.len(),
    };
    let k = ctx.use_kreduce.then_some(ctx.k);
    let mut level: Vec<NodeRef> = Vec::with_capacity(classes.len());
    for (rep, vol) in classes {
        // Base handles are valid in the overlay: no import, no copy.
        let src = ctx.results[rep].at(ctx.m, point);
        let scaled = match k {
            Some(k) => m.scale_kreduce(src, Term::Num(vol), k),
            None => m.scale(src, Term::Num(vol)),
        };
        level.push(scaled);
    }
    let tau = match k {
        // The n-ary fused kernel materializes βₖ(Σ) directly — no
        // pairwise partial sums ever hit the arena.
        Some(k) => m.sum_kreduce(&level, k),
        None => {
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    next.push(if pair.len() == 2 {
                        m.add(pair[0], pair[1])
                    } else {
                        pair[0]
                    });
                }
                level = next;
            }
            level.pop().unwrap_or_else(|| m.zero())
        }
    };
    let violations = if max_violations <= 1 {
        check_requirement(m, ctx.fv, tau, req, ctx.k)
            .into_iter()
            .collect()
    } else {
        enumerate_violations(m, ctx.fv, tau, req, ctx.k, max_violations)
    };
    CheckUnit {
        req_ix: ix,
        violations,
        agg,
        wall_us: t_unit.elapsed().as_micros() as u64,
        nodes_delta: m.stats().nodes_created as i64 - nodes_before,
    }
}
