//! Sharded parallel symbolic execution (§5 is embarrassingly parallel
//! across flows).
//!
//! Every flow group's symbolic traffic function is built independently
//! before loads are summed per link, so execution shards cleanly: flow
//! groups are dealt round-robin across a pool of OS threads, and **each
//! worker owns a private [`Mtbdd`] arena** — no locks, no contended
//! unique tables, no sharing of apply caches. A worker allocates its own
//! failure variables (deterministically identical to the main arena's,
//! because [`FailureVars::allocate`] is a pure function of topology and
//! mode), recomputes the guarded routing state locally, executes its
//! share of the flows with per-worker `KREDUCE`, and hands back its
//! arena plus per-flow STFs. The caller then imports the results into
//! the main arena with [`yu_mtbdd::Mtbdd::import`] in *flow order*, so
//! the merged state is independent of thread scheduling.
//!
//! Per-worker `KREDUCE` before the merge is sound: k-failure equivalence
//! is a congruence under pointwise `+`, `min`, and `max` (Lemma 2 /
//! Theorem 5.1 of the paper), so reducing each worker's partial diagrams
//! and reducing the merged sum yields the same verification verdicts as
//! reducing only the final sum.

use crate::equivalence::FlowGroup;
use crate::exec::{simulate_flow, ExecOptions, FlowStf};
use yu_mtbdd::Mtbdd;
use yu_net::{FailureMode, FailureVars, Network};
use yu_routing::SymbolicRoutes;

/// The result of one worker: its private arena and the symbolic traffic
/// functions it produced, tagged with the global flow-group index.
pub struct Shard {
    /// The worker's private arena. All [`FlowStf`] handles in
    /// [`Shard::stfs`] live here until imported.
    pub arena: Mtbdd,
    /// `(global group index, STF)` pairs, in this worker's execution
    /// order (ascending group index by construction).
    pub stfs: Vec<(usize, FlowStf)>,
}

/// Executes `groups` across `workers` threads, each with a private arena
/// and locally recomputed routing state.
///
/// Sharding is deterministic (round-robin by group index), and so is
/// each shard's content; only wall-clock interleaving varies between
/// runs. Returns one [`Shard`] per worker, indexed by worker id.
///
/// # Panics
/// Propagates panics from worker threads (including audit failures when
/// `YU_AUDIT=1`).
pub fn execute_sharded(
    net: &Network,
    mode: FailureMode,
    routes_k: Option<u32>,
    groups: &[FlowGroup],
    opts: ExecOptions,
    workers: usize,
) -> Vec<Shard> {
    let workers = workers.clamp(1, groups.len().max(1));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    // Each worker records into its own thread-local
                    // telemetry buffer (its own trace track); the flush
                    // before returning makes the buffer visible to the
                    // main thread's snapshot without any contention
                    // during execution.
                    yu_telemetry::set_thread_track(format!("worker-{w}"));
                    let shard = {
                        let _stage = yu_telemetry::span("exec.worker");
                        let mut m = Mtbdd::new();
                        let fv = FailureVars::allocate(&mut m, &net.topo, mode);
                        let mut routes = SymbolicRoutes::compute(&mut m, net, &fv, routes_k);
                        let mut stfs = Vec::new();
                        for (ix, g) in groups.iter().enumerate().skip(w).step_by(workers) {
                            let stf = simulate_flow(&mut m, net, &fv, &mut routes, &g.rep, opts);
                            stfs.push((ix, stf));
                        }
                        Shard { arena: m, stfs }
                    };
                    yu_telemetry::flush_thread();
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("symbolic execution worker panicked"))
            .collect()
    })
}
