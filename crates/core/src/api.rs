//! The high-level YU verifier API.
//!
//! ```text
//! let mut yu = YuVerifier::new(network, YuOptions { k: 2, ..Default::default() });
//! yu.add_flows(&flows);
//! let outcome = yu.verify(&tlp);
//! ```
//!
//! `YuVerifier` owns the MTBDD manager, the failure variables, the guarded
//! routing state, and the per-flow-group symbolic traffic fractions; it
//! implements the full pipeline of the paper's Fig. 2 — symbolic route
//! simulation, symbolic traffic execution with k-failure MTBDD reduction,
//! link-local flow-equivalence aggregation, and terminal-scan TLP checking
//! with counterexample extraction.

use crate::attribution::{flow_label, req_label, Attribution, EntityCost, PhaseAttribution};
use crate::equivalence::{global_groups_classified, AggStats, FlowGroup};
use crate::exec::{simulate_flow, simulate_flow_traced, ExecOptions, FlowStf};
use crate::parallel::{check_sharded, execute_sharded, CheckCtx, CheckUnit};
use crate::trace::RouteTrace;
use crate::verify::{check_requirement, Violation};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use yu_mtbdd::{ImportMemo, Mtbdd, MtbddStats, NodeRef, Ratio, Term};
use yu_net::{FailureMode, FailureVars, Flow, LoadPoint, Network, Scenario, Tlp};
use yu_routing::SymbolicRoutes;

/// Configuration of a verification run.
#[derive(Debug, Clone, Copy)]
pub struct YuOptions {
    /// Maximum number of simultaneous failures to verify against.
    pub k: u32,
    /// What can fail (links, routers, or both).
    pub mode: FailureMode,
    /// Apply KREDUCE throughout (disable only for the Fig. 15/16 ablation).
    pub use_kreduce: bool,
    /// Use link-local flow-equivalence aggregation (§5.3).
    pub use_link_local_equiv: bool,
    /// Group globally equivalent flows before execution (§6).
    pub use_global_equiv: bool,
    /// Stop at the first violation instead of collecting one per point.
    pub early_stop: bool,
    /// TTL bound of symbolic traffic execution.
    pub max_hops: usize,
    /// Garbage-collect the MTBDD arena whenever it grows by this many
    /// nodes beyond the live set (0 disables GC). Aggregating per-link
    /// loads creates large transient diagrams (the paper's Fig. 18
    /// blow-up); collecting between links bounds the working set.
    pub gc_node_threshold: usize,
    /// Worker threads for symbolic traffic execution. `1` runs the
    /// classic sequential engine on the shared arena; `> 1` shards flow
    /// groups across threads with private arenas (see
    /// [`crate::parallel`]) and imports the results back in flow order,
    /// so outcomes are independent of both thread count and scheduling.
    /// Defaults to `YU_WORKERS` when set, else 1.
    pub workers: usize,
    /// Worker threads for the property-checking stage. `1` aggregates and
    /// scans every load point sequentially on the shared arena; `> 1`
    /// shards requirements across threads (see
    /// [`crate::parallel::check_sharded`]) — the main arena is frozen
    /// once and every worker opens a zero-copy overlay on it, combining
    /// the per-point equivalence-class representatives with the fused
    /// n-ary `Σ∘KREDUCE` kernel. Results are bit-identical to a
    /// sequential check. Defaults to `YU_CHECK_WORKERS` when set, else 1.
    pub check_workers: usize,
    /// Treat [`YuOptions::check_workers`] as a *cap* instead of a fixed
    /// count: before the check stage, a cost model estimates the
    /// symbolic work per requirement (node counts of the distinct
    /// equivalence-class representatives at each load point) and
    /// degrades to a sequential check when the sharded work cannot pay
    /// for freezing the arena and spawning threads. Observer-only for
    /// verdicts — only wall-clock changes. `yu verify` enables this by
    /// default (`--check-workers auto`); off by default in the API.
    pub check_workers_auto: bool,
    /// Run the semantic preflight analyzer before the check stage and
    /// skip requirements it proves safe (see [`yu_analysis::bounds`]).
    /// Pruning is sound — only requirements that hold in *every* ≤ k
    /// scenario are skipped, so verdicts and violations are
    /// bit-identical to an unpruned run — and each discharge carries a
    /// machine-checkable certificate (re-validated under `YU_AUDIT` or
    /// `debug_assertions`). Disable with `--no-static-prune` for the
    /// differential suite and ablations.
    pub static_prune: bool,
    /// Record the routing-state queries each flow group's execution
    /// depends on (a [`crate::trace::RouteTrace`] per group). Costs a
    /// little memory and time per execution; required by the incremental
    /// engine ([`crate::delta::IncrementalVerifier`]), which replays the
    /// traces after a routing change to decide which groups to
    /// re-execute. Off by default for batch runs.
    pub record_route_deps: bool,
    /// Capture per-entity performance attribution (see
    /// [`crate::attribution`]): wall time and arena node-growth deltas
    /// per flow group and per requirement, plus arena level/cache
    /// profiles, carried by [`RunStats::attribution`]. Observer-only —
    /// verdicts are bit-identical with profiling on or off. Set by
    /// `yu profile` and `yu verify --profile-out`; off by default.
    pub profile: bool,
}

/// The default worker count: the `YU_WORKERS` environment variable when
/// set to a positive integer, else 1 (sequential). Latched once per
/// process, like the `YU_AUDIT` gate.
pub fn default_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("YU_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or(1)
    })
}

/// The default check-stage worker count: the `YU_CHECK_WORKERS`
/// environment variable when set to a positive integer, else 1
/// (sequential). Latched once per process, like [`default_workers`].
pub fn default_check_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("YU_CHECK_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or(1)
    })
}

/// Fixed-cost estimate (in arena nodes) charged per check worker by the
/// `--check-workers auto` cost model: thread spawn plus the cold overlay
/// caches a worker has to re-warm. Small networks fall below it and run
/// sequentially; the acceptance workloads clear it comfortably.
const AUTO_SETUP_NODES_PER_WORKER: usize = 25_000;

impl Default for YuOptions {
    fn default() -> Self {
        YuOptions {
            k: 1,
            mode: FailureMode::Links,
            use_kreduce: true,
            use_link_local_equiv: true,
            use_global_equiv: true,
            early_stop: false,
            max_hops: yu_net::DEFAULT_MAX_HOPS,
            gc_node_threshold: 4_000_000,
            workers: default_workers(),
            check_workers: default_check_workers(),
            check_workers_auto: false,
            static_prune: true,
            record_route_deps: false,
            profile: false,
        }
    }
}

/// Wall-clock and size statistics of a run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Time spent in symbolic route simulation.
    pub route_time: Duration,
    /// Time spent in symbolic traffic execution.
    pub exec_time: Duration,
    /// Time spent aggregating loads and checking TLPs.
    pub check_time: Duration,
    /// Flows added (before global grouping).
    pub flows_in: usize,
    /// Flow groups executed symbolically.
    pub flow_groups: usize,
    /// Requirements discharged by the static preflight analyzer (never
    /// reached the symbolic check stage). Zero when pruning is off.
    pub reqs_pruned: usize,
    /// MTBDD manager statistics after the run (main arena).
    pub mtbdd: MtbddStats,
    /// Cumulative statistics of every worker arena of parallel execution
    /// (all-zero for sequential runs).
    pub mtbdd_workers: MtbddStats,
    /// Per-point aggregation statistics (flows vs equivalence classes) —
    /// the data behind Figs. 13 and 14.
    pub per_point: HashMap<LoadPoint, AggStats>,
    /// Telemetry digest of the run (stage timings, counters, derived
    /// cache rates). `None` unless telemetry was enabled (`YU_TRACE`,
    /// `YU_METRICS`, or `yu_telemetry::set_enabled`).
    pub telemetry: Option<yu_telemetry::TelemetrySummary>,
    /// Per-entity performance attribution (flows, requirements, arena
    /// levels and caches). `None` unless [`YuOptions::profile`] was set.
    pub attribution: Option<Attribution>,
}

/// Outcome of verifying one TLP.
#[derive(Debug, Clone)]
pub struct VerificationOutcome {
    /// Violations found (at most one per requirement; empty = verified).
    pub violations: Vec<Violation>,
    /// Statistics of this run.
    pub stats: RunStats,
}

impl VerificationOutcome {
    /// Whether the TLP holds under all `≤ k`-failure scenarios.
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The YU verifier: symbolic state for one network plus executed flows.
pub struct YuVerifier {
    pub(crate) m: Mtbdd,
    pub(crate) net: Network,
    pub(crate) fv: FailureVars,
    pub(crate) routes: SymbolicRoutes,
    pub(crate) opts: YuOptions,
    pub(crate) groups: Vec<FlowGroup>,
    pub(crate) results: Vec<FlowStf>,
    /// Per-group route-dependency traces, parallel to `results`.
    /// `Some` iff the group was executed with `record_route_deps`.
    pub(crate) traces: Vec<Option<RouteTrace>>,
    pub(crate) flows_in: usize,
    pub(crate) route_time: Duration,
    pub(crate) exec_time: Duration,
    pub(crate) load_cache: HashMap<LoadPoint, (NodeRef, AggStats)>,
    live_after_gc: usize,
    pub(crate) worker_stats: MtbddStats,
    /// Combined arena statistics already forwarded to the telemetry
    /// counters, so repeated `verify` calls emit deltas, not re-counts.
    telemetry_reported: MtbddStats,
    /// Same high-water mark for the process-lifetime metrics registry,
    /// tracked separately because the registry is on even when span
    /// telemetry is off (and vice versa).
    registry_reported: MtbddStats,
    /// Per-flow-group execution costs, accumulated across `add_flows`
    /// calls. Empty unless `opts.profile`.
    exec_attr: PhaseAttribution,
    /// Per-flow-group import costs of parallel execution (main-arena
    /// growth while copying worker results back). Empty unless
    /// `opts.profile` and `workers > 1`.
    import_attr: PhaseAttribution,
    /// Per-requirement check costs of the verify call in flight; built
    /// by the check loops, consumed (and cleared) by `finish_outcome`.
    check_attr: PhaseAttribution,
    /// Inner nodes the symbolic route simulation left in the arena.
    route_nodes: u64,
}

impl YuVerifier {
    /// Builds the verifier: allocates failure variables and runs symbolic
    /// route simulation (guarded RIBs and SR policies).
    pub fn new(net: Network, opts: YuOptions) -> YuVerifier {
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, opts.mode);
        let t0 = Instant::now();
        let k = opts.use_kreduce.then_some(opts.k);
        let routes = {
            let _stage = yu_telemetry::span("route_sim");
            SymbolicRoutes::compute(&mut m, &net, &fv, k)
        };
        let route_time = t0.elapsed();
        let route_nodes = m.stats().nodes_created as u64;
        let yu = YuVerifier {
            m,
            net,
            fv,
            routes,
            opts,
            groups: Vec::new(),
            results: Vec::new(),
            traces: Vec::new(),
            flows_in: 0,
            route_time,
            exec_time: Duration::ZERO,
            load_cache: HashMap::new(),
            live_after_gc: 0,
            worker_stats: MtbddStats::default(),
            telemetry_reported: MtbddStats::default(),
            registry_reported: MtbddStats::default(),
            exec_attr: PhaseAttribution::default(),
            import_attr: PhaseAttribution::default(),
            check_attr: PhaseAttribution::default(),
            route_nodes,
        };
        yu.audit_checkpoint("after symbolic route simulation");
        yu
    }

    /// Audits the MTBDD manager against every live root this verifier
    /// holds (routing guards, flow STFs, cached per-point loads). Cheap
    /// enough for tests; see [`yu_mtbdd::AuditReport`].
    pub fn audit(&self) -> yu_mtbdd::AuditReport {
        self.m.audit(&self.live_roots(true))
    }

    /// Every live root this verifier holds: routing guards, flow STFs,
    /// route-dependency traces, and (when `include_load_cache`) the
    /// cached per-point loads. The root set of GC, auditing, and the
    /// arena level profile.
    pub(crate) fn live_roots(&self, include_load_cache: bool) -> Vec<NodeRef> {
        let mut roots = Vec::new();
        self.routes.gc_roots(&mut roots);
        for stf in &self.results {
            stf.gc_roots(&mut roots);
        }
        for trace in self.traces.iter().flatten() {
            trace.gc_roots(&mut roots);
        }
        if include_load_cache {
            for &(tau, _) in self.load_cache.values() {
                roots.push(tau);
            }
        }
        roots
    }

    /// Runs [`Self::audit`] and panics on violations when auditing is
    /// enabled (`YU_AUDIT=1` or a `debug_assertions` build).
    pub(crate) fn audit_checkpoint(&self, context: &str) {
        if yu_mtbdd::audit_enabled() {
            let report = self.audit();
            if !report.ok() && yu_telemetry::events_enabled() {
                // Emit before assert_ok panics, so an operator tailing
                // the event log sees why the daemon died.
                yu_telemetry::emit_event(
                    yu_telemetry::EventLevel::Error,
                    "audit_failure",
                    vec![
                        ("context", serde::Value::Str(context.to_string())),
                        (
                            "violations",
                            serde::Value::Int(report.violations.len() as i128),
                        ),
                    ],
                );
            }
            report.assert_ok(context);
        }
    }

    /// Garbage-collects the MTBDD arena when it has outgrown the
    /// configured threshold, remapping all long-lived state (routing
    /// guards, flow STFs). Cached per-point loads are dropped.
    pub(crate) fn maybe_gc(&mut self, extra: &mut [NodeRef]) {
        let threshold = self.opts.gc_node_threshold;
        if threshold == 0 {
            return;
        }
        // Adaptive trigger: collect once the arena has grown past both
        // the configured threshold and twice the last live set, so GC
        // work stays amortized O(total allocation) instead of thrashing
        // when the live set is large.
        let created = self.m.stats().nodes_created;
        if created < (self.live_after_gc * 2).max(self.live_after_gc + threshold) {
            return;
        }
        let mut roots = self.live_roots(false);
        roots.extend(extra.iter().copied());
        let t_gc = Instant::now();
        let remap = self.m.collect(&roots);
        self.routes.remap(&remap);
        for stf in &mut self.results {
            stf.remap(&remap);
        }
        for trace in self.traces.iter_mut().flatten() {
            trace.remap(&remap);
        }
        for n in extra.iter_mut() {
            *n = remap.get(*n);
        }
        self.load_cache.clear();
        let live = self.m.live_nodes();
        if yu_telemetry::events_enabled() {
            yu_telemetry::emit_event(
                yu_telemetry::EventLevel::Info,
                "gc",
                vec![
                    ("nodes_before", serde::Value::Int(created as i128)),
                    ("nodes_after", serde::Value::Int(live as i128)),
                    (
                        "reclaimed",
                        serde::Value::Int(created.saturating_sub(live) as i128),
                    ),
                    (
                        "elapsed_us",
                        serde::Value::Int(t_gc.elapsed().as_micros() as i128),
                    ),
                ],
            );
        }
        self.live_after_gc = live;
    }

    /// The network being verified.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The options of this run.
    pub fn options(&self) -> YuOptions {
        self.opts
    }

    /// The failure-variable allocation (for decoding scenarios).
    pub fn failure_vars(&self) -> &FailureVars {
        &self.fv
    }

    /// Current MTBDD manager statistics.
    pub fn mtbdd_stats(&self) -> MtbddStats {
        self.m.stats()
    }

    /// Adds flows and runs symbolic traffic execution for each (group of)
    /// them. May be called repeatedly; loads are re-aggregated lazily.
    pub fn add_flows(&mut self, flows: &[Flow]) {
        self.flows_in += flows.len();
        let groups = if self.opts.use_global_equiv {
            global_groups_classified(&self.net, flows)
        } else {
            flows
                .iter()
                .map(|f| FlowGroup {
                    rep: f.clone(),
                    volume: f.volume.clone(),
                    members: 1,
                })
                .collect()
        };
        let exec_opts = ExecOptions {
            k: self.opts.use_kreduce.then_some(self.opts.k),
            max_hops: self.opts.max_hops,
        };
        let t0 = Instant::now();
        let exec_span = yu_telemetry::span("exec");
        yu_telemetry::with_registry(|r| r.flow_groups_executed_total.add(groups.len() as u64));
        let profile = self.opts.profile;
        if self.opts.workers > 1 && groups.len() > 1 {
            self.add_groups_parallel(groups, exec_opts);
        } else {
            let nodes_at_start = self.m.stats().nodes_created as i64;
            for g in groups {
                let t_flow = Instant::now();
                let nodes_before = self.m.stats().nodes_created as i64;
                let (stf, trace) = if self.opts.record_route_deps {
                    let (stf, trace) = simulate_flow_traced(
                        &mut self.m,
                        &self.net,
                        &self.fv,
                        &mut self.routes,
                        &g.rep,
                        exec_opts,
                    );
                    (stf, Some(trace))
                } else {
                    let stf = simulate_flow(
                        &mut self.m,
                        &self.net,
                        &self.fv,
                        &mut self.routes,
                        &g.rep,
                        exec_opts,
                    );
                    (stf, None)
                };
                let wall_us = t_flow.elapsed().as_micros() as u64;
                yu_telemetry::with_registry(|r| r.flow_exec_seconds.record(wall_us));
                if profile {
                    self.exec_attr.entities.push(EntityCost {
                        label: flow_label(&self.net, &g.rep, g.members),
                        wall_us,
                        nodes_delta: self.m.stats().nodes_created as i64 - nodes_before,
                    });
                }
                self.groups.push(g);
                self.results.push(stf);
                self.traces.push(trace);
            }
            if profile {
                self.exec_attr.nodes_delta += self.m.stats().nodes_created as i64 - nodes_at_start;
            }
        }
        drop(exec_span);
        let elapsed = t0.elapsed();
        if profile {
            self.exec_attr.wall_us += elapsed.as_micros() as u64;
        }
        self.exec_time += elapsed;
        self.load_cache.clear();
        self.audit_checkpoint("after symbolic traffic execution");
    }

    /// Sharded parallel execution of one `add_flows` batch: workers own
    /// private arenas (see [`crate::parallel`]); their per-point STFs are
    /// imported into the main arena here, walking groups in *flow order*
    /// and each STF's load points in sorted order, so the merged arena
    /// state is a pure function of the input — independent of worker
    /// count and thread scheduling.
    fn add_groups_parallel(&mut self, groups: Vec<FlowGroup>, exec_opts: ExecOptions) {
        let profile = self.opts.profile;
        let shards = execute_sharded(
            &self.net,
            self.opts.mode,
            self.routes.k(),
            &groups,
            exec_opts,
            self.opts.workers,
            self.opts.record_route_deps,
            profile,
        );
        // Group index -> (shard, position) ownership map.
        let mut owner: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX); groups.len()];
        for (si, shard) in shards.iter().enumerate() {
            for (pos, (ix, _, _)) in shard.stfs.iter().enumerate() {
                owner[*ix] = (si, pos);
            }
        }
        let mut memos: Vec<ImportMemo> = shards.iter().map(|_| ImportMemo::new()).collect();
        let import_span = yu_telemetry::span("import");
        let import_t0 = Instant::now();
        let nodes_at_start = self.m.stats().nodes_created as i64;
        for (ix, g) in groups.into_iter().enumerate() {
            let (si, pos) = owner[ix];
            let shard = &shards[si];
            let (_, stf, trace) = &shard.stfs[pos];
            let t_import = Instant::now();
            let nodes_before = self.m.stats().nodes_created as i64;
            let mut points: Vec<(LoadPoint, NodeRef)> =
                stf.loads.iter().map(|(&p, &n)| (p, n)).collect();
            points.sort_by_key(|&(p, _)| p);
            let mut loads = HashMap::with_capacity(points.len());
            for (p, src_ref) in points {
                loads.insert(p, self.m.import(&shard.arena, src_ref, &mut memos[si]));
            }
            let truncated = self.m.import(&shard.arena, stf.truncated, &mut memos[si]);
            let trace = trace.as_ref().map(|t| {
                let mut t = t.clone();
                t.import_into(&mut self.m, &shard.arena, &mut memos[si]);
                t
            });
            if profile {
                self.import_attr.entities.push(EntityCost {
                    label: flow_label(&self.net, &g.rep, g.members),
                    wall_us: t_import.elapsed().as_micros() as u64,
                    nodes_delta: self.m.stats().nodes_created as i64 - nodes_before,
                });
            }
            self.groups.push(g);
            self.results.push(FlowStf { loads, truncated });
            self.traces.push(trace);
        }
        if profile {
            self.import_attr.nodes_delta += self.m.stats().nodes_created as i64 - nodes_at_start;
            self.import_attr.wall_us += import_t0.elapsed().as_micros() as u64;
            // The exec phase of a parallel batch is the workers' private
            // arenas: per-flow entities (plus each worker's local route
            // recompute) telescoping to the summed worker-arena growth.
            for shard in &shards {
                self.exec_attr.entities.extend(shard.costs.iter().cloned());
                self.exec_attr.nodes_delta += shard.arena.stats().nodes_created as i64;
            }
        }
        drop(import_span);
        let (hits, misses) = memos
            .iter()
            .fold((0, 0), |(h, m), memo| (h + memo.hits(), m + memo.misses()));
        yu_telemetry::counter("import.memo_hits", hits);
        yu_telemetry::counter("import.memo_misses", misses);
        for shard in &shards {
            self.worker_stats.merge(&shard.arena.stats());
        }
    }

    /// The aggregated symbolic traffic load at `point`
    /// (`τ = Σ V_f · ω_f`, cached).
    ///
    /// The returned handle is only valid until the next call that may
    /// trigger garbage collection (any other `load_*` or `verify` call);
    /// evaluate or copy what you need before calling back in.
    pub fn load_mtbdd(&mut self, point: LoadPoint) -> NodeRef {
        self.load_with_stats(point).0
    }

    pub(crate) fn load_with_stats(&mut self, point: LoadPoint) -> (NodeRef, AggStats) {
        if let Some(&(tau, stats)) = self.load_cache.get(&point) {
            return (tau, stats);
        }
        let _stage = yu_telemetry::span_detail("aggregate", || format!("{point:?}"));
        self.maybe_gc(&mut []);
        // Group contributions link-locally (pointer equality of STFs,
        // Sec. 5.3), remembering a representative *result index* per
        // class instead of the raw handle so the loop below can garbage-
        // collect mid-aggregation and re-derive fresh handles.
        let mut classes: Vec<(usize, Ratio)> = Vec::new();
        let mut flows = 0usize;
        let mut by_stf: HashMap<NodeRef, usize> = HashMap::new();
        for (ix, (stf, g)) in self.results.iter().zip(&self.groups).enumerate() {
            let handle = stf.at(&self.m, point);
            if handle == self.m.zero() || g.volume.is_zero() {
                continue;
            }
            flows += 1;
            if self.opts.use_link_local_equiv {
                match by_stf.entry(handle) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        classes[*e.get()].1 += &g.volume;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(classes.len());
                        classes.push((ix, g.volume.clone()));
                    }
                }
            } else {
                classes.push((ix, g.volume.clone()));
            }
        }
        let stats = AggStats {
            flows,
            classes: classes.len(),
        };
        let k = self.opts.use_kreduce.then_some(self.opts.k);
        let mut level: Vec<NodeRef> = Vec::with_capacity(classes.len());
        for (rep, vol) in classes {
            let stf = self.results[rep].at(&self.m, point);
            // The fused kernels reduce during the apply, so the
            // un-reduced intermediates never hit the arena.
            let scaled = match k {
                Some(k) => self.m.scale_kreduce(stf, Term::Num(vol), k),
                None => self.m.scale(stf, Term::Num(vol)),
            };
            level.push(scaled);
            self.maybe_gc(&mut level);
        }
        let tau = match k {
            // The n-ary fused kernel materializes βₖ(Σ) directly: the
            // pairwise partial sums (the transients of the paper's
            // Fig. 18 blow-up) never hit the arena at all.
            Some(k) => self.m.sum_kreduce(&level, k),
            None => {
                // Exact (un-reduced) aggregation: balanced pairwise
                // accumulation with GC checkpoints keeps most additions
                // between small diagrams and bounds the arena.
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    for pair in level.chunks(2) {
                        next.push(if pair.len() == 2 {
                            self.m.add(pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    level = next;
                    self.maybe_gc(&mut level);
                }
                level.pop().unwrap_or_else(|| self.m.zero())
            }
        };
        self.load_cache.insert(point, (tau, stats));
        (tau, stats)
    }

    /// The concrete load at `point` under `scenario`, evaluated from the
    /// symbolic load.
    pub fn load_at(&mut self, point: LoadPoint, scenario: &Scenario) -> Ratio {
        let tau = self.load_mtbdd(point);
        match self.m.eval(tau, self.fv.assignment(scenario)) {
            Term::Num(v) => v,
            Term::PosInf => unreachable!("traffic loads are finite"),
        }
    }

    /// The worker count the check stage will actually use for `reqs`
    /// (after pruning): the configured `check_workers`, or — with
    /// [`YuOptions::check_workers_auto`] — the output of the cost model
    /// in [`Self::auto_check_workers`]. `1` means the sequential loop.
    fn effective_check_workers(&mut self, reqs: &[yu_net::TlpReq]) -> usize {
        if reqs.len() <= 1 || self.opts.check_workers <= 1 {
            return 1;
        }
        if !self.opts.check_workers_auto {
            return self.opts.check_workers;
        }
        self.auto_check_workers(reqs)
    }

    /// Estimated symbolic work of checking `reqs`, in nodes: for every
    /// requirement, the summed diagram sizes of the *distinct*
    /// equivalence-class representatives at its load point (each
    /// distinct handle is counted once per requirement that aggregates
    /// it — the unit of work the fused kernel walks). Node counts are
    /// memoized per handle, so the estimate costs one DFS per distinct
    /// live diagram, not per requirement.
    fn estimate_check_work(&self, reqs: &[yu_net::TlpReq]) -> usize {
        let zero = self.m.zero();
        let mut sizes: HashMap<NodeRef, usize> = HashMap::new();
        let mut work = 0usize;
        for req in reqs {
            let mut seen = std::collections::HashSet::new();
            for (stf, g) in self.results.iter().zip(&self.groups) {
                let handle = stf.at(&self.m, req.point);
                if handle == zero || g.volume.is_zero() {
                    continue;
                }
                if self.opts.use_link_local_equiv && !seen.insert(handle) {
                    continue;
                }
                let size = *sizes
                    .entry(handle)
                    .or_insert_with(|| self.m.node_count(handle));
                work += size;
            }
        }
        work
    }

    /// The cost model behind `--check-workers auto`: shards the check
    /// stage only when the estimated per-worker work can pay for the
    /// fixed setup (freezing the arena — a copy of the live node and
    /// slot tables — plus spawning the threads). Returns the worker
    /// count to use, degrading to `1` (and booking the
    /// `check.auto_degraded` telemetry counter) when sharding cannot
    /// pay. Purely a wall-clock decision: verdicts are bit-identical
    /// either way.
    pub fn auto_check_workers(&mut self, reqs: &[yu_net::TlpReq]) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cap = self.opts.check_workers.min(hw).min(reqs.len());
        if cap <= 1 {
            yu_telemetry::counter("check.auto_degraded", 1);
            return 1;
        }
        let work = self.estimate_check_work(reqs);
        // Freezing clones the live arena once; each worker costs a
        // thread spawn plus cold overlay caches, charged as if it were
        // re-deriving a slice of the arena.
        let setup = self.m.live_nodes() + AUTO_SETUP_NODES_PER_WORKER * cap;
        let workers = if work / cap >= setup { cap } else { 1 };
        yu_telemetry::counter("check.auto_workers", workers as u64);
        if workers == 1 {
            yu_telemetry::counter("check.auto_degraded", 1);
        }
        workers
    }

    /// Zeroes the per-run wall-clock and input counters (`route_time`,
    /// `exec_time`, `flows_in`). The incremental engine calls this at the
    /// start of every request so each [`RunStats`] reports that request's
    /// own work instead of accumulating across the daemon's lifetime.
    pub fn reset_run_counters(&mut self) {
        self.route_time = Duration::ZERO;
        self.exec_time = Duration::ZERO;
        self.flows_in = 0;
        self.exec_attr = PhaseAttribution::default();
        self.import_attr = PhaseAttribution::default();
    }

    /// The semantic preflight pass: classifies every requirement with
    /// the static analyzer and returns the ones the symbolic engine
    /// still has to check, plus the number discharged. Only
    /// `ProvenSafe` requirements are pruned — they hold in every ≤ k
    /// scenario, so dropping them changes neither the verdict nor the
    /// violations (proven-violated requirements still run: the report
    /// needs the engine's exact counterexample). When auditing is on,
    /// every discharge certificate is re-validated by its independent
    /// checker before the requirement is skipped.
    pub(crate) fn preflight_kept(&self, tlp: &Tlp) -> (Vec<yu_net::TlpReq>, usize) {
        if !self.opts.static_prune || tlp.reqs.is_empty() {
            return (tlp.reqs.clone(), 0);
        }
        let _stage = yu_telemetry::span("preflight");
        // Classify over the executed flow groups: a group's
        // representative forwards identically to all members and
        // carries the summed volume, so bounds over groups equal
        // bounds over the raw flows.
        let flows: Vec<Flow> = self
            .groups
            .iter()
            .map(|g| {
                let mut f = g.rep.clone();
                f.volume = g.volume.clone();
                f
            })
            .collect();
        let cfg = yu_analysis::PreflightConfig {
            k: self.opts.k,
            mode: self.opts.mode,
            max_hops: self.opts.max_hops,
        };
        let mut pf = yu_analysis::Preflight::new(&self.net, &flows, cfg);
        let (mut safe, mut violated, mut symbolic) = (0u64, 0u64, 0u64);
        let mut kept = Vec::with_capacity(tlp.reqs.len());
        for (ix, req) in tlp.reqs.iter().enumerate() {
            let classification = {
                let _s = yu_telemetry::span_detail("preflight.classify", || {
                    req.point.describe(&self.net.topo)
                });
                pf.classify_req(ix, req)
            };
            match classification.class {
                yu_analysis::ReqClass::ProvenSafe => {
                    if yu_mtbdd::audit_enabled() {
                        yu_analysis::check_certificate(
                            &self.net,
                            &flows,
                            req,
                            cfg,
                            &classification,
                        )
                        .unwrap_or_else(|e| {
                            panic!("preflight certificate failed its independent check: {e}")
                        });
                    }
                    safe += 1;
                }
                yu_analysis::ReqClass::ProvenViolated => {
                    violated += 1;
                    kept.push(req.clone());
                }
                yu_analysis::ReqClass::NeedsSymbolic => {
                    symbolic += 1;
                    kept.push(req.clone());
                }
            }
        }
        yu_telemetry::counter("preflight.proven_safe", safe);
        yu_telemetry::counter("preflight.proven_violated", violated);
        yu_telemetry::counter("preflight.needs_symbolic", symbolic);
        (kept, safe as usize)
    }

    /// Sharded parallel checking of one TLP's requirements: workers own
    /// private arenas (see [`crate::parallel::check_sharded`]), read the
    /// main arena immutably, and return plain-data verdicts. The merge
    /// walks units in requirement order, so the outcome is bit-identical
    /// to the sequential loop — independent of worker count and
    /// scheduling. With `max_violations <= 1` and `early_stop`, the
    /// result is truncated to the prefix the sequential loop would have
    /// produced (the extra verdicts past the first violation are
    /// discarded, not returned).
    fn check_parallel(
        &mut self,
        reqs: &[yu_net::TlpReq],
        max_violations: usize,
        workers: usize,
    ) -> (Vec<Violation>, HashMap<LoadPoint, AggStats>) {
        let shards = {
            let ctx = CheckCtx {
                m: &self.m,
                fv: &self.fv,
                results: &self.results,
                groups: &self.groups,
                use_link_local_equiv: self.opts.use_link_local_equiv,
                use_kreduce: self.opts.use_kreduce,
                k: self.opts.k,
            };
            check_sharded(&ctx, reqs, max_violations, workers)
        };
        let mut units: Vec<CheckUnit> = Vec::with_capacity(reqs.len());
        for shard in shards {
            self.worker_stats.merge(&shard.stats);
            if self.opts.profile {
                // The check phase of a sharded run is the workers'
                // private arenas; each one telescopes from empty, so the
                // per-unit deltas sum exactly to the summed worker growth.
                self.check_attr.nodes_delta += shard.stats.nodes_created as i64;
            }
            units.extend(shard.units);
        }
        units.sort_by_key(|u| u.req_ix);
        yu_telemetry::with_registry(|r| {
            for u in &units {
                r.req_check_seconds.record(u.wall_us);
            }
        });
        if self.opts.profile {
            // Attribute every unit the workers processed, including any
            // past an early-stop cut — the work was done either way.
            for u in &units {
                self.check_attr.entities.push(EntityCost {
                    label: req_label(&self.net, &reqs[u.req_ix]),
                    wall_us: u.wall_us,
                    nodes_delta: u.nodes_delta,
                });
            }
        }
        let cut = if max_violations <= 1 && self.opts.early_stop {
            units.iter().position(|u| !u.violations.is_empty())
        } else {
            None
        };
        let take = cut.map_or(units.len(), |i| i + 1);
        let mut violations = Vec::new();
        let mut per_point = HashMap::new();
        for u in units.into_iter().take(take) {
            per_point.insert(reqs[u.req_ix].point, u.agg);
            violations.extend(u.violations);
        }
        (violations, per_point)
    }

    /// Verifies a TLP, returning violations (empty = property holds under
    /// every scenario with at most `k` failures) and run statistics.
    pub fn verify(&mut self, tlp: &Tlp) -> VerificationOutcome {
        let t0 = Instant::now();
        let verify_span = yu_telemetry::span("verify");
        let (kept, pruned) = self.preflight_kept(tlp);
        let check_workers = self.effective_check_workers(&kept);
        let (violations, per_point) = if check_workers > 1 {
            self.check_parallel(&kept, 1, check_workers)
        } else {
            let mut violations = Vec::new();
            let mut per_point = HashMap::new();
            let profile = self.opts.profile;
            let nodes_at_start = self.m.stats().nodes_created as i64;
            for req in &kept {
                let t_req = Instant::now();
                let nodes_before = self.m.stats().nodes_created as i64;
                let (tau, stats) = self.load_with_stats(req.point);
                per_point.insert(req.point, stats);
                let v = check_requirement(&mut self.m, &self.fv, tau, req, self.opts.k);
                let wall_us = t_req.elapsed().as_micros() as u64;
                yu_telemetry::with_registry(|r| r.req_check_seconds.record(wall_us));
                if profile {
                    self.check_attr.entities.push(EntityCost {
                        label: req_label(&self.net, req),
                        wall_us,
                        nodes_delta: self.m.stats().nodes_created as i64 - nodes_before,
                    });
                }
                if let Some(v) = v {
                    violations.push(v);
                    if self.opts.early_stop {
                        break;
                    }
                }
            }
            if profile {
                self.check_attr.nodes_delta += self.m.stats().nodes_created as i64 - nodes_at_start;
            }
            (violations, per_point)
        };
        drop(verify_span);
        self.finish_outcome(violations, per_point, t0.elapsed(), pruned)
    }

    /// Like [`Self::verify`], but collects up to `max_violations`
    /// distinct violating scenarios *per requirement* instead of just the
    /// first counterexample. The combined list is deduped on
    /// `(point, scenario)` and sorted by failure count, then point, then
    /// scenario, so the cheapest triggers lead and the output is stable.
    /// `max_violations <= 1` is exactly [`Self::verify`].
    pub fn verify_enumerated(&mut self, tlp: &Tlp, max_violations: usize) -> VerificationOutcome {
        if max_violations <= 1 {
            return self.verify(tlp);
        }
        let t0 = Instant::now();
        let verify_span = yu_telemetry::span("verify");
        let (kept, pruned) = self.preflight_kept(tlp);
        let check_workers = self.effective_check_workers(&kept);
        let (mut violations, per_point) = if check_workers > 1 {
            self.check_parallel(&kept, max_violations, check_workers)
        } else {
            let mut violations: Vec<Violation> = Vec::new();
            let mut per_point = HashMap::new();
            let profile = self.opts.profile;
            let nodes_at_start = self.m.stats().nodes_created as i64;
            for req in &kept {
                let t_req = Instant::now();
                let nodes_before = self.m.stats().nodes_created as i64;
                let (tau, stats) = self.load_with_stats(req.point);
                per_point.insert(req.point, stats);
                let vs = crate::verify::enumerate_violations(
                    &mut self.m,
                    &self.fv,
                    tau,
                    req,
                    self.opts.k,
                    max_violations,
                );
                let wall_us = t_req.elapsed().as_micros() as u64;
                yu_telemetry::with_registry(|r| r.req_check_seconds.record(wall_us));
                if profile {
                    self.check_attr.entities.push(EntityCost {
                        label: req_label(&self.net, req),
                        wall_us,
                        nodes_delta: self.m.stats().nodes_created as i64 - nodes_before,
                    });
                }
                violations.extend(vs);
            }
            if profile {
                self.check_attr.nodes_delta += self.m.stats().nodes_created as i64 - nodes_at_start;
            }
            (violations, per_point)
        };
        let mut seen = std::collections::HashSet::new();
        violations.retain(|v| seen.insert((v.point, v.scenario.clone())));
        violations.sort_by(|a, b| {
            (a.scenario.count(), a.point, &a.scenario).cmp(&(
                b.scenario.count(),
                b.point,
                &b.scenario,
            ))
        });
        drop(verify_span);
        self.finish_outcome(violations, per_point, t0.elapsed(), pruned)
    }

    /// Shared tail of `verify`/`verify_enumerated`: audits, bridges
    /// telemetry, and assembles the outcome with run statistics.
    pub(crate) fn finish_outcome(
        &mut self,
        violations: Vec<Violation>,
        per_point: HashMap<LoadPoint, AggStats>,
        check_time: Duration,
        reqs_pruned: usize,
    ) -> VerificationOutcome {
        self.audit_checkpoint("after TLP check");
        self.registry_bridge(check_time, reqs_pruned, per_point.len());
        let telemetry = self.telemetry_summary();
        let attribution = self.opts.profile.then(|| {
            let mut check = std::mem::take(&mut self.check_attr);
            check.wall_us = check_time.as_micros() as u64;
            Attribution {
                route_nodes: self.route_nodes,
                exec: self.exec_attr.clone(),
                import: self.import_attr.clone(),
                check,
                levels: self.m.level_profile(&self.live_roots(true)),
                caches: self.m.cache_profiles(),
                engine: self.m.engine_profile(),
            }
        });
        VerificationOutcome {
            violations,
            stats: RunStats {
                route_time: self.route_time,
                exec_time: self.exec_time,
                check_time,
                flows_in: self.flows_in,
                flow_groups: self.groups.len(),
                reqs_pruned,
                mtbdd: self.m.stats(),
                mtbdd_workers: self.worker_stats,
                per_point,
                telemetry,
                attribution,
            },
        }
    }

    /// Bridges per-run statistics into the process-lifetime metrics
    /// registry: run/requirement totals, stage latency histograms, the
    /// point-in-time arena gauges, and deltas of the cumulative arena
    /// counters (against what earlier runs already recorded, mirroring
    /// [`Self::telemetry_summary`] but tracked separately because the
    /// registry and the span collector are gated independently). The
    /// registry is an observer only — nothing here feeds back into
    /// verification, so registry-on/off runs stay bit-identical.
    fn registry_bridge(&mut self, check_time: Duration, reqs_pruned: usize, reqs_checked: usize) {
        if !yu_telemetry::registry_enabled() {
            return;
        }
        let r = yu_telemetry::registry();
        r.verify_runs_total.inc();
        r.reqs_checked_total.add(reqs_checked as u64);
        r.reqs_pruned_total.add(reqs_pruned as u64);
        r.stage_route_seconds
            .record(self.route_time.as_micros() as u64);
        r.stage_exec_seconds
            .record(self.exec_time.as_micros() as u64);
        r.stage_check_seconds.record(check_time.as_micros() as u64);
        let live = self.m.live_nodes() as u64;
        r.mtbdd_live_nodes.set_u64(live);
        r.mtbdd_live_nodes_hist.record(live);
        r.mtbdd_unique_table_load_factor
            .set(self.m.unique_table_load_factor());
        r.mtbdd_arena_bytes.set_u64(self.m.arena_bytes() as u64);
        let mut combined = self.m.stats();
        combined.merge(&self.worker_stats);
        let prev = self.registry_reported;
        r.mtbdd_apply_cache_hits_total.add(
            combined
                .apply_cache_hits
                .saturating_sub(prev.apply_cache_hits),
        );
        r.mtbdd_apply_cache_misses_total.add(
            combined
                .apply_cache_misses
                .saturating_sub(prev.apply_cache_misses),
        );
        r.mtbdd_fused_cache_hits_total.add(
            combined
                .fused_cache_hits
                .saturating_sub(prev.fused_cache_hits),
        );
        r.mtbdd_fused_cache_misses_total.add(
            combined
                .fused_cache_misses
                .saturating_sub(prev.fused_cache_misses),
        );
        r.mtbdd_gc_runs_total
            .add(combined.gc_runs.saturating_sub(prev.gc_runs));
        r.mtbdd_gc_reclaimed_nodes_total.add(
            combined
                .gc_reclaimed_nodes
                .saturating_sub(prev.gc_reclaimed_nodes),
        );
        if let Some(rate) = combined.apply_cache_hit_rate() {
            r.mtbdd_apply_cache_hit_rate.set(rate);
        }
        if let Some(rate) = combined.fused_cache_hit_rate() {
            r.mtbdd_fused_cache_hit_rate.set(rate);
        }
        self.registry_reported = combined;
    }

    /// Bridges arena statistics into the telemetry counters (as deltas
    /// against what earlier `verify` calls already reported) and returns
    /// the digest of everything recorded so far. `None` when telemetry is
    /// disabled.
    fn telemetry_summary(&mut self) -> Option<yu_telemetry::TelemetrySummary> {
        if !yu_telemetry::enabled() {
            return None;
        }
        let mut combined = self.m.stats();
        combined.merge(&self.worker_stats);
        let prev = self.telemetry_reported;
        yu_telemetry::counter(
            "mtbdd.apply_cache_hits",
            combined
                .apply_cache_hits
                .saturating_sub(prev.apply_cache_hits),
        );
        yu_telemetry::counter(
            "mtbdd.apply_cache_misses",
            combined
                .apply_cache_misses
                .saturating_sub(prev.apply_cache_misses),
        );
        yu_telemetry::counter(
            "mtbdd.fused_cache_hits",
            combined
                .fused_cache_hits
                .saturating_sub(prev.fused_cache_hits),
        );
        yu_telemetry::counter(
            "mtbdd.fused_cache_misses",
            combined
                .fused_cache_misses
                .saturating_sub(prev.fused_cache_misses),
        );
        yu_telemetry::counter(
            "mtbdd.gc_runs",
            combined.gc_runs.saturating_sub(prev.gc_runs),
        );
        yu_telemetry::counter(
            "mtbdd.gc_reclaimed_nodes",
            combined
                .gc_reclaimed_nodes
                .saturating_sub(prev.gc_reclaimed_nodes),
        );
        yu_telemetry::gauge_max("mtbdd.unique_table_peak", combined.unique_table_peak as u64);
        self.telemetry_reported = combined;
        Some(yu_telemetry::snapshot().summary())
    }

    /// Enumerates every violating `≤ k` scenario for one requirement (up
    /// to `limit`), not just the first counterexample.
    pub fn enumerate_violations(&mut self, req: &yu_net::TlpReq, limit: usize) -> Vec<Violation> {
        let (tau, _) = self.load_with_stats(req.point);
        let k = self.opts.k;
        crate::verify::enumerate_violations(&mut self.m, &self.fv, tau, req, k, limit)
    }

    /// Convenience: verifies "no directed link exceeds `fraction` of its
    /// capacity".
    pub fn verify_no_overload(&mut self, fraction: Ratio) -> VerificationOutcome {
        let tlp = Tlp::no_overload(&self.net.topo, fraction);
        self.verify(&tlp)
    }

    /// Direct access to the per-group symbolic results (for tests and the
    /// figure harness), in deterministic order: sorted by the
    /// representative flow's identity `(ingress, dst, dscp, src)`, not by
    /// insertion or hash order, so iteration is stable across `add_flows`
    /// batching, input permutations, and worker counts.
    pub fn flow_results(&self) -> impl Iterator<Item = (&FlowGroup, &FlowStf)> {
        let mut order: Vec<usize> = (0..self.groups.len()).collect();
        order.sort_by_key(|&i| {
            let f = &self.groups[i].rep;
            (f.ingress, f.dst, f.dscp, f.src)
        });
        order
            .into_iter()
            .map(move |i| (&self.groups[i], &self.results[i]))
    }

    /// Mutable access to the manager (tests and the figure harness only).
    pub fn manager_mut(&mut self) -> &mut Mtbdd {
        &mut self.m
    }

    /// Immutable access to the manager.
    pub fn manager(&self) -> &Mtbdd {
        &self.m
    }
}
