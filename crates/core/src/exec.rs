//! Symbolic traffic execution (paper §4, Algorithms 1 and 2).
//!
//! The forwarding of one flow is treated as a program whose input is the
//! failure state of every link/router. Execution maintains a frontier
//! matrix `M[(router, label stack)] → STF` (symbolic traffic fraction, an
//! MTBDD) and iterates hop by hop:
//!
//! * plain IP traffic looks up the guarded FIB, applies the route
//!   selection encoding `s_r = g_r ∧ ⋀_{r'≺r} ¬g_{r'}` and the ECMP
//!   encoding `c_r = s_r / Σ s_{r'}` (§4.4), and follows each rule;
//! * recursive next hops run route iteration: either a matching SR policy
//!   (weighted split `c_p = g_p·w_p / Σ g_{p'}·w_{p'}` and a label stack
//!   push) or the IGP vector `V^IGP`;
//! * labeled traffic pops segments owned by the current router and is
//!   otherwise forwarded toward the top segment via `V^IGP` (Fig. 7).
//!
//! The per-link symbolic traffic fraction is the sum of the frontier
//! contributions across hops (a link can be crossed at different hop
//! counts by ECMP paths of unequal length). Execution ends when no traffic
//! propagates or at the TTL bound. Traffic that is blackholed, has no
//! route, or loses its SR tunnels accumulates in per-router `Dropped`
//! pseudo-sinks; locally delivered traffic in `Delivered` — both are
//! ordinary [`LoadPoint`]s so "delivered load must not drop" (P1) is just
//! another TLP.
//!
//! With `k = Some(budget)` every accumulated MTBDD is passed through
//! `KREDUCE`, which keeps diagram sizes `O(n^k)`-shaped (§5.2); Theorem
//! 5.1 guarantees verification results are unaffected.

use crate::trace::{fib_answer, RouteTrace, TraceAnswer, TraceQuery};
use std::collections::HashMap;
use std::rc::Rc;
use yu_mtbdd::{Mtbdd, NodeRef, Op};
use yu_net::Proto;
use yu_net::{FailureVars, Flow, Ipv4, LinkId, LoadPoint, Network, RouterId};
use yu_routing::{class_partition, NextHop, Rule, SymbolicRoutes};

/// Options for symbolic traffic execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// KREDUCE budget (`None` disables the reduction — the Fig. 15/16
    /// ablation).
    pub k: Option<u32>,
    /// Maximum hop count (the TTL bound of Algorithm 1).
    pub max_hops: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            k: None,
            max_hops: yu_net::DEFAULT_MAX_HOPS,
        }
    }
}

/// The symbolic traffic fractions of one flow: an MTBDD per load point,
/// plus the fraction still in flight when the TTL bound was hit
/// (non-zero only under transient forwarding loops).
#[derive(Debug, Clone)]
pub struct FlowStf {
    /// STF per load point (links crossed, delivered, dropped).
    pub loads: HashMap<LoadPoint, NodeRef>,
    /// Traffic still propagating at the TTL bound.
    pub truncated: NodeRef,
}

impl FlowStf {
    /// The STF at `point` (zero if the flow never touches it).
    pub fn at(&self, m: &Mtbdd, point: LoadPoint) -> NodeRef {
        self.loads.get(&point).copied().unwrap_or_else(|| m.zero())
    }

    /// Collects the handles of every per-point STF (for GC).
    pub fn gc_roots(&self, out: &mut Vec<NodeRef>) {
        out.extend(self.loads.values().copied());
        out.push(self.truncated);
    }

    /// Translates handles after a collection.
    pub fn remap(&mut self, remap: &yu_mtbdd::Remap) {
        for v in self.loads.values_mut() {
            *v = remap.get(*v);
        }
        self.truncated = remap.get(self.truncated);
    }
}

/// Interned label stacks (the paper bounds their number by the total SR
/// path length, so interning keeps the frontier keys cheap).
#[derive(Default)]
struct StackTable {
    stacks: Vec<Vec<Ipv4>>,
    ids: HashMap<Vec<Ipv4>, u32>,
}

impl StackTable {
    fn intern(&mut self, stack: Vec<Ipv4>) -> u32 {
        if let Some(&id) = self.ids.get(&stack) {
            return id;
        }
        let id = self.stacks.len() as u32;
        self.ids.insert(stack.clone(), id);
        self.stacks.push(stack);
        id
    }

    fn get(&self, id: u32) -> &[Ipv4] {
        &self.stacks[id as usize]
    }
}

/// Runs symbolic traffic execution for one flow (Algorithm 1).
pub fn simulate_flow(
    m: &mut Mtbdd,
    net: &Network,
    fv: &FailureVars,
    routes: &mut SymbolicRoutes,
    flow: &Flow,
    opts: ExecOptions,
) -> FlowStf {
    let _stage = yu_telemetry::span_detail("exec.flow", || {
        format!("ingress r{} -> {:?}", flow.ingress.0, flow.dst)
    });
    let mut exec = Exec {
        m,
        net,
        fv,
        routes,
        flow,
        opts,
        stacks: StackTable::default(),
        loads: HashMap::new(),
        trace: None,
    };
    exec.run()
}

/// Like [`simulate_flow`], additionally recording every routing-state
/// query the execution issued. Replaying the returned [`RouteTrace`]
/// against a changed routing state decides whether the STF can be reused
/// (see [`crate::trace`]).
pub fn simulate_flow_traced(
    m: &mut Mtbdd,
    net: &Network,
    fv: &FailureVars,
    routes: &mut SymbolicRoutes,
    flow: &Flow,
    opts: ExecOptions,
) -> (FlowStf, RouteTrace) {
    let _stage = yu_telemetry::span_detail("exec.flow", || {
        format!("ingress r{} -> {:?} (traced)", flow.ingress.0, flow.dst)
    });
    let mut trace = RouteTrace::new();
    let mut exec = Exec {
        m,
        net,
        fv,
        routes,
        flow,
        opts,
        stacks: StackTable::default(),
        loads: HashMap::new(),
        trace: Some(&mut trace),
    };
    let stf = exec.run();
    (stf, trace)
}

struct Exec<'a> {
    m: &'a mut Mtbdd,
    net: &'a Network,
    fv: &'a FailureVars,
    routes: &'a mut SymbolicRoutes,
    flow: &'a Flow,
    opts: ExecOptions,
    stacks: StackTable,
    loads: HashMap<LoadPoint, NodeRef>,
    /// When set, every routing-state query is recorded here.
    trace: Option<&'a mut RouteTrace>,
}

impl<'a> Exec<'a> {
    /// Recording wrappers around the five routing-state query kinds. All
    /// queries are deterministic per key, so recording the first
    /// occurrence captures the full dependency.
    fn q_alive(&mut self, router: RouterId) -> NodeRef {
        let g = self.fv.router_alive(self.m, router);
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(TraceQuery::Alive(router), || TraceAnswer::Alive(g));
        }
        g
    }

    fn q_owns(&mut self, router: RouterId, ip: Ipv4) -> bool {
        let owned = self.routes.owns(self.net, router, ip);
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(TraceQuery::Owns(router, ip), || TraceAnswer::Owns(owned));
        }
        owned
    }

    fn q_vigp(&mut self, router: RouterId, nip: Ipv4) -> Vec<(LinkId, NodeRef)> {
        let shares = self.routes.vigp(self.m, self.net, self.fv, router, nip);
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(TraceQuery::Vigp(router, nip), || {
                TraceAnswer::Vigp(shares.clone())
            });
        }
        shares
    }

    fn q_fib(&mut self, router: RouterId) -> (Rc<Vec<Rule>>, bool) {
        let rules = self
            .routes
            .fib_rules(self.m, self.net, self.fv, router, self.flow.dst);
        let multipath = self.net.bgp(router).map(|b| b.multipath).unwrap_or(true);
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(TraceQuery::Fib(router, self.flow.dst), || {
                fib_answer(&rules, multipath)
            });
        }
        (rules, multipath)
    }

    fn q_sr(&mut self, router: RouterId, nip: Ipv4) -> Option<yu_routing::GuardedSrPolicy> {
        let pol = self.routes.sr_policy(router, nip, self.flow.dscp).cloned();
        if let Some(t) = self.trace.as_deref_mut() {
            let snap = pol.as_ref().map(|p| {
                p.paths
                    .iter()
                    .map(|g| (g.segments.clone(), g.weight, g.guard))
                    .collect()
            });
            t.record(TraceQuery::Sr(router, nip, self.flow.dscp), || {
                TraceAnswer::Sr(snap)
            });
        }
        pol
    }
    fn reduce(&mut self, f: NodeRef) -> NodeRef {
        match self.opts.k {
            Some(k) => self.m.kreduce(f, k),
            None => f,
        }
    }

    fn accumulate(&mut self, point: LoadPoint, amount: NodeRef) {
        if amount == self.m.zero() {
            return;
        }
        let cur = self
            .loads
            .get(&point)
            .copied()
            .unwrap_or_else(|| self.m.zero());
        let sum = self.m.add(cur, amount);
        let sum = self.reduce(sum);
        self.loads.insert(point, sum);
    }

    fn run(&mut self) -> FlowStf {
        let empty = self.stacks.intern(Vec::new());
        let mut frontier: HashMap<(RouterId, u32), NodeRef> = HashMap::new();
        let ingress_alive = self.q_alive(self.flow.ingress);
        if ingress_alive != self.m.zero() {
            frontier.insert((self.flow.ingress, empty), ingress_alive);
        }
        for _hop in 0..self.opts.max_hops {
            if frontier.is_empty() {
                break;
            }
            let mut next: HashMap<(RouterId, u32), NodeRef> = HashMap::new();
            // Deterministic processing order for reproducible runs.
            let mut work: Vec<((RouterId, u32), NodeRef)> = frontier.drain().collect();
            work.sort_by_key(|(k, _)| *k);
            for ((router, stack_id), amount) in work {
                let stack = self.stacks.get(stack_id).to_vec();
                self.step(router, &stack, amount, &mut next);
            }
            frontier = next;
        }
        let leftovers: Vec<NodeRef> = frontier.values().copied().collect();
        let truncated = self.m.sum(&leftovers);
        FlowStf {
            loads: std::mem::take(&mut self.loads),
            truncated,
        }
    }

    /// Forwards `amount` of the flow at `router` carrying `stack`
    /// (the paper's `forward` / `forwardSr` / `forwardIp`).
    fn step(
        &mut self,
        router: RouterId,
        stack: &[Ipv4],
        amount: NodeRef,
        next: &mut HashMap<(RouterId, u32), NodeRef>,
    ) {
        // Pop every leading segment owned by this router (forwardSr line
        // 17-18).
        let mut stack = stack;
        while let Some((&top, rest)) = stack.split_first() {
            if self.q_owns(router, top) {
                stack = rest;
            } else {
                break;
            }
        }
        let mut emitted = self.m.zero();
        if let Some(&top) = stack.first() {
            // Labeled traffic: toward the top segment via V^IGP.
            let shares = self.q_vigp(router, top);
            for (l, share) in shares {
                let q = self.m.mul(amount, share);
                let q = self.reduce(q);
                self.emit(l, stack.to_vec(), q, next);
                emitted = self.m.add(emitted, q);
            }
        } else {
            let delivered_and_emitted = self.forward_ip(router, amount, next);
            emitted = delivered_and_emitted;
        }
        // Residual accounting: whatever was neither forwarded nor
        // delivered is dropped here (Null0, no route, dead tunnels, ...).
        let dropped = self.m.apply(Op::Sub, amount, emitted);
        let dropped = self.reduce(dropped);
        self.accumulate(LoadPoint::Dropped(router), dropped);
    }

    /// `forwardIp` (Algorithm 2): guarded FIB lookup, route selection,
    /// ECMP, per-rule forwarding. Returns the consumed fraction
    /// (delivered + emitted on links).
    fn forward_ip(
        &mut self,
        router: RouterId,
        amount: NodeRef,
        next: &mut HashMap<(RouterId, u32), NodeRef>,
    ) -> NodeRef {
        let (rules, multipath) = self.q_fib(router);
        let sel = selection_guards(self.m, &rules, multipath);
        let total = self.m.sum(&sel);
        let mut consumed = self.m.zero();
        for (rule, s) in rules.iter().zip(&sel) {
            if *s == self.m.zero() {
                continue;
            }
            // ECMP share c_r = s_r / Σ s_{r'} (the denominator counts the
            // selected rules of the active class in each scenario).
            let c = self.m.apply(Op::Div, *s, total);
            let share = self.m.mul(amount, c);
            let share = self.reduce(share);
            if share == self.m.zero() {
                continue;
            }
            match rule.next_hop {
                NextHop::Receive => {
                    self.accumulate(LoadPoint::Delivered(router), share);
                    consumed = self.m.add(consumed, share);
                }
                NextHop::Null0 => {
                    // Falls into the dropped residual of `step`.
                }
                NextHop::Direct(l) => {
                    self.emit(l, Vec::new(), share, next);
                    consumed = self.m.add(consumed, share);
                }
                NextHop::Ip(nip) => {
                    let done = self.resolve_nh(router, nip, share, next);
                    consumed = self.m.add(consumed, done);
                }
            }
        }
        consumed
    }

    /// `resolveNhIp` (Algorithm 2): SR policy steering or IGP route
    /// iteration. Returns the fraction successfully forwarded.
    fn resolve_nh(
        &mut self,
        router: RouterId,
        nip: Ipv4,
        amount: NodeRef,
        next: &mut HashMap<(RouterId, u32), NodeRef>,
    ) -> NodeRef {
        let mut emitted = self.m.zero();
        let policy = self.q_sr(router, nip);
        if let Some(pol) = policy {
            // c_p = g_p * w_p / Σ g_{p'} * w_{p'}
            let weighted: Vec<NodeRef> = pol
                .paths
                .iter()
                .map(|p| self.m.scale(p.guard, yu_mtbdd::Term::int(p.weight as i64)))
                .collect();
            let total = self.m.sum(&weighted);
            for (p, wg) in pol.paths.iter().zip(&weighted) {
                let c = self.m.apply(Op::Div, *wg, total);
                let share = self.m.mul(amount, c);
                let share = self.reduce(share);
                if share == self.m.zero() {
                    continue;
                }
                let first = p.segments[0];
                if self.q_owns(router, first) {
                    // Degenerate headend-owns-first-segment case: process
                    // the stack immediately at this router.
                    self.step(router, &p.segments, share, next);
                    emitted = self.m.add(emitted, share);
                    continue;
                }
                let shares = self.q_vigp(router, first);
                for (l, lshare) in shares {
                    let q = self.m.mul(share, lshare);
                    let q = self.reduce(q);
                    self.emit(l, p.segments.clone(), q, next);
                    emitted = self.m.add(emitted, q);
                }
            }
        } else {
            let shares = self.q_vigp(router, nip);
            for (l, share) in shares {
                let q = self.m.mul(amount, share);
                let q = self.reduce(q);
                self.emit(l, Vec::new(), q, next);
                emitted = self.m.add(emitted, q);
            }
        }
        emitted
    }

    fn emit(
        &mut self,
        l: yu_net::LinkId,
        stack: Vec<Ipv4>,
        q: NodeRef,
        next: &mut HashMap<(RouterId, u32), NodeRef>,
    ) {
        if q == self.m.zero() {
            return;
        }
        self.accumulate(LoadPoint::Link(l), q);
        let to = self.net.topo.link(l).to;
        let sid = self.stacks.intern(stack);
        let cur = next
            .get(&(to, sid))
            .copied()
            .unwrap_or_else(|| self.m.zero());
        let sum = self.m.add(cur, q);
        let sum = self.reduce(sum);
        next.insert((to, sid), sum);
    }
}

/// Route selection guards over a pre-sorted rule list (paper §4.4):
/// `s_r = g_r ∧ ¬(any rule of a strictly preferred class present)`.
/// With `multipath` disabled, BGP rules within one class additionally
/// block lower-tie rules.
pub fn selection_guards(m: &mut Mtbdd, rules: &[Rule], multipath: bool) -> Vec<NodeRef> {
    let mut out = vec![m.zero(); rules.len()];
    let mut better = m.zero();
    for class in class_partition(rules) {
        let is_bgp = matches!(rules[class.start].proto, Proto::Ebgp | Proto::Ibgp);
        let mut class_present = m.zero();
        let mut within = m.zero(); // earlier-tie presence, for no-multipath
        for i in class.clone() {
            let g = rules[i].guard;
            let mut blocked = better;
            if is_bgp && !multipath {
                blocked = m.or(blocked, within);
                within = m.or(within, g);
            }
            let not_blocked = m.not(blocked);
            out[i] = m.and(g, not_blocked);
            class_present = m.or(class_present, g);
        }
        better = m.or(better, class_present);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_mtbdd::{Ratio, Term};
    use yu_net::{BgpConfig, FailureMode, Prefix, Scenario, Topology, ULinkId};

    /// A(AS100) -- B(AS300) == C(AS300, dest): B-C is a 2-link bundle; B
    /// and C run IS-IS + iBGP, C originates 100.0.0.0/24.
    fn bundle_net() -> (Network, [RouterId; 3]) {
        let mut t = Topology::new();
        let cap = Ratio::int(100);
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 300);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 300);
        t.add_link(a, b, 10, cap.clone()); // u0
        t.add_link(b, c, 10, cap.clone()); // u1
        t.add_link(b, c, 10, cap.clone()); // u2
        let mut net = Network::new(t);
        for r in [a, b, c] {
            net.config_mut(r).bgp = Some(BgpConfig::default());
        }
        for r in [b, c] {
            net.config_mut(r).isis_enabled = true;
        }
        let p: Prefix = "100.0.0.0/24".parse().unwrap();
        net.config_mut(c).connected.push(p);
        net.config_mut(c).bgp.as_mut().unwrap().networks = vec![p];
        (net, [a, b, c])
    }

    fn setup(net: &Network) -> (Mtbdd, FailureVars, SymbolicRoutes) {
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let routes = SymbolicRoutes::compute(&mut m, net, &fv, None);
        (m, fv, routes)
    }

    #[test]
    fn ecmp_over_parallel_links_and_failover() {
        let (net, [a, _b, c]) = bundle_net();
        let (mut m, fv, mut routes) = setup(&net);
        let flow = Flow::new(
            a,
            Ipv4::new(11, 0, 0, 1),
            "100.0.0.9".parse().unwrap(),
            0,
            Ratio::int(80),
        );
        let stf = simulate_flow(
            &mut m,
            &net,
            &fv,
            &mut routes,
            &flow,
            ExecOptions::default(),
        );

        // Delivered fully at C with no failures.
        let d = stf.at(&m, LoadPoint::Delivered(c));
        assert_eq!(m.eval_all_alive(d), Term::ONE);

        // Each bundle member carries 1/2 via iBGP nexthop resolution.
        let (l1, _) = net.topo.directions(ULinkId(1));
        let (l2, _) = net.topo.directions(ULinkId(2));
        let f1 = stf.at(&m, LoadPoint::Link(l1));
        let f2 = stf.at(&m, LoadPoint::Link(l2));
        assert_eq!(m.eval_all_alive(f1), Term::ratio(1, 2));
        assert_eq!(m.eval_all_alive(f2), Term::ratio(1, 2));

        // One bundle link down: the survivor carries 100%.
        let s = Scenario::links([ULinkId(1)]);
        assert_eq!(m.eval(f1, fv.assignment(&s)), Term::ZERO);
        assert_eq!(m.eval(f2, fv.assignment(&s)), Term::ONE);
        assert_eq!(m.eval(d, fv.assignment(&s)), Term::ONE);

        // Both down: dropped at B (no route once BGP withdraws)... A-B
        // still delivers traffic to B? No: B's iBGP route from C needs IGP
        // reachability; both links down => session down => B has no route,
        // so A never learns one either: traffic dies at A.
        let s = Scenario::links([ULinkId(1), ULinkId(2)]);
        assert_eq!(m.eval(d, fv.assignment(&s)), Term::ZERO);
        let dropped_a = stf.at(&m, LoadPoint::Dropped(a));
        assert_eq!(m.eval(dropped_a, fv.assignment(&s)), Term::ONE);
        assert_eq!(m.eval_all_alive(dropped_a), Term::ZERO);
        assert_eq!(m.eval_all_alive(stf.truncated), Term::ZERO);
    }

    #[test]
    fn kreduce_execution_matches_exact_on_small_scenarios() {
        let (net, [a, _, c]) = bundle_net();
        let (mut m, fv, mut routes) = setup(&net);
        let flow = Flow::new(
            a,
            Ipv4::new(11, 0, 0, 1),
            "100.0.0.9".parse().unwrap(),
            0,
            Ratio::int(80),
        );
        let exact = simulate_flow(
            &mut m,
            &net,
            &fv,
            &mut routes,
            &flow,
            ExecOptions::default(),
        );
        let mut routes2 = SymbolicRoutes::compute(&mut m, &net, &fv, Some(1));
        let reduced = simulate_flow(
            &mut m,
            &net,
            &fv,
            &mut routes2,
            &flow,
            ExecOptions {
                k: Some(1),
                max_hops: 64,
            },
        );
        for u in net.topo.ulinks() {
            let s = Scenario::links([u]);
            let de = m.eval(exact.at(&m, LoadPoint::Delivered(c)), fv.assignment(&s));
            let dr = m.eval(reduced.at(&m, LoadPoint::Delivered(c)), fv.assignment(&s));
            assert_eq!(de, dr, "delivered mismatch under {s:?}");
            for l in net.topo.links() {
                let fe = m.eval(exact.at(&m, LoadPoint::Link(l)), fv.assignment(&s));
                let fr = m.eval(reduced.at(&m, LoadPoint::Link(l)), fv.assignment(&s));
                assert_eq!(fe, fr, "link {l:?} mismatch under {s:?}");
            }
        }
    }

    #[test]
    fn selection_guards_respect_class_order() {
        let mut m = Mtbdd::new();
        let v = m.fresh_var();
        let g = m.var_guard(v);
        let one = m.one();
        let mk = |proto: Proto, tie: u32, guard: NodeRef| Rule {
            prefix: "10.0.0.0/8".parse().unwrap(),
            proto,
            next_hop: NextHop::Null0,
            local_pref: if matches!(proto, Proto::Ebgp | Proto::Ibgp) {
                100
            } else {
                0
            },
            as_path_len: 0,
            tie,
            guard,
        };
        let mut rules = vec![mk(Proto::Static, 0, g), mk(Proto::Ebgp, 1, one)];
        yu_routing::sort_rules(&mut rules);
        let sel = selection_guards(&mut m, &rules, true);
        // Static (admin 1) blocks eBGP when present.
        assert_eq!(m.eval_all_alive(sel[0]), Term::ONE);
        assert_eq!(m.eval_all_alive(sel[1]), Term::ZERO);
        assert_eq!(m.eval(sel[1], |_| false), Term::ONE);
    }

    #[test]
    fn no_multipath_blocks_within_class() {
        let mut m = Mtbdd::new();
        let v = m.fresh_var();
        let g = m.var_guard(v);
        let one = m.one();
        let mk = |tie: u32, guard: NodeRef| Rule {
            prefix: "10.0.0.0/8".parse().unwrap(),
            proto: Proto::Ebgp,
            next_hop: NextHop::Null0,
            local_pref: 100,
            as_path_len: 1,
            tie,
            guard,
        };
        let rules = vec![mk(0, g), mk(1, one)];
        let sel = selection_guards(&mut m, &rules, false);
        // Lowest tie wins when present; the other is used as fallback.
        assert_eq!(m.eval_all_alive(sel[0]), Term::ONE);
        assert_eq!(m.eval_all_alive(sel[1]), Term::ZERO);
        assert_eq!(m.eval(sel[1], |_| false), Term::ONE);
        // With multipath both are selected where both present.
        let sel = selection_guards(&mut m, &rules, true);
        assert_eq!(m.eval_all_alive(sel[0]), Term::ONE);
        assert_eq!(m.eval_all_alive(sel[1]), Term::ONE);
    }
}
