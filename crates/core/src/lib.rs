//! # yu-core
//!
//! The YU algorithm (SIGCOMM 2024): verification of traffic load
//! properties under arbitrary `k` failures via **symbolic traffic
//! execution** over guarded routing state, with **k-failure-equivalence
//! MTBDD reduction** and **link-local flow-equivalence** aggregation.
//!
//! Pipeline (paper Fig. 2):
//!
//! 1. `yu-routing` computes guarded RIBs and SR policies (symbolic route
//!    simulation);
//! 2. [`exec::simulate_flow`] symbolically executes each flow's
//!    forwarding, producing a symbolic traffic fraction MTBDD per link
//!    (plus delivered/dropped pseudo-sinks), KREDUCE-d at every step;
//! 3. [`equivalence::aggregate_load`] sums flow fractions into per-link
//!    symbolic traffic loads, collapsing link-local equivalent flows;
//! 4. [`verify::check_requirement`] scans the reduced load's terminals
//!    (Theorem 5.1) and extracts a concrete counterexample scenario from
//!    the violating path.
//!
//! [`YuVerifier`] wires the pipeline together behind one API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod attribution;
pub mod delta;
pub mod equivalence;
pub mod exec;
pub mod explain;
pub mod parallel;
pub mod trace;
pub mod verify;

pub use api::{
    default_check_workers, default_workers, RunStats, VerificationOutcome, YuOptions, YuVerifier,
};
pub use attribution::{Attribution, EntityCost, PhaseAttribution};
pub use delta::{DeltaStats, IncrementalVerifier};
pub use equivalence::{
    aggregate_load, global_groups, global_groups_classified, AggStats, FlowGroup,
};
pub use exec::{selection_guards, simulate_flow, simulate_flow_traced, ExecOptions, FlowStf};
pub use explain::{
    explanation_dot, trace_flow, Explanation, FlowBlame, FlowPathDiff, PathOutcome, PointEnvelope,
    ReplayCheck, TracedPath, MAX_TRACED_PATHS,
};
pub use parallel::{check_sharded, execute_sharded, CheckCtx, CheckShard, CheckUnit, Shard};
pub use trace::{RouteTrace, TraceAnswer, TraceQuery};
pub use verify::{check_requirement, check_tlp, enumerate_violations, Violation};
