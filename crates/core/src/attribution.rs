//! Per-entity performance attribution: which flow, which requirement,
//! which variable level the nodes and the milliseconds actually go to.
//!
//! The stage timings in [`crate::RunStats`] say *that* execution took
//! 4 s; the ROADMAP's engine-overhaul work needs to know *which flow*
//! took them, and whether the arena growth came from execution, import,
//! or aggregation. When [`crate::YuOptions::profile`] is set, the
//! verifier captures an [`EntityCost`] around every unit of work — one
//! per flow group at `exec.flow` / worker import, one per requirement
//! at aggregate+check — and assembles them into an [`Attribution`]
//! carried by [`crate::RunStats`].
//!
//! **Reconciliation invariant.** Within a phase, the per-entity node
//! deltas are measured back-to-back in the same arena, so they
//! telescope: their sum equals the phase-wide delta *exactly*, GC or
//! not (a collection mid-entity makes that entity's delta negative, but
//! the sum still matches). With GC disabled and sequential workers the
//! phase deltas further reconcile with the final arena statistics:
//! `route_nodes + exec.nodes_delta + check.nodes_delta =
//! stats.mtbdd.nodes_created`. Both identities are asserted by
//! `tests/attribution.rs` and the CI profile smoke step.
//!
//! Capture is observer-only — wall clocks and already-maintained node
//! counters — so profiled runs are bit-identical to plain runs
//! (`tests/telemetry_differential.rs`).

use serde::Serialize;
use yu_mtbdd::{CacheProfile, EngineProfile, LevelProfile};

/// The cost attributed to one spec entity (a flow group, a
/// requirement, or a worker's route recompute).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EntityCost {
    /// Human-readable entity label (`flow A->10.0.0.1/dscp0`,
    /// `req link A-B`, `worker-3 route_sim`).
    pub label: String,
    /// Wall-clock spent on this entity, in microseconds.
    pub wall_us: u64,
    /// Net inner-node growth of the arena that did the work while this
    /// entity was processed. Negative when a GC ran mid-entity.
    pub nodes_delta: i64,
}

/// Every [`EntityCost`] of one pipeline phase plus the phase-wide
/// totals the entities must reconcile with.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PhaseAttribution {
    /// Per-entity costs, in processing order.
    pub entities: Vec<EntityCost>,
    /// Phase wall-clock, in microseconds.
    pub wall_us: u64,
    /// Phase-wide net arena growth (sum of per-entity deltas; for
    /// parallel phases, summed across the worker arenas).
    pub nodes_delta: i64,
}

impl PhaseAttribution {
    /// Sum of the per-entity node deltas (must equal
    /// [`PhaseAttribution::nodes_delta`]).
    pub fn entity_nodes_sum(&self) -> i64 {
        self.entities.iter().map(|e| e.nodes_delta).sum()
    }

    /// Sum of the per-entity wall clocks, in microseconds.
    pub fn entity_wall_sum(&self) -> u64 {
        self.entities.iter().map(|e| e.wall_us).sum()
    }

    /// The entities sorted by wall-clock, most expensive first,
    /// truncated to `top` (0 = all).
    pub fn top_by_wall(&self, top: usize) -> Vec<&EntityCost> {
        let mut sorted: Vec<&EntityCost> = self.entities.iter().collect();
        sorted.sort_by(|a, b| b.wall_us.cmp(&a.wall_us).then(a.label.cmp(&b.label)));
        if top > 0 {
            sorted.truncate(top);
        }
        sorted
    }
}

/// The full attribution of one verification run, carried by
/// [`crate::RunStats::attribution`] when profiling is on.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Attribution {
    /// Inner nodes the symbolic route simulation left in the main
    /// arena (the pre-exec baseline of the reconciliation identity).
    pub route_nodes: u64,
    /// Per-flow-group symbolic execution costs. Sequential runs
    /// measure the main arena; parallel runs measure each worker's
    /// private arena and include one `worker-N route_sim` entity per
    /// worker for its local route recompute.
    pub exec: PhaseAttribution,
    /// Per-flow-group import costs (main-arena growth while copying
    /// worker results back). Empty for sequential runs.
    pub import: PhaseAttribution,
    /// Per-requirement aggregate+check costs. Sequential checking
    /// measures the main arena; sharded checking measures the private
    /// worker arenas.
    pub check: PhaseAttribution,
    /// Live-node histogram per variable level, over every root the
    /// verifier holds after the run (routing state, flow STFs, cached
    /// loads).
    pub levels: LevelProfile,
    /// Apply/fused operation-cache profiles of the main arena.
    pub caches: Vec<CacheProfile>,
    /// Kernel recursion-depth maxima (all-zero unless
    /// `YU_ENGINE_PROFILE` was on when the arena was built).
    pub engine: EngineProfile,
}

impl Attribution {
    /// Whether every phase's entity deltas telescope to its phase
    /// total — the invariant the capture sites guarantee.
    pub fn reconciles(&self) -> bool {
        [&self.exec, &self.import, &self.check]
            .iter()
            .all(|p| p.entity_nodes_sum() == p.nodes_delta)
    }
}

/// Label helper: one flow group.
pub(crate) fn flow_label(net: &yu_net::Network, f: &yu_net::Flow, members: usize) -> String {
    let ingress = &net.topo.router(f.ingress).name;
    if members > 1 {
        format!("flow {}->{}/dscp{} (x{})", ingress, f.dst, f.dscp, members)
    } else {
        format!("flow {}->{}/dscp{}", ingress, f.dst, f.dscp)
    }
}

/// Label helper: one requirement.
pub(crate) fn req_label(net: &yu_net::Network, req: &yu_net::TlpReq) -> String {
    format!("req {}", req.point.describe(&net.topo))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(label: &str, wall_us: u64, nodes_delta: i64) -> EntityCost {
        EntityCost {
            label: label.into(),
            wall_us,
            nodes_delta,
        }
    }

    #[test]
    fn phase_sums_and_top() {
        let phase = PhaseAttribution {
            entities: vec![cost("a", 5, 10), cost("b", 9, -3), cost("c", 9, 4)],
            wall_us: 30,
            nodes_delta: 11,
        };
        assert_eq!(phase.entity_nodes_sum(), 11);
        assert_eq!(phase.entity_wall_sum(), 23);
        let top = phase.top_by_wall(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].label, "b", "ties break on label");
        assert_eq!(top[1].label, "c");
        assert_eq!(phase.top_by_wall(0).len(), 3);
    }

    #[test]
    fn reconciliation_checks_every_phase() {
        let good = Attribution {
            exec: PhaseAttribution {
                entities: vec![cost("a", 1, 7)],
                nodes_delta: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(good.reconciles());
        let mut bad = good.clone();
        bad.check.nodes_delta = 1; // no entities sum to 1
        assert!(!bad.reconciles());
    }
}
