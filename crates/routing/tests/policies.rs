//! Routing-policy integration tests: local preference, export filters,
//! multipath toggles, and symbolic-vs-concrete RIB agreement.

use yu_mtbdd::{Mtbdd, Ratio, Term};
use yu_net::{
    BgpConfig, DenyExport, FailureMode, FailureVars, Ipv4, Network, Prefix, RouterId, Scenario,
    Topology, ULinkId,
};
use yu_routing::{BgpState, ClassId, ConcreteRoutes, IgpState, NextHop, SymbolicRoutes};

/// R (receiver) dual-homed to P1 and P2, both in distinct ASes, both
/// originating the same prefix.
fn dual_homed(lp_p2: Option<u32>) -> (Network, [RouterId; 3]) {
    let mut t = Topology::new();
    let cap = Ratio::int(100);
    let r = t.add_router("R", Ipv4::new(10, 0, 0, 1), 100);
    let p1 = t.add_router("P1", Ipv4::new(10, 0, 0, 2), 200);
    let p2 = t.add_router("P2", Ipv4::new(10, 0, 0, 3), 300);
    t.add_link(r, p1, 10, cap.clone()); // u0
    t.add_link(r, p2, 10, cap.clone()); // u1
    let mut net = Network::new(t);
    let prefix: Prefix = "50.0.0.0/24".parse().unwrap();
    for x in [r, p1, p2] {
        net.config_mut(x).bgp = Some(BgpConfig::default());
    }
    for x in [p1, p2] {
        net.config_mut(x).connected.push(prefix);
        net.config_mut(x).bgp.as_mut().unwrap().networks = vec![prefix];
    }
    if let Some(lp) = lp_p2 {
        net.config_mut(r)
            .bgp
            .as_mut()
            .unwrap()
            .peer_local_pref
            .push((p2, lp));
    }
    (net, [r, p1, p2])
}

fn setup(net: &Network) -> (Mtbdd, FailureVars, IgpState, BgpState) {
    let mut m = Mtbdd::new();
    let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
    let mut igp = IgpState::compute(&mut m, net, &fv, None);
    let bgp = BgpState::compute(&mut m, net, &fv, &mut igp, None);
    (m, fv, igp, bgp)
}

#[test]
fn equal_local_pref_multipaths_higher_wins() {
    // Without a policy R multipaths across both providers.
    let (net, [r, ..]) = dual_homed(None);
    let (mut m, _, _, bgp) = setup(&net);
    let cands = bgp.candidates(r, ClassId(0));
    assert_eq!(cands.len(), 2);
    let sel = yu_routing::BgpRoute::selection_guards(&mut m, cands);
    assert_eq!(m.eval_all_alive(sel[0]), Term::ONE);
    assert_eq!(m.eval_all_alive(sel[1]), Term::ONE);

    // With local-pref 200 toward P2, P2 wins and P1 is the fallback.
    let (net, [r, _p1, p2]) = dual_homed(Some(200));
    let (mut m, fv, _, bgp) = setup(&net);
    let cands = bgp.candidates(r, ClassId(0));
    let sel = yu_routing::BgpRoute::selection_guards(&mut m, cands);
    let p2_ix = cands
        .iter()
        .position(|c| c.local_pref == 200)
        .expect("P2 candidate");
    let p1_ix = 1 - p2_ix;
    assert_eq!(m.eval_all_alive(sel[p2_ix]), Term::ONE);
    assert_eq!(m.eval_all_alive(sel[p1_ix]), Term::ZERO);
    // Fail R-P2: the fallback takes over.
    let s = Scenario::links([ULinkId(1)]);
    assert_eq!(m.eval(sel[p1_ix], fv.assignment(&s)), Term::ONE);
    let _ = p2;
}

#[test]
fn deny_export_splits_prefix_classes() {
    // Two prefixes, one filtered by P1: they must land in different
    // classes even though origination is identical.
    let (mut net, [_r, p1, p2]) = dual_homed(None);
    let extra: Prefix = "51.0.0.0/24".parse().unwrap();
    for x in [p1, p2] {
        net.config_mut(x).connected.push(extra);
        net.config_mut(x).bgp.as_mut().unwrap().networks.push(extra);
    }
    let (_, classes_before) = {
        let (classes, trie) = yu_routing::classify_prefixes(&net);
        (trie, classes.len())
    };
    assert_eq!(classes_before, 1, "same origination => one class");
    net.config_mut(p1)
        .bgp
        .as_mut()
        .unwrap()
        .deny_exports
        .push(DenyExport {
            peer: None,
            prefix: extra,
        });
    let (classes, trie) = yu_routing::classify_prefixes(&net);
    assert_eq!(classes.len(), 2, "the filter must split the classes");
    let c1 = trie.longest_match("50.0.0.1".parse().unwrap()).unwrap().1;
    let c2 = trie.longest_match("51.0.0.1".parse().unwrap()).unwrap().1;
    assert_ne!(c1, c2);
    assert!(classes[c2.0 as usize].denied(p1, _r));
    assert!(!classes[c1.0 as usize].denied(p1, _r));
}

#[test]
fn denied_prefix_is_not_learned() {
    let (mut net, [r, p1, _p2]) = dual_homed(None);
    net.config_mut(p1)
        .bgp
        .as_mut()
        .unwrap()
        .deny_exports
        .push(DenyExport {
            peer: Some(r),
            prefix: "50.0.0.0/24".parse().unwrap(),
        });
    let (mut m, _fv, _igp, bgp) = setup(&net);
    let dst: Ipv4 = "50.0.0.7".parse().unwrap();
    let classes = bgp.class_for(dst);
    assert_eq!(classes.len(), 1);
    let cands = bgp.candidates(r, classes[0].1);
    // Only the P2 route remains.
    assert_eq!(cands.len(), 1, "{cands:?}");
    match cands[0].next_hop {
        NextHop::Direct(l) => {
            assert_eq!(net.topo.link(l).to, _p2);
        }
        ref other => panic!("unexpected next hop {other:?}"),
    }
    let _ = &mut m;
}

#[test]
fn symbolic_bgp_matches_concrete_rib_presence() {
    // For every 1-failure scenario, a symbolic candidate's guard is 1
    // exactly when the concrete simulation has that candidate.
    let (net, [r, ..]) = dual_homed(Some(200));
    let (m, fv, _igp, bgp) = setup(&net);
    let dst: Ipv4 = "50.0.0.7".parse().unwrap();
    for s in yu_net::scenarios_up_to_k(&net.topo, FailureMode::Links, 1) {
        let concrete = ConcreteRoutes::compute(&net, &s);
        let conc_rules = concrete.fib_rules(r, dst);
        let class = bgp.class_for(dst)[0].1;
        for cand in bgp.candidates(r, class) {
            let present = m.eval(cand.guard, fv.assignment(&s)).is_one();
            let concrete_has = conc_rules
                .iter()
                .any(|cr| cr.next_hop == cand.next_hop && cr.local_pref == cand.local_pref);
            assert_eq!(
                present,
                concrete_has,
                "candidate {cand:?} under {}",
                s.describe(&net.topo)
            );
        }
    }
}

#[test]
fn no_multipath_concrete_single_path() {
    // With multipath disabled, concrete forwarding uses exactly one of
    // the two equally preferred routes.
    let (mut net, [r, ..]) = dual_homed(None);
    net.config_mut(r).bgp.as_mut().unwrap().multipath = false;
    let routes = ConcreteRoutes::compute(&net, &Scenario::none());
    let flow = yu_net::Flow::new(
        r,
        Ipv4::new(11, 0, 0, 1),
        "50.0.0.7".parse().unwrap(),
        0,
        Ratio::int(10),
    );
    let res = routes.forward_flow(&flow, 16);
    let nonzero: Vec<_> = res
        .link_fraction
        .values()
        .filter(|v| !v.is_zero())
        .collect();
    assert_eq!(nonzero.len(), 1, "single-path forwarding expected");
    assert_eq!(*nonzero[0], Ratio::ONE);
}

#[test]
fn no_multipath_symbolic_matches_concrete() {
    let (mut net, [r, ..]) = dual_homed(None);
    net.config_mut(r).bgp.as_mut().unwrap().multipath = false;
    let mut m = Mtbdd::new();
    let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
    let mut routes = SymbolicRoutes::compute(&mut m, &net, &fv, None);
    let flow = yu_net::Flow::new(
        r,
        Ipv4::new(11, 0, 0, 1),
        "50.0.0.7".parse().unwrap(),
        0,
        Ratio::int(10),
    );
    let stf = yu_core::simulate_flow(
        &mut m,
        &net,
        &fv,
        &mut routes,
        &flow,
        yu_core::ExecOptions::default(),
    );
    for s in yu_net::scenarios_up_to_k(&net.topo, FailureMode::Links, 2) {
        let concrete = ConcreteRoutes::compute(&net, &s);
        let res = concrete.forward_flow(&flow, 16);
        for l in net.topo.links() {
            let sym = match m.eval(stf.at(&m, yu_net::LoadPoint::Link(l)), fv.assignment(&s)) {
                Term::Num(v) => v,
                Term::PosInf => unreachable!(),
            };
            let conc = res.link_fraction.get(&l).cloned().unwrap_or(Ratio::ZERO);
            assert_eq!(
                sym,
                conc,
                "link {} under {}",
                net.topo.link_label(l),
                s.describe(&net.topo)
            );
        }
    }
}
