//! Symbolic BGP route propagation (eBGP + iBGP), producing guarded BGP
//! RIBs in the style of the paper's Fig. 3 / Fig. 6.
//!
//! The simulation follows the Hoyan-style symbolic route simulation the
//! paper builds on: every route advertisement carries a guard — a 0/1
//! MTBDD over failure variables encoding the scenarios in which the
//! message is sent. Propagation runs in synchronous rounds to a fixpoint:
//!
//! 1. every router selects, per prefix class, among its guarded candidates
//!    (locally originated + learned last round) using the paper's
//!    `s_r = g_r ∧ ⋀_{r'≺r} ¬g_{r'}` encoding over static preference
//!    classes (local-pref desc, AS-path length asc, origin < eBGP < iBGP);
//! 2. selected routes are exported: over eBGP sessions (guard: the shared
//!    physical link is usable) with AS prepending and receiver-side AS-loop
//!    rejection, and over iBGP sessions (guard: the IGP connects the two
//!    loopbacks, both directions) with next-hop-self, no iBGP-to-iBGP
//!    re-advertisement (full mesh);
//! 3. exports with equal attributes merge by OR-ing guards — exactly how
//!    `m4 = ⟨100/24, B, [200,300], x2 ∨ x3⟩` arises in Fig. 6.
//!
//! **Prefix classes.** Millions of prefixes collapse into few equivalence
//! classes: prefixes originated by the same routers in the same way are
//! routed identically, so propagation runs once per class ("prefix
//! classification", mentioned in §4.4 as a caching key).

use crate::igp::IgpState;
use crate::rib::NextHop;
use std::collections::{BTreeMap, HashMap};
use yu_mtbdd::{Mtbdd, NodeRef};
use yu_net::{AsNum, BgpSession, FailureVars, Network, Prefix, PrefixTrie, RouterId, ULinkId};

/// Identifier of a prefix equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// How a prefix is originated at a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OriginKind {
    /// A `network` statement over a connected network.
    Network,
    /// Redistributed from a static route.
    Static,
}

/// The origination signature of a prefix class.
pub type OriginSig = Vec<(RouterId, OriginKind)>;

/// Received-route candidates merged by identical BGP attributes
/// (AS path, local pref, source, next hop), with OR-ed guards.
type MergedCandidates = BTreeMap<(Vec<AsNum>, u32, BgpFrom, NextHopKey), NodeRef>;

/// Full signature of a prefix class: origins plus the export filters
/// hitting it. Two prefixes with the same signature are routed
/// identically everywhere.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ClassSig {
    /// Where and how prefixes of this class are originated.
    pub origins: OriginSig,
    /// Deny filters covering the class: `(filtering router, peer)` with
    /// `None` meaning all peers.
    pub denies: Vec<(RouterId, Option<RouterId>)>,
}

impl ClassSig {
    /// Whether `router` suppresses advertising this class to `peer`.
    pub fn denied(&self, router: RouterId, peer: RouterId) -> bool {
        self.denies
            .iter()
            .any(|&(r, p)| r == router && p.is_none_or(|p| p == peer))
    }
}

/// Where a BGP candidate was learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BgpFrom {
    /// Originated locally.
    Origin,
    /// Learned over the eBGP session riding `ulink` from `peer`.
    Ebgp {
        /// The advertising peer.
        peer: RouterId,
        /// The physical link carrying the session.
        ulink: ULinkId,
    },
    /// Learned over iBGP from `peer`.
    Ibgp {
        /// The advertising peer.
        peer: RouterId,
    },
}

impl BgpFrom {
    fn source_rank(&self) -> u32 {
        match self {
            BgpFrom::Origin => 0,
            BgpFrom::Ebgp { .. } => 1,
            BgpFrom::Ibgp { .. } => 2,
        }
    }
}

/// A guarded BGP candidate route for one prefix class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpRoute {
    /// AS path (nearest AS first); empty for local originations.
    pub as_path: Vec<AsNum>,
    /// Local preference (import policy applied).
    pub local_pref: u32,
    /// Source of the candidate.
    pub from: BgpFrom,
    /// Next hop in the unified FIB model.
    pub next_hop: NextHop,
    /// Presence guard.
    pub guard: NodeRef,
}

impl BgpRoute {
    /// Static preference key (smaller = preferred):
    /// local-pref desc, AS-path length asc, origin < eBGP < iBGP.
    pub fn pref_key(&self) -> (std::cmp::Reverse<u32>, usize, u32) {
        (
            std::cmp::Reverse(self.local_pref),
            self.as_path.len(),
            self.from.source_rank(),
        )
    }

    /// Selection guards for a candidate set: `s_i = g_i ∧ ¬(any strictly
    /// preferred candidate present)`. Returns one guard per candidate, in
    /// input order.
    pub fn selection_guards(m: &mut Mtbdd, cands: &[BgpRoute]) -> Vec<NodeRef> {
        // Guard of "some candidate with key strictly better than k exists".
        let mut order: Vec<usize> = (0..cands.len()).collect();
        order.sort_by_key(|&i| cands[i].pref_key());
        let mut out = vec![m.zero(); cands.len()];
        let mut better = m.zero(); // presence of any strictly better class
        let mut i = 0;
        while i < order.len() {
            let mut j = i;
            let key = cands[order[i]].pref_key();
            let mut class_present = m.zero();
            while j < order.len() && cands[order[j]].pref_key() == key {
                let idx = order[j];
                let not_better = m.not(better);
                out[idx] = m.and(cands[idx].guard, not_better);
                class_present = m.or(class_present, cands[idx].guard);
                j += 1;
            }
            better = m.or(better, class_present);
            i = j;
        }
        out
    }
}

/// Groups all BGP-routed prefixes of `net` into origination-equivalence
/// classes: prefixes originated by the same routers in the same way are
/// routed identically, so route simulation runs once per class.
pub fn classify_prefixes(net: &Network) -> (Vec<ClassSig>, PrefixTrie<ClassId>) {
    let mut sig_of_prefix: BTreeMap<Prefix, ClassSig> = BTreeMap::new();
    for r in net.topo.routers() {
        let cfg = net.config(r);
        let Some(bgp) = &cfg.bgp else { continue };
        for p in &bgp.networks {
            sig_of_prefix
                .entry(*p)
                .or_default()
                .origins
                .push((r, OriginKind::Network));
        }
        if bgp.redistribute_static {
            for s in &cfg.static_routes {
                sig_of_prefix
                    .entry(s.prefix)
                    .or_default()
                    .origins
                    .push((r, OriginKind::Static));
            }
        }
    }
    // Attach the deny filters covering each prefix; they are part of the
    // signature because filtered and unfiltered prefixes route differently.
    let mut enriched: BTreeMap<Prefix, ClassSig> = BTreeMap::new();
    for (prefix, mut sig) in sig_of_prefix {
        for r in net.topo.routers() {
            let Some(bgp) = net.bgp(r) else { continue };
            for d in &bgp.deny_exports {
                if d.prefix.covers(&prefix) {
                    sig.denies.push((r, d.peer));
                }
            }
        }
        sig.origins.sort();
        sig.origins.dedup();
        sig.denies.sort();
        sig.denies.dedup();
        enriched.insert(prefix, sig);
    }
    let mut classes: Vec<ClassSig> = Vec::new();
    let mut class_of_sig: HashMap<ClassSig, ClassId> = HashMap::new();
    let mut prefix_class = PrefixTrie::new();
    for (prefix, sig) in enriched {
        let id = *class_of_sig.entry(sig.clone()).or_insert_with(|| {
            classes.push(sig.clone());
            ClassId(classes.len() as u32 - 1)
        });
        prefix_class.insert(prefix, id);
    }
    (classes, prefix_class)
}

/// A route advertisement (one round's export over one session type).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Advert {
    class: ClassId,
    as_path: Vec<AsNum>,
    local_pref: u32,
    guard: NodeRef,
}

/// Result of symbolic BGP simulation.
pub struct BgpState {
    /// Signature per class.
    pub classes: Vec<ClassSig>,
    /// Prefix to class mapping.
    pub prefix_class: PrefixTrie<ClassId>,
    /// Final candidates per router per class (Adj-RIB-In plus origins).
    pub rib: Vec<HashMap<ClassId, Vec<BgpRoute>>>,
    /// Whether the fixpoint was reached within the round budget.
    pub converged: bool,
}

impl BgpState {
    /// Runs symbolic BGP propagation. `k` is the KREDUCE budget applied to
    /// guards during propagation (`None` = exact).
    pub fn compute(
        m: &mut Mtbdd,
        net: &Network,
        fv: &FailureVars,
        igp: &mut IgpState,
        k: Option<u32>,
    ) -> BgpState {
        let _stage = yu_telemetry::span("bgp");
        let reduce = |m: &mut Mtbdd, g: NodeRef| match k {
            Some(k) => m.kreduce(g, k),
            None => g,
        };

        // --- Prefix classification -------------------------------------
        let (classes, prefix_class) = classify_prefixes(net);

        // --- Session guards --------------------------------------------
        // sessions[r] = (peer, session, guard, inbound link for eBGP)
        let nrouters = net.topo.num_routers();
        let mut sessions: Vec<Vec<(RouterId, BgpSession, NodeRef)>> = vec![Vec::new(); nrouters];
        for r in net.topo.routers() {
            for (peer, sess) in net.bgp_sessions(r) {
                let guard = match sess {
                    BgpSession::Ebgp { ulink } => {
                        let (fwd, _) = net.topo.directions(ulink);
                        fv.link_usable(m, &net.topo, fwd)
                    }
                    BgpSession::Ibgp => {
                        let asn = net.asn(r);
                        let lp_r = net.topo.router(r).loopback;
                        let lp_p = net.topo.router(peer).loopback;
                        let fwd = igp.reach(m, asn, r, lp_p);
                        let back = igp.reach(m, asn, peer, lp_r);
                        m.and(fwd, back)
                    }
                };
                let guard = reduce(m, guard);
                sessions[r.0 as usize].push((peer, sess, guard));
            }
        }

        // --- Origin candidates -----------------------------------------
        let mut origins: Vec<HashMap<ClassId, BgpRoute>> = vec![HashMap::new(); nrouters];
        for (cid, sig) in classes.iter().enumerate() {
            for &(r, _kind) in &sig.origins {
                let alive = fv.router_alive(m, r);
                origins[r.0 as usize].insert(
                    ClassId(cid as u32),
                    BgpRoute {
                        as_path: Vec::new(),
                        local_pref: 100,
                        from: BgpFrom::Origin,
                        next_hop: NextHop::Receive,
                        guard: alive,
                    },
                );
            }
        }

        // --- Synchronous propagation to fixpoint -----------------------
        let mut received: Vec<HashMap<ClassId, Vec<BgpRoute>>> = vec![HashMap::new(); nrouters];
        let num_ases = net.ases().len();
        let max_rounds = 2 * (num_ases + 2) + nrouters.min(64) + 8;
        let mut converged = false;
        let mut rounds: u64 = 0;

        for _round in 0..max_rounds {
            rounds += 1;
            // Exports of every router based on current candidates.
            let mut ebgp_out: Vec<Vec<Advert>> = vec![Vec::new(); nrouters];
            let mut ibgp_out: Vec<Vec<Advert>> = vec![Vec::new(); nrouters];
            for r in net.topo.routers() {
                if net.bgp(r).is_none() {
                    continue;
                }
                let mut class_ids: Vec<ClassId> = received[r.0 as usize].keys().copied().collect();
                class_ids.extend(origins[r.0 as usize].keys().copied());
                class_ids.sort();
                class_ids.dedup();
                for cid in class_ids {
                    let mut cands: Vec<BgpRoute> = Vec::new();
                    if let Some(o) = origins[r.0 as usize].get(&cid) {
                        cands.push(o.clone());
                    }
                    if let Some(learned) = received[r.0 as usize].get(&cid) {
                        cands.extend(learned.iter().cloned());
                    }
                    if cands.is_empty() {
                        continue;
                    }
                    let sel = BgpRoute::selection_guards(m, &cands);
                    // Group selected candidates by (as_path, local_pref),
                    // separately for each session type's export filter.
                    let mut groups_all: BTreeMap<(Vec<AsNum>, u32), NodeRef> = BTreeMap::new();
                    let mut groups_ibgp: BTreeMap<(Vec<AsNum>, u32), NodeRef> = BTreeMap::new();
                    for (cand, s) in cands.iter().zip(&sel) {
                        if *s == m.zero() {
                            continue;
                        }
                        let key = (cand.as_path.clone(), cand.local_pref);
                        let e = groups_all.entry(key.clone()).or_insert_with(|| m.zero());
                        *e = m.or(*e, *s);
                        if !matches!(cand.from, BgpFrom::Ibgp { .. }) {
                            let e = groups_ibgp.entry(key).or_insert_with(|| m.zero());
                            *e = m.or(*e, *s);
                        }
                    }
                    for ((as_path, local_pref), guard) in groups_all {
                        let guard = reduce(m, guard);
                        if guard != m.zero() {
                            ebgp_out[r.0 as usize].push(Advert {
                                class: cid,
                                as_path,
                                local_pref,
                                guard,
                            });
                        }
                    }
                    for ((as_path, local_pref), guard) in groups_ibgp {
                        let guard = reduce(m, guard);
                        if guard != m.zero() {
                            ibgp_out[r.0 as usize].push(Advert {
                                class: cid,
                                as_path,
                                local_pref,
                                guard,
                            });
                        }
                    }
                }
            }

            // Deliver exports.
            let mut next: Vec<HashMap<ClassId, Vec<BgpRoute>>> = vec![HashMap::new(); nrouters];
            for r in net.topo.routers() {
                let Some(bgp_cfg) = net.bgp(r) else { continue };
                // Merge candidates with identical attributes by OR-ing
                // guards (parallel sessions, multiple equal paths).
                let mut acc: HashMap<ClassId, MergedCandidates> = HashMap::new();
                for &(peer, sess, sguard) in &sessions[r.0 as usize] {
                    match sess {
                        BgpSession::Ebgp { ulink } => {
                            // The directed link from r towards peer.
                            let (fwd, rev) = net.topo.directions(ulink);
                            let to_peer = if net.topo.link(fwd).from == r {
                                fwd
                            } else {
                                rev
                            };
                            for adv in &ebgp_out[peer.0 as usize] {
                                if classes[adv.class.0 as usize].denied(peer, r) {
                                    continue; // outbound filter at the sender
                                }
                                let mut as_path = Vec::with_capacity(adv.as_path.len() + 1);
                                as_path.push(net.asn(peer));
                                as_path.extend_from_slice(&adv.as_path);
                                if as_path.contains(&net.asn(r)) {
                                    continue; // AS loop prevention
                                }
                                let guard = m.and(adv.guard, sguard);
                                if guard == m.zero() {
                                    continue;
                                }
                                let lp = bgp_cfg.local_pref_for(peer);
                                let key = (
                                    as_path,
                                    lp,
                                    BgpFrom::Ebgp { peer, ulink },
                                    NextHopKey::Direct(to_peer.0),
                                );
                                let e = acc
                                    .entry(adv.class)
                                    .or_default()
                                    .entry(key)
                                    .or_insert_with(|| m.zero());
                                *e = m.or(*e, guard);
                            }
                        }
                        BgpSession::Ibgp => {
                            for adv in &ibgp_out[peer.0 as usize] {
                                if classes[adv.class.0 as usize].denied(peer, r) {
                                    continue;
                                }
                                if adv.as_path.contains(&net.asn(r)) {
                                    continue;
                                }
                                let guard = m.and(adv.guard, sguard);
                                if guard == m.zero() {
                                    continue;
                                }
                                let key = (
                                    adv.as_path.clone(),
                                    adv.local_pref,
                                    BgpFrom::Ibgp { peer },
                                    NextHopKey::Ip(net.topo.router(peer).loopback),
                                );
                                let e = acc
                                    .entry(adv.class)
                                    .or_default()
                                    .entry(key)
                                    .or_insert_with(|| m.zero());
                                *e = m.or(*e, guard);
                            }
                        }
                    }
                }
                for (cid, routes) in acc {
                    let mut list: Vec<BgpRoute> = Vec::new();
                    for ((as_path, local_pref, from, nh), guard) in routes {
                        let guard = reduce(m, guard);
                        if guard != m.zero() {
                            list.push(BgpRoute {
                                as_path,
                                local_pref,
                                from,
                                next_hop: nh.into(),
                                guard,
                            });
                        }
                    }
                    if !list.is_empty() {
                        next[r.0 as usize].insert(cid, list);
                    }
                }
            }

            if next == received {
                converged = true;
                break;
            }
            received = next;
        }
        yu_telemetry::counter("bgp.rounds", rounds);
        yu_telemetry::with_registry(|r| r.route_bgp_rounds_total.add(rounds));

        // Final RIB = origins + received.
        let mut rib: Vec<HashMap<ClassId, Vec<BgpRoute>>> = received;
        for r in net.topo.routers() {
            for (cid, o) in &origins[r.0 as usize] {
                rib[r.0 as usize].entry(*cid).or_default().push(o.clone());
            }
            for routes in rib[r.0 as usize].values_mut() {
                routes.sort_by(|a, b| {
                    a.pref_key()
                        .cmp(&b.pref_key())
                        .then_with(|| a.from.cmp(&b.from))
                        .then_with(|| a.as_path.cmp(&b.as_path))
                });
            }
        }

        BgpState {
            classes,
            prefix_class,
            rib,
            converged,
        }
    }

    /// The class of the most specific BGP prefix covering `ip`, with the
    /// prefix itself.
    pub fn class_for(&self, ip: yu_net::Ipv4) -> Vec<(Prefix, ClassId)> {
        self.prefix_class
            .matches(ip)
            .into_iter()
            .map(|(p, c)| (p, *c))
            .collect()
    }

    /// Collects every guard handle (for garbage collection).
    pub fn gc_roots(&self, out: &mut Vec<NodeRef>) {
        for per_router in &self.rib {
            for routes in per_router.values() {
                out.extend(routes.iter().map(|r| r.guard));
            }
        }
    }

    /// Translates guard handles after a collection.
    pub fn remap(&mut self, remap: &yu_mtbdd::Remap) {
        for per_router in &mut self.rib {
            for routes in per_router.values_mut() {
                for r in routes.iter_mut() {
                    r.guard = remap.get(r.guard);
                }
            }
        }
    }

    /// The candidates of `router` for `class`.
    pub fn candidates(&self, router: RouterId, class: ClassId) -> &[BgpRoute] {
        self.rib[router.0 as usize]
            .get(&class)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// Hashable stand-in for [`NextHop`] (which contains `LinkId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum NextHopKey {
    Direct(u32),
    Ip(yu_net::Ipv4),
}

impl From<NextHopKey> for NextHop {
    fn from(k: NextHopKey) -> NextHop {
        match k {
            NextHopKey::Direct(l) => NextHop::Direct(yu_net::LinkId(l)),
            NextHopKey::Ip(ip) => NextHop::Ip(ip),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_mtbdd::{Ratio, Term};
    use yu_net::{BgpConfig, FailureMode, Ipv4, Scenario, Topology};

    /// The eBGP skeleton of the motivating example: A (AS 100), B (AS 200),
    /// C, D (AS 300, sharing IS-IS and iBGP with F which originates
    /// 100.0.0.0/24). Links: A-B, A-C, B-C, B-D, C-D, C-E, D-E, E-F x2.
    fn fig1_like() -> (Network, Vec<RouterId>) {
        let mut t = Topology::new();
        let cap = Ratio::int(100);
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 200);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 300);
        let d = t.add_router("D", Ipv4::new(10, 0, 0, 4), 300);
        let e = t.add_router("E", Ipv4::new(10, 0, 0, 5), 300);
        let f = t.add_router("F", Ipv4::new(10, 0, 0, 6), 300);
        t.add_link(a, b, 10000, cap.clone()); // u0
        t.add_link(a, c, 10000, cap.clone()); // u1
        t.add_link(b, c, 10000, cap.clone()); // u2
        t.add_link(b, d, 10000, cap.clone()); // u3
        t.add_link(c, d, 10000, cap.clone()); // u4
        t.add_link(c, e, 10000, cap.clone()); // u5
        t.add_link(d, e, 10000, cap.clone()); // u6
        t.add_link(e, f, 10000, cap.clone()); // u7
        t.add_link(e, f, 10000, cap.clone()); // u8
        let mut n = Network::new(t);
        for r in [a, b] {
            n.config_mut(r).bgp = Some(BgpConfig::default());
        }
        for r in [c, d, e, f] {
            n.config_mut(r).isis_enabled = true;
        }
        for r in [c, d, f] {
            n.config_mut(r).bgp = Some(BgpConfig::default());
        }
        n.config_mut(f)
            .connected
            .push("100.0.0.0/24".parse().unwrap());
        n.config_mut(f).bgp.as_mut().unwrap().networks = vec!["100.0.0.0/24".parse().unwrap()];
        (n, vec![a, b, c, d, e, f])
    }

    fn setup(net: &Network) -> (Mtbdd, FailureVars, IgpState) {
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let igp = IgpState::compute(&mut m, net, &fv, None);
        (m, fv, igp)
    }

    #[test]
    fn prefix_classification_and_convergence() {
        let (net, _) = fig1_like();
        let (mut m, fv, mut igp) = setup(&net);
        let st = BgpState::compute(&mut m, &net, &fv, &mut igp, None);
        assert!(st.converged, "BGP must reach a fixpoint");
        assert_eq!(st.classes.len(), 1);
        let cls = st.class_for("100.0.0.77".parse().unwrap());
        assert_eq!(cls.len(), 1);
        assert_eq!(cls[0].0, "100.0.0.0/24".parse().unwrap());
    }

    #[test]
    fn router_a_rib_matches_paper_figure3() {
        let (net, ids) = fig1_like();
        let (mut m, fv, mut igp) = setup(&net);
        let st = BgpState::compute(&mut m, &net, &fv, &mut igp, None);
        let a = ids[0];
        let cid = ClassId(0);
        let cands = st.candidates(a, cid);
        // Two candidates: via C (path [300]) preferred, via B (path
        // [200,300]).
        assert_eq!(cands.len(), 2, "{cands:?}");
        let via_c = cands.iter().find(|r| r.as_path == vec![300]).unwrap();
        let via_b = cands.iter().find(|r| r.as_path == vec![200, 300]).unwrap();
        // Guard of r1: link A-C alive (x1 in the paper's Fig. 3).
        let s_ac_fail = Scenario::links([yu_net::ULinkId(1)]);
        assert_eq!(m.eval(via_c.guard, fv.assignment(&s_ac_fail)), Term::ZERO);
        assert_eq!(m.eval_all_alive(via_c.guard), Term::ONE);
        // Guard of r2: x2 or x3 — B reaches AS 300 via B-C or B-D.
        assert_eq!(m.eval_all_alive(via_b.guard), Term::ONE);
        let s_both = Scenario::links([yu_net::ULinkId(2), yu_net::ULinkId(3)]);
        assert_eq!(m.eval(via_b.guard, fv.assignment(&s_both)), Term::ZERO);
        let s_one = Scenario::links([yu_net::ULinkId(2)]);
        assert_eq!(m.eval(via_b.guard, fv.assignment(&s_one)), Term::ONE);
    }

    #[test]
    fn ibgp_next_hop_is_originator_loopback() {
        let (net, ids) = fig1_like();
        let (mut m, fv, mut igp) = setup(&net);
        let st = BgpState::compute(&mut m, &net, &fv, &mut igp, None);
        let d = ids[3];
        let cands = st.candidates(d, ClassId(0));
        let ibgp: Vec<_> = cands
            .iter()
            .filter(|r| matches!(r.from, BgpFrom::Ibgp { .. }))
            .collect();
        assert!(!ibgp.is_empty());
        assert!(ibgp
            .iter()
            .any(|r| r.next_hop == NextHop::Ip(Ipv4::new(10, 0, 0, 6))));
    }

    #[test]
    fn selection_prefers_local_pref_then_as_path() {
        let mut m = Mtbdd::new();
        let v0 = m.fresh_var();
        let g0 = m.var_guard(v0);
        let one = m.one();
        let mk = |lp: u32, path: Vec<AsNum>, guard: NodeRef| BgpRoute {
            as_path: path,
            local_pref: lp,
            from: BgpFrom::Origin,
            next_hop: NextHop::Receive,
            guard,
        };
        let cands = vec![
            mk(100, vec![1], one),      // mid
            mk(200, vec![1, 2, 3], g0), // best when present
            mk(100, vec![1, 2], one),   // worst
        ];
        let sel = BgpRoute::selection_guards(&mut m, &cands);
        // Candidate 1 selected whenever present.
        assert_eq!(m.eval_all_alive(sel[1]), Term::ONE);
        // Candidate 0 selected only when candidate 1 absent.
        assert_eq!(m.eval_all_alive(sel[0]), Term::ZERO);
        assert_eq!(m.eval(sel[0], |_| false), Term::ONE);
        // Candidate 2 never selected (candidate 0 always present).
        assert_eq!(m.eval_all_alive(sel[2]), Term::ZERO);
        assert_eq!(m.eval(sel[2], |_| false), Term::ZERO);
    }

    #[test]
    fn ebgp_guard_includes_session_link() {
        let (net, ids) = fig1_like();
        let (mut m, fv, mut igp) = setup(&net);
        let st = BgpState::compute(&mut m, &net, &fv, &mut igp, None);
        let b = ids[1];
        let cands = st.candidates(b, ClassId(0));
        // B has learned via C (u2), via D (u3) and via A (u0, path
        // [100,300]).
        let direct: Vec<_> = cands.iter().filter(|r| r.as_path == vec![300]).collect();
        assert_eq!(direct.len(), 2, "{cands:?}");
        let via_a = cands
            .iter()
            .find(|r| r.as_path == vec![100, 300])
            .expect("backup route through A");
        // The backup only exists while A itself has a route (A-C alive,
        // since the A-B-C route would loop through B's AS and is rejected).
        let s = Scenario::links([yu_net::ULinkId(1)]);
        assert_eq!(m.eval(via_a.guard, fv.assignment(&s)), Term::ZERO);
        assert_eq!(m.eval_all_alive(via_a.guard), Term::ONE);
    }

    #[test]
    fn anycast_class_has_two_origins() {
        // Two routers originating the same prefix -> one class, signature
        // of two origins.
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
        let b1 = t.add_router("B1", Ipv4::new(10, 0, 0, 2), 200);
        let b2 = t.add_router("B2", Ipv4::new(10, 0, 0, 3), 300);
        t.add_link(a, b1, 10, Ratio::int(100));
        t.add_link(a, b2, 10, Ratio::int(100));
        let mut net = Network::new(t);
        let p: Prefix = "50.0.0.0/24".parse().unwrap();
        for r in [a, b1, b2] {
            net.config_mut(r).bgp = Some(BgpConfig::default());
        }
        for r in [b1, b2] {
            net.config_mut(r).connected.push(p);
            net.config_mut(r).bgp.as_mut().unwrap().networks = vec![p];
        }
        let (mut m, fv, mut igp) = setup(&net);
        let st = BgpState::compute(&mut m, &net, &fv, &mut igp, None);
        assert_eq!(st.classes.len(), 1);
        assert_eq!(st.classes[0].origins.len(), 2);
        // A multipaths across both eBGP routes.
        let cands = st.candidates(a, ClassId(0));
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().all(|c| c.as_path.len() == 1));
    }
}
