//! Symbolic IGP (IS-IS) route simulation.
//!
//! For every AS and every IGP destination (the loopbacks of its IS-IS
//! routers, including anycast loopbacks owned by several routers), this
//! module computes a *symbolic distance* per router: an MTBDD mapping each
//! failure scenario to the shortest-path distance (`+∞` when unreachable).
//! Distances are computed by a guarded Bellman–Ford iteration
//!
//! ```text
//! dist_v ← min(dist_v, min over IS-IS links l = (v, u):
//!                        ite(usable(l), w_l + dist_u, +∞))
//! ```
//!
//! run to fixpoint. From distances we derive everything §4.1 and §4.4 of
//! the paper need:
//!
//! * `reach(v, ip)` guards (`dist_v` finite) — guarding iBGP sessions and
//!   SR tunnel establishment (Fig. 4);
//! * guarded IGP RIB rules — for each outgoing link `l = (v, u)`, the rule
//!   guard is `usable(l) ∧ dist_v = w_l + dist_u ∧ dist_v < ∞`, exactly the
//!   "route selection + ECMP" encoding of Fig. 7(a);
//! * the route-iteration vector `V^IGP_nip[l]` — the ECMP share per link
//!   (`c = s / Σ s'`).

use crate::rib::{NextHop, Rule};
use std::collections::HashMap;
use yu_mtbdd::{Mtbdd, NodeRef, Op, Term};
use yu_net::{AsNum, FailureVars, Ipv4, LinkId, Network, Prefix, Proto, RouterId};

/// Symbolic IGP state: per-(AS, destination) distance vectors plus derived
/// caches.
pub struct IgpState {
    /// `dist[(asn, ip)][router] =` symbolic distance from `router` to the
    /// nearest alive owner of `ip` inside `asn`.
    dist: HashMap<(AsNum, Ipv4), Vec<NodeRef>>,
    /// Cached route-iteration vectors `V^IGP`.
    vigp_cache: HashMap<(RouterId, Ipv4), Vec<(LinkId, NodeRef)>>,
    /// KREDUCE budget used during computation (`None` = exact).
    k: Option<u32>,
}

impl IgpState {
    /// Runs symbolic IGP simulation for every AS of `net`.
    ///
    /// `k` is the failure budget for KREDUCE-during-computation; pass
    /// `None` to keep exact diagrams (the ablation of Fig. 15/16).
    pub fn compute(m: &mut Mtbdd, net: &Network, fv: &FailureVars, k: Option<u32>) -> IgpState {
        let _stage = yu_telemetry::span("igp");
        let mut state = IgpState {
            dist: HashMap::new(),
            vigp_cache: HashMap::new(),
            k,
        };
        for (asn, routers) in net.ases() {
            let members: Vec<RouterId> = routers
                .iter()
                .copied()
                .filter(|&r| net.config(r).isis_enabled)
                .collect();
            if members.is_empty() {
                continue;
            }
            for ip in net.igp_destinations(asn) {
                let _dest = yu_telemetry::span_detail("igp.dest", || format!("as{asn:?} {ip:?}"));
                let d = compute_destination(m, net, fv, asn, &members, ip, k);
                state.dist.insert((asn, ip), d);
            }
        }
        state
    }

    fn reduce(&self, m: &mut Mtbdd, f: NodeRef) -> NodeRef {
        match self.k {
            Some(k) => m.kreduce(f, k),
            None => f,
        }
    }

    /// Whether `ip` is an IGP destination of `asn`.
    pub fn knows(&self, asn: AsNum, ip: Ipv4) -> bool {
        self.dist.contains_key(&(asn, ip))
    }

    /// The symbolic distance from `r` to `ip` within `asn` (`+∞` constant
    /// when `ip` is not an IGP destination there).
    pub fn dist(&self, m: &Mtbdd, asn: AsNum, ip: Ipv4, r: RouterId) -> NodeRef {
        self.dist
            .get(&(asn, ip))
            .map(|v| v[r.0 as usize])
            .unwrap_or_else(|| m.pos_inf())
    }

    /// Reachability guard: 1 where `r` can reach `ip` via the IGP of `asn`.
    pub fn reach(&self, m: &mut Mtbdd, asn: AsNum, r: RouterId, ip: Ipv4) -> NodeRef {
        let d = self.dist(m, asn, ip, r);
        m.is_finite_guard(d)
    }

    /// The guarded IGP RIB rules of router `r` for destination `ip`:
    /// one rule per IS-IS link that lies on a shortest path in some
    /// scenario. Rules share one preference class; their guards make them
    /// mutually exclusive except for genuine ECMP.
    pub fn igp_rules(
        &self,
        m: &mut Mtbdd,
        net: &Network,
        fv: &FailureVars,
        r: RouterId,
        ip: Ipv4,
    ) -> Vec<Rule> {
        let asn = net.asn(r);
        let dist_r = self.dist(m, asn, ip, r);
        let finite = m.is_finite_guard(dist_r);
        let mut rules = Vec::new();
        for l in net.isis_links(r) {
            let u = net.topo.link(l).to;
            let w = net.topo.link(l).igp_cost;
            let dist_u = self.dist(m, asn, ip, u);
            let wc = m.term(Term::int(w as i64));
            let via = m.apply(Op::Add, wc, dist_u);
            let on_spf = m.eq_guard(dist_r, via);
            let usable = fv.link_usable(m, &net.topo, l);
            let g0 = m.and(usable, on_spf);
            let g1 = m.and(g0, finite);
            let guard = self.reduce(m, g1);
            if guard != m.zero() {
                rules.push(Rule {
                    prefix: Prefix::host(ip),
                    proto: Proto::Isis,
                    next_hop: NextHop::Direct(l),
                    local_pref: 0,
                    as_path_len: 0,
                    tie: l.0,
                    guard,
                });
            }
        }
        rules
    }

    /// The route-iteration vector `V^IGP_nip` of §4.4: for each outgoing
    /// link of `r`, the symbolic fraction of traffic to `nip` forwarded on
    /// it (`c_l = s_l / Σ s`). Cached per `(r, nip)`.
    pub fn vigp(
        &mut self,
        m: &mut Mtbdd,
        net: &Network,
        fv: &FailureVars,
        r: RouterId,
        nip: Ipv4,
    ) -> Vec<(LinkId, NodeRef)> {
        if let Some(v) = self.vigp_cache.get(&(r, nip)) {
            return v.clone();
        }
        let rules = self.igp_rules(m, net, fv, r, nip);
        let guards: Vec<NodeRef> = rules.iter().map(|r| r.guard).collect();
        let total = m.sum(&guards);
        let mut out = Vec::new();
        for rule in &rules {
            let c0 = m.apply(Op::Div, rule.guard, total);
            let c = self.reduce(m, c0);
            if c != m.zero() {
                let NextHop::Direct(l) = rule.next_hop else {
                    unreachable!("IGP rules always have direct next hops")
                };
                out.push((l, c));
            }
        }
        self.vigp_cache.insert((r, nip), out.clone());
        out
    }

    /// Collects every long-lived MTBDD handle (for garbage collection).
    pub fn gc_roots(&self, out: &mut Vec<NodeRef>) {
        for v in self.dist.values() {
            out.extend(v.iter().copied());
        }
    }

    /// Translates handles after a collection; derived caches are dropped
    /// and rebuilt lazily.
    pub fn remap(&mut self, remap: &yu_mtbdd::Remap) {
        for v in self.dist.values_mut() {
            for n in v.iter_mut() {
                *n = remap.get(*n);
            }
        }
        self.vigp_cache.clear();
    }

    /// Whether router `r` terminates traffic for IGP destination `ip`
    /// (it owns the loopback — pops SR labels / receives nexthop traffic).
    pub fn owns(&self, net: &Network, r: RouterId, ip: Ipv4) -> bool {
        net.topo.router(r).loopback == ip && net.config(r).isis_enabled
    }
}

fn compute_destination(
    m: &mut Mtbdd,
    net: &Network,
    fv: &FailureVars,
    _asn: AsNum,
    members: &[RouterId],
    ip: Ipv4,
    k: Option<u32>,
) -> Vec<NodeRef> {
    let reduce = |m: &mut Mtbdd, f: NodeRef| match k {
        Some(k) => m.kreduce(f, k),
        None => f,
    };
    let n = net.topo.num_routers();
    let mut dist: Vec<NodeRef> = vec![m.pos_inf(); n];
    for &r in members {
        if net.topo.router(r).loopback == ip {
            // Distance 0 when the owner is alive, +inf otherwise (anycast:
            // several owners each contribute a 0 entry point).
            let alive = fv.router_alive(m, r);
            let zero = m.zero();
            let inf = m.pos_inf();
            dist[r.0 as usize] = m.ite(alive, zero, inf);
        }
    }
    // Guarded Bellman–Ford to fixpoint (bounded by |members| rounds).
    let mut rounds: u64 = 0;
    for _round in 0..members.len() {
        rounds += 1;
        let mut changed = false;
        let prev = dist.clone();
        for &r in members {
            let mut best = dist[r.0 as usize];
            for l in net.isis_links(r) {
                let u = net.topo.link(l).to;
                let w = net.topo.link(l).igp_cost;
                let wc = m.term(Term::int(w as i64));
                let via = m.apply(Op::Add, wc, prev[u.0 as usize]);
                let usable = fv.link_usable(m, &net.topo, l);
                let inf = m.pos_inf();
                let cand = m.ite(usable, via, inf);
                best = m.apply(Op::Min, best, cand);
            }
            let best = reduce(m, best);
            if best != dist[r.0 as usize] {
                dist[r.0 as usize] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    yu_telemetry::counter("igp.bf_rounds", rounds);
    yu_telemetry::counter("igp.destinations", 1);
    yu_telemetry::with_registry(|r| r.route_igp_rounds_total.add(rounds));
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_mtbdd::Ratio;
    use yu_net::{FailureMode, Scenario, Topology};

    /// Square topology: A-B, B-D, A-C, C-D, all cost 10, everything AS 300.
    fn square() -> (Network, [RouterId; 4]) {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 300);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 300);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 300);
        let d = t.add_router("D", Ipv4::new(10, 0, 0, 4), 300);
        t.add_link(a, b, 10, Ratio::int(100));
        t.add_link(b, d, 10, Ratio::int(100));
        t.add_link(a, c, 10, Ratio::int(100));
        t.add_link(c, d, 10, Ratio::int(100));
        let mut n = Network::new(t);
        for r in [a, b, c, d] {
            n.config_mut(r).isis_enabled = true;
        }
        (n, [a, b, c, d])
    }

    #[test]
    fn distances_no_failure() {
        let (net, [a, b, _, d]) = square();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let igp = IgpState::compute(&mut m, &net, &fv, None);
        let dip = net.topo.router(d).loopback;
        let da = igp.dist(&m, 300, dip, a);
        assert_eq!(m.eval_all_alive(da), Term::int(20));
        let db = igp.dist(&m, 300, dip, b);
        assert_eq!(m.eval_all_alive(db), Term::int(10));
        assert_eq!(m.eval_all_alive(igp.dist(&m, 300, dip, d)), Term::int(0));
    }

    #[test]
    fn distances_under_failures() {
        let (net, [a, _, _, d]) = square();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let igp = IgpState::compute(&mut m, &net, &fv, None);
        let dip = net.topo.router(d).loopback;
        let da = igp.dist(&m, 300, dip, a);
        // Fail B-D (ulink 1): A still reaches D via C at 20.
        let s = Scenario::links([yu_net::ULinkId(1)]);
        assert_eq!(m.eval(da, fv.assignment(&s)), Term::int(20));
        // Fail B-D and C-D: unreachable.
        let s = Scenario::links([yu_net::ULinkId(1), yu_net::ULinkId(3)]);
        assert_eq!(m.eval(da, fv.assignment(&s)), Term::PosInf);
        let reach = igp.reach(&mut m, 300, a, dip);
        assert_eq!(m.eval(reach, fv.assignment(&s)), Term::ZERO);
    }

    #[test]
    fn vigp_splits_ecmp_and_shifts_on_failure() {
        let (net, [a, _, _, d]) = square();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let mut igp = IgpState::compute(&mut m, &net, &fv, None);
        let dip = net.topo.router(d).loopback;
        let v = igp.vigp(&mut m, &net, &fv, a, dip);
        assert_eq!(v.len(), 2, "two ECMP next hops from A to D");
        for (_, share) in &v {
            assert_eq!(m.eval_all_alive(*share), Term::ratio(1, 2));
        }
        // Fail A-B (ulink 0): everything shifts to the A->C link.
        let s = Scenario::links([yu_net::ULinkId(0)]);
        let total: Vec<Term> = v
            .iter()
            .map(|(_, share)| m.eval(*share, fv.assignment(&s)))
            .collect();
        assert!(total.contains(&Term::ZERO));
        assert!(total.contains(&Term::ONE));
    }

    #[test]
    fn router_failures_cut_paths() {
        let (net, [a, b, c, d]) = square();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Routers);
        let igp = IgpState::compute(&mut m, &net, &fv, None);
        let dip = net.topo.router(d).loopback;
        let da = igp.dist(&m, 300, dip, a);
        let s = Scenario::routers([b]);
        assert_eq!(m.eval(da, fv.assignment(&s)), Term::int(20));
        let s = Scenario::routers([b, c]);
        assert_eq!(m.eval(da, fv.assignment(&s)), Term::PosInf);
        // The destination router failing makes it unreachable.
        let s = Scenario::routers([d]);
        assert_eq!(m.eval(da, fv.assignment(&s)), Term::PosInf);
        let _ = a;
    }

    #[test]
    fn anycast_takes_nearest_owner() {
        // A - B1(anycast) and A - C - B2(anycast): nearest is B1 at 10.
        let mut t = Topology::new();
        let any = Ipv4::new(1, 1, 1, 1);
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 300);
        let b1 = t.add_router("B1", any, 300);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 300);
        let b2 = t.add_router("B2", any, 300);
        let u_ab1 = t.add_link(a, b1, 10, Ratio::int(100));
        t.add_link(a, c, 10, Ratio::int(100));
        t.add_link(c, b2, 10, Ratio::int(100));
        let mut net = Network::new(t);
        for r in [a, b1, c, b2] {
            net.config_mut(r).isis_enabled = true;
        }
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let igp = IgpState::compute(&mut m, &net, &fv, None);
        let da = igp.dist(&m, 300, any, a);
        assert_eq!(m.eval_all_alive(da), Term::int(10));
        // Losing the A-B1 link falls back to B2 at distance 20.
        let s = Scenario::links([u_ab1]);
        assert_eq!(m.eval(da, fv.assignment(&s)), Term::int(20));
        assert!(igp.owns(&net, b1, any));
        assert!(igp.owns(&net, b2, any));
        assert!(!igp.owns(&net, a, any));
    }

    #[test]
    fn kreduce_during_igp_preserves_k_scenarios() {
        let (net, [a, _, _, d]) = square();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let exact = IgpState::compute(&mut m, &net, &fv, None);
        let reduced = IgpState::compute(&mut m, &net, &fv, Some(1));
        let dip = net.topo.router(d).loopback;
        let de = exact.dist(&m, 300, dip, a);
        let dr = reduced.dist(&m, 300, dip, a);
        // Equal on every <=1-failure scenario.
        for u in net.topo.ulinks() {
            let s = Scenario::links([u]);
            assert_eq!(m.eval(de, fv.assignment(&s)), m.eval(dr, fv.assignment(&s)));
        }
        assert_eq!(m.eval_all_alive(de), m.eval_all_alive(dr));
    }
}
