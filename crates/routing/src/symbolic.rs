//! The symbolic route simulation facade: computes guarded IGP state,
//! guarded BGP RIBs, and guarded SR policies for a network, and serves
//! unified guarded FIB lookups to the traffic execution engine.

use crate::bgp::{BgpFrom, BgpState};
use crate::igp::IgpState;
use crate::rib::{sort_rules, NextHop, Rule};
use crate::sr::{guarded_sr_policies, GuardedSrPolicy};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use yu_mtbdd::{Mtbdd, NodeRef};
use yu_net::{FailureVars, Ipv4, LinkId, Network, Prefix, Proto, RouterId, StaticNextHop};

/// All guarded routing state of a network.
pub struct SymbolicRoutes {
    /// Symbolic IGP distances (and the `V^IGP` cache).
    pub igp: IgpState,
    /// Guarded BGP RIBs by prefix class.
    pub bgp: BgpState,
    /// Guarded SR policies per router.
    pub sr: Vec<Vec<GuardedSrPolicy>>,
    /// IGP destination lookup: `(asn, ip)` pairs the IGP can resolve.
    igp_dests: HashSet<(yu_net::AsNum, Ipv4)>,
    /// FIB lookup cache.
    fib_cache: HashMap<(RouterId, Ipv4), Rc<Vec<Rule>>>,
    k: Option<u32>,
}

impl SymbolicRoutes {
    /// Runs the full symbolic route simulation (IGP, then BGP — whose iBGP
    /// session guards need IGP reachability — then SR policy guards).
    ///
    /// `k` is the KREDUCE budget applied throughout (`None` disables the
    /// reduction, the ablation of Figs. 15–16).
    pub fn compute(
        m: &mut Mtbdd,
        net: &Network,
        fv: &FailureVars,
        k: Option<u32>,
    ) -> SymbolicRoutes {
        let mut igp = IgpState::compute(m, net, fv, k);
        let bgp = BgpState::compute(m, net, fv, &mut igp, k);
        let sr = guarded_sr_policies(m, net, &mut igp, k);
        let mut igp_dests = HashSet::new();
        for (asn, _) in net.ases() {
            for ip in net.igp_destinations(asn) {
                igp_dests.insert((asn, ip));
            }
        }
        SymbolicRoutes {
            igp,
            bgp,
            sr,
            igp_dests,
            fib_cache: HashMap::new(),
            k,
        }
    }

    /// The KREDUCE budget the state was computed with.
    pub fn k(&self) -> Option<u32> {
        self.k
    }

    /// The guarded FIB rules of `router` matching destination `dstip`,
    /// sorted into evaluation order (most specific prefix first, then by
    /// static preference). Cached per `(router, dstip)`.
    ///
    /// The rule set merges:
    /// * connected networks (`Receive`, distance 0) and the router's own
    ///   loopback;
    /// * static routes (distance 1), including `Null0` blackholes;
    /// * BGP routes from the guarded BGP RIB (eBGP 20 / iBGP 200);
    /// * IS-IS loopback host routes (distance 115) with shortest-path
    ///   guards.
    pub fn fib_rules(
        &mut self,
        m: &mut Mtbdd,
        net: &Network,
        fv: &FailureVars,
        router: RouterId,
        dstip: Ipv4,
    ) -> Rc<Vec<Rule>> {
        if let Some(rules) = self.fib_cache.get(&(router, dstip)) {
            return Rc::clone(rules);
        }
        let mut rules = Vec::new();
        let cfg = net.config(router);
        let alive = fv.router_alive(m, router);

        for p in &cfg.connected {
            if p.contains(dstip) {
                rules.push(Rule {
                    prefix: *p,
                    proto: Proto::Connected,
                    next_hop: NextHop::Receive,
                    local_pref: 0,
                    as_path_len: 0,
                    tie: 0,
                    guard: alive,
                });
            }
        }
        if net.topo.router(router).loopback == dstip {
            rules.push(Rule {
                prefix: Prefix::host(dstip),
                proto: Proto::Connected,
                next_hop: NextHop::Receive,
                local_pref: 0,
                as_path_len: 0,
                tie: 1,
                guard: alive,
            });
        }

        for (i, s) in cfg.static_routes.iter().enumerate() {
            if s.prefix.contains(dstip) {
                rules.push(Rule {
                    prefix: s.prefix,
                    proto: Proto::Static,
                    next_hop: match s.next_hop {
                        StaticNextHop::Null0 => NextHop::Null0,
                        StaticNextHop::Ip(ip) => NextHop::Ip(ip),
                    },
                    local_pref: 0,
                    as_path_len: 0,
                    tie: i as u32,
                    guard: alive,
                });
            }
        }

        if net.bgp(router).is_some() {
            for (prefix, class) in self.bgp.class_for(dstip) {
                for (i, cand) in self.bgp.candidates(router, class).iter().enumerate() {
                    let proto = match cand.from {
                        BgpFrom::Origin => continue, // shadowed by connected/static
                        BgpFrom::Ebgp { .. } => Proto::Ebgp,
                        BgpFrom::Ibgp { .. } => Proto::Ibgp,
                    };
                    rules.push(Rule {
                        prefix,
                        proto,
                        next_hop: cand.next_hop,
                        local_pref: cand.local_pref,
                        as_path_len: cand.as_path.len() as u32,
                        tie: i as u32,
                        guard: cand.guard,
                    });
                }
            }
        }

        let asn = net.asn(router);
        if self.igp_dests.contains(&(asn, dstip)) && !self.igp.owns(net, router, dstip) {
            rules.extend(self.igp.igp_rules(m, net, fv, router, dstip));
        }

        sort_rules(&mut rules);
        let rules = Rc::new(rules);
        self.fib_cache.insert((router, dstip), Rc::clone(&rules));
        rules
    }

    /// Route iteration (`V^IGP_nip`): ECMP shares per outgoing link for
    /// recursive next hop `nip` at `router`.
    pub fn vigp(
        &mut self,
        m: &mut Mtbdd,
        net: &Network,
        fv: &FailureVars,
        router: RouterId,
        nip: Ipv4,
    ) -> Vec<(LinkId, NodeRef)> {
        self.igp.vigp(m, net, fv, router, nip)
    }

    /// The guarded SR policy of `router` matching `(nip, dscp)`, if any.
    pub fn sr_policy(&self, router: RouterId, nip: Ipv4, dscp: u8) -> Option<&GuardedSrPolicy> {
        self.sr[router.0 as usize]
            .iter()
            .find(|p| p.matches(nip, dscp))
    }

    /// Whether `router` terminates traffic addressed to IGP destination
    /// `ip` (owns the loopback / anycast address).
    pub fn owns(&self, net: &Network, router: RouterId, ip: Ipv4) -> bool {
        self.igp.owns(net, router, ip)
    }

    /// Collects every long-lived MTBDD handle of the routing state (IGP
    /// distances, BGP guards, SR path guards) for garbage collection.
    /// Derived caches (FIB rules, `V^IGP` vectors) are *not* roots; they
    /// are dropped on [`SymbolicRoutes::remap`] and rebuilt lazily.
    pub fn gc_roots(&self, out: &mut Vec<NodeRef>) {
        self.igp.gc_roots(out);
        self.bgp.gc_roots(out);
        for pols in &self.sr {
            for pol in pols {
                out.extend(pol.paths.iter().map(|p| p.guard));
            }
        }
    }

    /// Translates handles after a collection and drops derived caches.
    pub fn remap(&mut self, remap: &yu_mtbdd::Remap) {
        self.igp.remap(remap);
        self.bgp.remap(remap);
        for pols in &mut self.sr {
            for pol in pols {
                for p in &mut pol.paths {
                    p.guard = remap.get(p.guard);
                }
            }
        }
        self.fib_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_mtbdd::{Ratio, Term};
    use yu_net::{BgpConfig, FailureMode, Scenario, StaticRoute, Topology};

    /// Two-router network reproducing the Fig. 10 shape in miniature:
    /// M - D, D - W("the WAN"); D has static 10/8 -> Null0 redistributed
    /// into BGP, and learns 10.1/26 from W over eBGP.
    fn fig10_mini() -> (Network, [RouterId; 3]) {
        let mut t = Topology::new();
        let cap = Ratio::int(100);
        let mrt = t.add_router("M", Ipv4::new(10, 0, 0, 1), 65001);
        let d = t.add_router("D", Ipv4::new(10, 0, 0, 2), 65002);
        let w = t.add_router("W", Ipv4::new(10, 0, 0, 3), 65003);
        t.add_link(mrt, d, 10, cap.clone()); // u0
        t.add_link(d, w, 10, cap.clone()); // u1
        let mut net = Network::new(t);
        for r in [mrt, d, w] {
            net.config_mut(r).bgp = Some(BgpConfig::default());
        }
        net.config_mut(d).static_routes.push(StaticRoute {
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: StaticNextHop::Null0,
        });
        net.config_mut(d).bgp.as_mut().unwrap().redistribute_static = true;
        net.config_mut(w)
            .connected
            .push("10.1.0.0/26".parse().unwrap());
        net.config_mut(w).bgp.as_mut().unwrap().networks = vec!["10.1.0.0/26".parse().unwrap()];
        (net, [mrt, d, w])
    }

    #[test]
    fn fib_lpm_with_guards_reproduces_fig10_blackhole() {
        let (net, [mrt, d, _w]) = fig10_mini();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let mut routes = SymbolicRoutes::compute(&mut m, &net, &fv, None);
        let dst: Ipv4 = "10.1.0.5".parse().unwrap();

        // D's FIB for 10.1.0.5: the /26 from W (eBGP, present iff D-W up)
        // then the /8 static Null0.
        let rules = routes.fib_rules(&mut m, &net, &fv, d, dst);
        assert_eq!(rules.len(), 2, "{rules:?}");
        assert_eq!(rules[0].prefix.len(), 26);
        assert_eq!(rules[0].proto, Proto::Ebgp);
        assert_eq!(rules[1].next_hop, NextHop::Null0);
        let s = Scenario::links([yu_net::ULinkId(1)]);
        assert_eq!(m.eval(rules[0].guard, fv.assignment(&s)), Term::ZERO);
        assert_eq!(m.eval(rules[1].guard, fv.assignment(&s)), Term::ONE);

        // M sees both the /26 and the redistributed /8 via D.
        let rules = routes.fib_rules(&mut m, &net, &fv, mrt, dst);
        assert_eq!(rules.len(), 2, "{rules:?}");
        assert_eq!(rules[0].prefix.len(), 26);
        assert_eq!(rules[1].prefix.len(), 8);
        // The /8 blackhole advert does NOT depend on the D-W link.
        assert_eq!(m.eval(rules[1].guard, fv.assignment(&s)), Term::ONE);
        // But the /26 at M does (it only exists while W exports it to D).
        assert_eq!(m.eval(rules[0].guard, fv.assignment(&s)), Term::ZERO);
    }

    #[test]
    fn fib_cache_returns_same_rc() {
        let (net, [mrt, _, _]) = fig10_mini();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let mut routes = SymbolicRoutes::compute(&mut m, &net, &fv, None);
        let dst: Ipv4 = "10.1.0.5".parse().unwrap();
        let r1 = routes.fib_rules(&mut m, &net, &fv, mrt, dst);
        let r2 = routes.fib_rules(&mut m, &net, &fv, mrt, dst);
        assert!(Rc::ptr_eq(&r1, &r2));
    }

    #[test]
    fn own_loopback_is_received() {
        let (net, [mrt, _, _]) = fig10_mini();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let mut routes = SymbolicRoutes::compute(&mut m, &net, &fv, None);
        let rules = routes.fib_rules(&mut m, &net, &fv, mrt, Ipv4::new(10, 0, 0, 1));
        assert!(rules
            .iter()
            .any(|r| r.next_hop == NextHop::Receive && r.prefix.len() == 32));
    }
}
