//! A concrete (single-scenario) route and traffic simulator.
//!
//! This is an *independent* re-implementation of the forwarding semantics
//! under one fixed failure scenario: Dijkstra for IS-IS, round-based BGP
//! propagation, longest-prefix-match FIBs, ECMP, and SR steering with
//! label stacks. It serves two purposes:
//!
//! * it is the engine of the Jingubang-style baseline, which must
//!   enumerate and simulate every `≤ k`-failure scenario (the cost YU's
//!   symbolic execution avoids);
//! * it is the differential-testing oracle: for any scenario, evaluating
//!   YU's symbolic traffic loads at that scenario must give exactly the
//!   loads this simulator computes.

use crate::bgp::{classify_prefixes, BgpFrom, ClassId, ClassSig};
use crate::rib::NextHop;
use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap};
use yu_mtbdd::Ratio;
use yu_net::{
    AsNum, BgpSession, Flow, Ipv4, LinkId, Network, Prefix, PrefixTrie, Proto, RouterId, Scenario,
    StaticNextHop,
};

/// A concrete FIB rule (present in the current scenario).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CRule {
    /// Matched prefix.
    pub prefix: Prefix,
    /// Protocol (administrative distance).
    pub proto: Proto,
    /// Next hop.
    pub next_hop: NextHop,
    /// BGP local preference.
    pub local_pref: u32,
    /// BGP AS-path length.
    pub as_path_len: u32,
    /// Deterministic tiebreak.
    pub tie: u32,
}

impl CRule {
    fn pref_key(&self) -> (u32, Reverse<u32>, u32) {
        (
            self.proto.admin_distance(),
            Reverse(self.local_pref),
            self.as_path_len,
        )
    }

    fn same_class(&self, other: &CRule) -> bool {
        self.prefix.len() == other.prefix.len() && self.pref_key() == other.pref_key()
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CBgpRoute {
    as_path: Vec<AsNum>,
    local_pref: u32,
    from: BgpFrom,
    next_hop: CNextHop,
}

/// Per-router outbound advertisements of one propagation round:
/// `(as_path, local_pref)` per prefix class.
type ExportQueues = Vec<BTreeMap<ClassId, Vec<(Vec<AsNum>, u32)>>>;

/// `Ord`-able next hop mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum CNextHop {
    Direct(u32),
    Ip(Ipv4),
}

impl From<CNextHop> for NextHop {
    fn from(n: CNextHop) -> NextHop {
        match n {
            CNextHop::Direct(l) => NextHop::Direct(LinkId(l)),
            CNextHop::Ip(ip) => NextHop::Ip(ip),
        }
    }
}

impl CBgpRoute {
    fn pref_key(&self) -> (Reverse<u32>, usize, u32) {
        let rank = match self.from {
            BgpFrom::Origin => 0,
            BgpFrom::Ebgp { .. } => 1,
            BgpFrom::Ibgp { .. } => 2,
        };
        (Reverse(self.local_pref), self.as_path.len(), rank)
    }
}

/// Per-flow traffic result of the concrete simulator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConcreteFlowResult {
    /// Fraction of the flow on each directed link (summed over label
    /// stacks and hop counts).
    pub link_fraction: HashMap<LinkId, Ratio>,
    /// Fraction delivered per router.
    pub delivered: HashMap<RouterId, Ratio>,
    /// Fraction dropped per router (Null0, no route, unresolvable next
    /// hop, no valid SR path).
    pub dropped: HashMap<RouterId, Ratio>,
}

/// Concrete routing state of a network under one failure scenario.
pub struct ConcreteRoutes<'n> {
    net: &'n Network,
    scenario: Scenario,
    /// Shortest distances per (AS, IGP destination), indexed by router.
    igp_dist: HashMap<(AsNum, Ipv4), Vec<Option<u64>>>,
    classes: Vec<ClassSig>,
    prefix_class: PrefixTrie<ClassId>,
    rib: Vec<BTreeMap<ClassId, Vec<CBgpRoute>>>,
    /// Whether BGP propagation reached its fixpoint.
    pub converged: bool,
}

impl<'n> ConcreteRoutes<'n> {
    /// Runs concrete IGP + BGP route simulation under `scenario`.
    pub fn compute(net: &'n Network, scenario: &Scenario) -> ConcreteRoutes<'n> {
        let mut igp_dist = HashMap::new();
        for (asn, routers) in net.ases() {
            let members: Vec<RouterId> = routers
                .iter()
                .copied()
                .filter(|&r| net.config(r).isis_enabled)
                .collect();
            if members.is_empty() {
                continue;
            }
            for ip in net.igp_destinations(asn) {
                let d = concrete_igp(net, scenario, &members, ip);
                igp_dist.insert((asn, ip), d);
            }
        }
        let (classes, prefix_class) = classify_prefixes(net);
        let mut state = ConcreteRoutes {
            net,
            scenario: scenario.clone(),
            igp_dist,
            classes,
            prefix_class,
            rib: vec![BTreeMap::new(); net.topo.num_routers()],
            converged: false,
        };
        state.run_bgp();
        state
    }

    /// The shortest distance from `r` to `ip` in the IGP of `asn`.
    pub fn igp_distance(&self, asn: AsNum, ip: Ipv4, r: RouterId) -> Option<u64> {
        self.igp_dist.get(&(asn, ip)).and_then(|v| v[r.0 as usize])
    }

    fn reach(&self, asn: AsNum, r: RouterId, ip: Ipv4) -> bool {
        self.igp_distance(asn, ip, r).is_some()
    }

    fn run_bgp(&mut self) {
        let net = self.net;
        let n = net.topo.num_routers();
        // Origins.
        let mut origins: Vec<BTreeMap<ClassId, CBgpRoute>> = vec![BTreeMap::new(); n];
        for (cid, sig) in self.classes.iter().enumerate() {
            for &(r, _) in &sig.origins {
                if self.scenario.router_alive(r) {
                    origins[r.0 as usize].insert(
                        ClassId(cid as u32),
                        CBgpRoute {
                            as_path: Vec::new(),
                            local_pref: 100,
                            from: BgpFrom::Origin,
                            next_hop: CNextHop::Ip(net.topo.router(r).loopback),
                        },
                    );
                }
            }
        }
        // Session availability.
        let mut sessions: Vec<Vec<(RouterId, BgpSession)>> = vec![Vec::new(); n];
        for r in net.topo.routers() {
            for (peer, sess) in net.bgp_sessions(r) {
                let up = match sess {
                    BgpSession::Ebgp { ulink } => {
                        let (fwd, _) = net.topo.directions(ulink);
                        self.scenario.link_usable(&net.topo, fwd)
                    }
                    BgpSession::Ibgp => {
                        let asn = net.asn(r);
                        self.reach(asn, r, net.topo.router(peer).loopback)
                            && self.reach(asn, peer, net.topo.router(r).loopback)
                    }
                };
                if up {
                    sessions[r.0 as usize].push((peer, sess));
                }
            }
        }

        let mut received: Vec<BTreeMap<ClassId, Vec<CBgpRoute>>> = vec![BTreeMap::new(); n];
        let num_ases = net.ases().len();
        let max_rounds = 2 * (num_ases + 2) + n.min(64) + 8;
        for _ in 0..max_rounds {
            // Exports: selected best class per (router, class).
            let mut ebgp_out: ExportQueues = vec![BTreeMap::new(); n];
            let mut ibgp_out: ExportQueues = vec![BTreeMap::new(); n];
            for r in net.topo.routers() {
                if net.bgp(r).is_none() || !self.scenario.router_alive(r) {
                    continue;
                }
                let mut class_ids: Vec<ClassId> = received[r.0 as usize].keys().copied().collect();
                class_ids.extend(origins[r.0 as usize].keys().copied());
                class_ids.sort();
                class_ids.dedup();
                for cid in class_ids {
                    let mut cands: Vec<CBgpRoute> = Vec::new();
                    if let Some(o) = origins[r.0 as usize].get(&cid) {
                        cands.push(o.clone());
                    }
                    if let Some(l) = received[r.0 as usize].get(&cid) {
                        cands.extend(l.iter().cloned());
                    }
                    if cands.is_empty() {
                        continue;
                    }
                    let best = cands.iter().map(|c| c.pref_key()).min().unwrap();
                    let selected: Vec<&CBgpRoute> =
                        cands.iter().filter(|c| c.pref_key() == best).collect();
                    let mut all: Vec<(Vec<AsNum>, u32)> = selected
                        .iter()
                        .map(|c| (c.as_path.clone(), c.local_pref))
                        .collect();
                    all.sort();
                    all.dedup();
                    let mut not_ibgp: Vec<(Vec<AsNum>, u32)> = selected
                        .iter()
                        .filter(|c| !matches!(c.from, BgpFrom::Ibgp { .. }))
                        .map(|c| (c.as_path.clone(), c.local_pref))
                        .collect();
                    not_ibgp.sort();
                    not_ibgp.dedup();
                    if !all.is_empty() {
                        ebgp_out[r.0 as usize].insert(cid, all);
                    }
                    if !not_ibgp.is_empty() {
                        ibgp_out[r.0 as usize].insert(cid, not_ibgp);
                    }
                }
            }

            // Delivery.
            let mut next: Vec<BTreeMap<ClassId, Vec<CBgpRoute>>> = vec![BTreeMap::new(); n];
            for r in net.topo.routers() {
                let Some(bgp_cfg) = net.bgp(r) else { continue };
                if !self.scenario.router_alive(r) {
                    continue;
                }
                for &(peer, sess) in &sessions[r.0 as usize] {
                    match sess {
                        BgpSession::Ebgp { ulink } => {
                            let (fwd, rev) = net.topo.directions(ulink);
                            let to_peer = if net.topo.link(fwd).from == r {
                                fwd
                            } else {
                                rev
                            };
                            for (cid, advs) in &ebgp_out[peer.0 as usize] {
                                if self.classes[cid.0 as usize].denied(peer, r) {
                                    continue;
                                }
                                for (path, _lp) in advs {
                                    let mut as_path = Vec::with_capacity(path.len() + 1);
                                    as_path.push(net.asn(peer));
                                    as_path.extend_from_slice(path);
                                    if as_path.contains(&net.asn(r)) {
                                        continue;
                                    }
                                    next[r.0 as usize].entry(*cid).or_default().push(CBgpRoute {
                                        as_path,
                                        local_pref: bgp_cfg.local_pref_for(peer),
                                        from: BgpFrom::Ebgp { peer, ulink },
                                        next_hop: CNextHop::Direct(to_peer.0),
                                    });
                                }
                            }
                        }
                        BgpSession::Ibgp => {
                            for (cid, advs) in &ibgp_out[peer.0 as usize] {
                                if self.classes[cid.0 as usize].denied(peer, r) {
                                    continue;
                                }
                                for (path, lp) in advs {
                                    if path.contains(&net.asn(r)) {
                                        continue;
                                    }
                                    next[r.0 as usize].entry(*cid).or_default().push(CBgpRoute {
                                        as_path: path.clone(),
                                        local_pref: *lp,
                                        from: BgpFrom::Ibgp { peer },
                                        next_hop: CNextHop::Ip(net.topo.router(peer).loopback),
                                    });
                                }
                            }
                        }
                    }
                }
                for routes in next[r.0 as usize].values_mut() {
                    routes.sort();
                    routes.dedup();
                }
            }
            if next == received {
                self.converged = true;
                break;
            }
            received = next;
        }

        // Final RIB = origins + received, canonically sorted.
        for r in net.topo.routers() {
            let mut rib = std::mem::take(&mut received[r.0 as usize]);
            if let Some(os) = origins.get(r.0 as usize) {
                for (cid, o) in os {
                    rib.entry(*cid).or_default().push(o.clone());
                }
            }
            for routes in rib.values_mut() {
                routes.sort_by(|a, b| {
                    a.pref_key()
                        .cmp(&b.pref_key())
                        .then_with(|| a.from.cmp(&b.from))
                        .then_with(|| a.as_path.cmp(&b.as_path))
                });
            }
            self.rib[r.0 as usize] = rib;
        }
    }

    /// The concrete FIB rules of `router` matching `dstip`, most specific
    /// and most preferred first — the concrete mirror of
    /// `SymbolicRoutes::fib_rules`.
    pub fn fib_rules(&self, router: RouterId, dstip: Ipv4) -> Vec<CRule> {
        let net = self.net;
        let mut rules = Vec::new();
        if !self.scenario.router_alive(router) {
            return rules;
        }
        let cfg = net.config(router);
        for p in &cfg.connected {
            if p.contains(dstip) {
                rules.push(CRule {
                    prefix: *p,
                    proto: Proto::Connected,
                    next_hop: NextHop::Receive,
                    local_pref: 0,
                    as_path_len: 0,
                    tie: 0,
                });
            }
        }
        if net.topo.router(router).loopback == dstip {
            rules.push(CRule {
                prefix: Prefix::host(dstip),
                proto: Proto::Connected,
                next_hop: NextHop::Receive,
                local_pref: 0,
                as_path_len: 0,
                tie: 1,
            });
        }
        for (i, s) in cfg.static_routes.iter().enumerate() {
            if s.prefix.contains(dstip) {
                rules.push(CRule {
                    prefix: s.prefix,
                    proto: Proto::Static,
                    next_hop: match s.next_hop {
                        StaticNextHop::Null0 => NextHop::Null0,
                        StaticNextHop::Ip(ip) => NextHop::Ip(ip),
                    },
                    local_pref: 0,
                    as_path_len: 0,
                    tie: i as u32,
                });
            }
        }
        if net.bgp(router).is_some() {
            for (prefix, cid) in self.prefix_class.matches(dstip) {
                for (i, cand) in self.rib[router.0 as usize]
                    .get(cid)
                    .map(|v| v.as_slice())
                    .unwrap_or(&[])
                    .iter()
                    .enumerate()
                {
                    let proto = match cand.from {
                        BgpFrom::Origin => continue,
                        BgpFrom::Ebgp { .. } => Proto::Ebgp,
                        BgpFrom::Ibgp { .. } => Proto::Ibgp,
                    };
                    rules.push(CRule {
                        prefix,
                        proto,
                        next_hop: cand.next_hop.into(),
                        local_pref: cand.local_pref,
                        as_path_len: cand.as_path.len() as u32,
                        tie: i as u32,
                    });
                }
            }
        }
        // IS-IS loopback host routes (shortest-path links only).
        let asn = net.asn(router);
        let owner = net.topo.router(router).loopback == dstip && cfg.isis_enabled;
        if !owner {
            if let Some(dist) = self.igp_dist.get(&(asn, dstip)) {
                if let Some(dr) = dist[router.0 as usize] {
                    for l in net.isis_links(router) {
                        if !self.scenario.link_usable(&net.topo, l) {
                            continue;
                        }
                        let u = net.topo.link(l).to;
                        if let Some(du) = dist[u.0 as usize] {
                            if dr == net.topo.link(l).igp_cost + du {
                                rules.push(CRule {
                                    prefix: Prefix::host(dstip),
                                    proto: Proto::Isis,
                                    next_hop: NextHop::Direct(l),
                                    local_pref: 0,
                                    as_path_len: 0,
                                    tie: l.0,
                                });
                            }
                        }
                    }
                }
            }
        }
        rules.sort_by_key(|r| (Reverse(r.prefix.len()), r.pref_key(), r.tie));
        rules
    }

    /// ECMP shares toward IGP destination `ip` at `router`
    /// (concrete `V^IGP`).
    pub fn igp_shares(&self, router: RouterId, ip: Ipv4) -> Vec<(LinkId, Ratio)> {
        let net = self.net;
        let asn = net.asn(router);
        let Some(dist) = self.igp_dist.get(&(asn, ip)) else {
            return Vec::new();
        };
        let Some(dr) = dist[router.0 as usize] else {
            return Vec::new();
        };
        let mut links = Vec::new();
        for l in net.isis_links(router) {
            if !self.scenario.link_usable(&net.topo, l) {
                continue;
            }
            let u = net.topo.link(l).to;
            if let Some(du) = dist[u.0 as usize] {
                if dr == net.topo.link(l).igp_cost + du {
                    links.push(l);
                }
            }
        }
        let share = if links.is_empty() {
            Ratio::ZERO
        } else {
            Ratio::new(1, links.len() as i128)
        };
        links.into_iter().map(|l| (l, share.clone())).collect()
    }

    /// Whether the SR tunnel with `segments` can be established from
    /// `head` (concrete mirror of the guarded SR path computation).
    pub fn sr_path_valid(&self, head: RouterId, segments: &[Ipv4]) -> bool {
        let net = self.net;
        let asn = net.asn(head);
        let mut from = vec![head];
        for &seg in segments {
            if !self.igp_dist.contains_key(&(asn, seg)) {
                return false;
            }
            if !from.iter().any(|&f| self.reach(asn, f, seg)) {
                return false;
            }
            from = net.igp_owners(asn, seg);
            if from.is_empty() {
                return false;
            }
        }
        true
    }

    fn owns(&self, router: RouterId, ip: Ipv4) -> bool {
        self.net.topo.router(router).loopback == ip && self.net.config(router).isis_enabled
    }

    /// Forwards one flow, returning per-link fractions plus delivered and
    /// dropped fractions — the concrete mirror of symbolic traffic
    /// execution (Algorithms 1 and 2).
    pub fn forward_flow(&self, flow: &Flow, max_hops: usize) -> ConcreteFlowResult {
        let mut res = ConcreteFlowResult::default();
        let mut frontier: BTreeMap<(RouterId, Vec<Ipv4>), Ratio> = BTreeMap::new();
        if self.scenario.router_alive(flow.ingress) {
            frontier.insert((flow.ingress, Vec::new()), Ratio::ONE);
        }
        for _hop in 0..max_hops {
            if frontier.is_empty() {
                break;
            }
            let mut next: BTreeMap<(RouterId, Vec<Ipv4>), Ratio> = BTreeMap::new();
            for ((router, stack), amount) in std::mem::take(&mut frontier) {
                self.step(flow, router, &stack, amount, &mut res, &mut next);
            }
            frontier = next;
        }
        res
    }

    /// Processes traffic `amount` of `flow` at `router` with `stack`.
    fn step(
        &self,
        flow: &Flow,
        router: RouterId,
        stack: &[Ipv4],
        amount: Ratio,
        res: &mut ConcreteFlowResult,
        next: &mut BTreeMap<(RouterId, Vec<Ipv4>), Ratio>,
    ) {
        // Pop segments owned by this router.
        let mut stack = stack;
        while let Some((&top, rest)) = stack.split_first() {
            if self.owns(router, top) {
                stack = rest;
            } else {
                break;
            }
        }
        let mut emitted = Ratio::ZERO;
        if let Some((&top, _)) = stack.split_first() {
            // Labeled: forward toward the top segment via IGP.
            for (l, share) in self.igp_shares(router, top) {
                let q = amount.clone() * share;
                if !q.is_zero() {
                    self.emit(l, stack.to_vec(), q.clone(), res, next);
                    emitted += q;
                }
            }
        } else {
            // Plain IP forwarding.
            let rules = self.fib_rules(router, flow.dst);
            // Selected = first (most preferred) class, honoring multipath.
            let selected: Vec<&CRule> = match rules.first() {
                None => Vec::new(),
                Some(first) => {
                    let class: Vec<&CRule> =
                        rules.iter().take_while(|r| r.same_class(first)).collect();
                    let multipath = matches!(first.proto, Proto::Ebgp | Proto::Ibgp)
                        .then(|| self.net.bgp(router).map(|b| b.multipath).unwrap_or(true))
                        .unwrap_or(true);
                    if multipath {
                        class
                    } else {
                        class.into_iter().take(1).collect()
                    }
                }
            };
            if !selected.is_empty() {
                let share = amount.clone() * Ratio::new(1, selected.len() as i128);
                for rule in selected {
                    match rule.next_hop {
                        NextHop::Receive => {
                            let cur = res.delivered.get(&router).cloned().unwrap_or(Ratio::ZERO);
                            res.delivered.insert(router, cur + share.clone());
                            emitted += share.clone();
                        }
                        NextHop::Null0 => {} // falls into the dropped residual
                        NextHop::Direct(l) => {
                            self.emit(l, Vec::new(), share.clone(), res, next);
                            emitted += share.clone();
                        }
                        NextHop::Ip(nip) => {
                            emitted += self.resolve_nh(flow, router, nip, share.clone(), res, next);
                        }
                    }
                }
            }
        }
        let dropped = amount - emitted;
        if !dropped.is_zero() {
            let cur = res.dropped.get(&router).cloned().unwrap_or(Ratio::ZERO);
            res.dropped.insert(router, cur + dropped);
        }
    }

    /// Concrete `resolveNhIp`: SR policy steering or plain IGP iteration.
    /// Returns the fraction successfully emitted.
    fn resolve_nh(
        &self,
        flow: &Flow,
        router: RouterId,
        nip: Ipv4,
        amount: Ratio,
        res: &mut ConcreteFlowResult,
        next: &mut BTreeMap<(RouterId, Vec<Ipv4>), Ratio>,
    ) -> Ratio {
        let mut emitted = Ratio::ZERO;
        if let Some(pol) = self.net.sr_policy(router, nip, flow.dscp) {
            let total: u64 = pol
                .paths
                .iter()
                .filter(|p| self.sr_path_valid(router, &p.segments))
                .map(|p| p.weight)
                .sum();
            if total == 0 {
                return Ratio::ZERO; // no valid tunnel: dropped via residual
            }
            for p in &pol.paths {
                if !self.sr_path_valid(router, &p.segments) {
                    continue;
                }
                let share = amount.clone() * Ratio::new(p.weight as i128, total as i128);
                let first = p.segments[0];
                if self.owns(router, first) {
                    // Degenerate: headend owns the first segment; treat the
                    // remaining stack immediately.
                    self.step(flow, router, &p.segments, share.clone(), res, next);
                    emitted += share;
                    continue;
                }
                for (l, lshare) in self.igp_shares(router, first) {
                    let q = share.clone() * lshare;
                    if !q.is_zero() {
                        self.emit(l, p.segments.clone(), q.clone(), res, next);
                        emitted += q;
                    }
                }
            }
        } else {
            for (l, share) in self.igp_shares(router, nip) {
                let q = amount.clone() * share;
                if !q.is_zero() {
                    self.emit(l, Vec::new(), q.clone(), res, next);
                    emitted += q;
                }
            }
        }
        emitted
    }

    fn emit(
        &self,
        l: LinkId,
        stack: Vec<Ipv4>,
        q: Ratio,
        res: &mut ConcreteFlowResult,
        next: &mut BTreeMap<(RouterId, Vec<Ipv4>), Ratio>,
    ) {
        let cur = res.link_fraction.get(&l).cloned().unwrap_or(Ratio::ZERO);
        res.link_fraction.insert(l, cur + q.clone());
        let to = self.net.topo.link(l).to;
        let key = (to, stack);
        let cur = next.get(&key).cloned().unwrap_or(Ratio::ZERO);
        next.insert(key, cur + q);
    }
}

/// Dijkstra within one AS under a concrete scenario; `None` = unreachable.
fn concrete_igp(
    net: &Network,
    scenario: &Scenario,
    members: &[RouterId],
    ip: Ipv4,
) -> Vec<Option<u64>> {
    use std::collections::BinaryHeap;
    let n = net.topo.num_routers();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut heap: BinaryHeap<(Reverse<u64>, RouterId)> = BinaryHeap::new();
    for &r in members {
        if net.topo.router(r).loopback == ip && scenario.router_alive(r) {
            dist[r.0 as usize] = Some(0);
            heap.push((Reverse(0), r));
        }
    }
    // Dijkstra over *incoming* links: dist[v] is distance from v to the
    // destination, so we relax v -> u edges backwards from u.
    while let Some((Reverse(d), u)) = heap.pop() {
        if dist[u.0 as usize] != Some(d) {
            continue;
        }
        // Every IS-IS link v -> u lets v reach the destination through u.
        for &l in net.topo.in_links(u) {
            let v = net.topo.link(l).from;
            if !net.config(v).isis_enabled || net.asn(v) != net.asn(u) {
                continue;
            }
            if !scenario.link_usable(&net.topo, l) {
                continue;
            }
            let nd = d + net.topo.link(l).igp_cost;
            if dist[v.0 as usize].is_none_or(|old| nd < old) {
                dist[v.0 as usize] = Some(nd);
                heap.push((Reverse(nd), v));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_net::{BgpConfig, Topology, ULinkId};

    fn line_net() -> (Network, [RouterId; 3]) {
        let mut t = Topology::new();
        let cap = Ratio::int(100);
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 300);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 300);
        t.add_link(a, b, 10, cap.clone()); // u0
        t.add_link(b, c, 10, cap.clone()); // u1
        let mut net = Network::new(t);
        for r in [a, b, c] {
            net.config_mut(r).bgp = Some(BgpConfig::default());
        }
        for r in [b, c] {
            net.config_mut(r).isis_enabled = true;
        }
        net.config_mut(c)
            .connected
            .push("100.0.0.0/24".parse().unwrap());
        net.config_mut(c).bgp.as_mut().unwrap().networks = vec!["100.0.0.0/24".parse().unwrap()];
        (net, [a, b, c])
    }

    #[test]
    fn igp_distances() {
        let (net, [_, b, c]) = line_net();
        let routes = ConcreteRoutes::compute(&net, &Scenario::none());
        assert!(routes.converged);
        let cip = net.topo.router(c).loopback;
        assert_eq!(routes.igp_distance(300, cip, b), Some(10));
        assert_eq!(routes.igp_distance(300, cip, c), Some(0));
        let cut = Scenario::links([ULinkId(1)]);
        let routes = ConcreteRoutes::compute(&net, &cut);
        assert_eq!(routes.igp_distance(300, cip, b), None);
    }

    #[test]
    fn end_to_end_delivery() {
        let (net, [a, _, c]) = line_net();
        let routes = ConcreteRoutes::compute(&net, &Scenario::none());
        let flow = Flow::new(
            a,
            Ipv4::new(11, 0, 0, 1),
            "100.0.0.7".parse().unwrap(),
            0,
            Ratio::int(10),
        );
        let res = routes.forward_flow(&flow, 16);
        assert_eq!(res.delivered.get(&c), Some(&Ratio::ONE));
        assert!(res.dropped.is_empty());
        // A->B and B->C each carry the whole flow.
        assert_eq!(res.link_fraction.len(), 2);
        for v in res.link_fraction.values() {
            assert_eq!(*v, Ratio::ONE);
        }
    }

    #[test]
    fn failure_drops_traffic() {
        let (net, [a, b, c]) = line_net();
        let cut = Scenario::links([ULinkId(1)]);
        let routes = ConcreteRoutes::compute(&net, &cut);
        let flow = Flow::new(
            a,
            Ipv4::new(11, 0, 0, 1),
            "100.0.0.7".parse().unwrap(),
            0,
            Ratio::int(10),
        );
        let res = routes.forward_flow(&flow, 16);
        assert!(!res.delivered.contains_key(&c));
        // Either dropped at A (no route once withdrawal propagates) — in a
        // converged control plane A never hears the route, so the drop is
        // at A itself.
        let total_dropped: Ratio = res
            .dropped
            .values()
            .fold(Ratio::ZERO, |acc, v| acc + v.clone());
        assert_eq!(total_dropped, Ratio::ONE);
        let _ = b;
    }

    #[test]
    fn ingress_router_failure_means_no_traffic() {
        let (net, [a, _, _]) = line_net();
        let s = Scenario::routers([a]);
        let routes = ConcreteRoutes::compute(&net, &s);
        let flow = Flow::new(
            a,
            Ipv4::new(11, 0, 0, 1),
            "100.0.0.7".parse().unwrap(),
            0,
            Ratio::int(10),
        );
        let res = routes.forward_flow(&flow, 16);
        assert!(res.link_fraction.is_empty());
        assert!(res.delivered.is_empty());
        assert!(res.dropped.is_empty());
    }
}
