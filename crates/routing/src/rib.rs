//! Guarded FIB rules and their preference order.
//!
//! A guarded RIB (paper §4.1, Fig. 3) extends a concrete RIB with a guard
//! per route: a 0/1 MTBDD over failure variables encoding exactly the
//! scenarios where the route is present. Guards never change a route's
//! attributes, so the preference relation `≺` between rules is static —
//! the property the paper's selection encoding
//! `s_r = g_r ∧ ⋀_{r'≺r} ¬g_{r'}` (§4.4) relies on.
//!
//! This crate unifies all protocols into one rule type ordered by
//! `(prefix length desc, administrative distance asc, local-pref desc,
//! AS-path length asc, tiebreak)`. Longest-prefix match is thereby part of
//! the same symbolic selection: when a more specific route's guard is false
//! (e.g. the `10.1/26` route of the Fig. 10 incident withdrawn by a link
//! failure), a covering route (`10/8` to `Null0`) silently takes over.
//! The failure-dependent IGP-cost tiebreak of full BGP is intentionally not
//! part of `≺` (it would make preference scenario-dependent, which the
//! guarded-RIB model excludes); equally-preferred routes are used as ECMP
//! instead, matching the paper's multipath WAN.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use yu_mtbdd::NodeRef;
use yu_net::{Ipv4, LinkId, Prefix, Proto};

/// Where a rule sends matching traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NextHop {
    /// Out of a specific directed link (directly connected next hop).
    Direct(LinkId),
    /// A recursive next hop, resolved via route iteration (IGP lookup or a
    /// matching SR policy) — paper §4.4 `resolveNhIp`.
    Ip(Ipv4),
    /// Discard the traffic.
    Null0,
    /// Deliver locally (the router owns the destination network).
    Receive,
}

/// One guarded FIB rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Matched destination prefix.
    pub prefix: Prefix,
    /// Originating protocol (determines administrative distance).
    pub proto: Proto,
    /// Next hop.
    pub next_hop: NextHop,
    /// BGP local preference (higher wins); 0 for non-BGP rules.
    pub local_pref: u32,
    /// BGP AS-path length; 0 for non-BGP rules.
    pub as_path_len: u32,
    /// Deterministic tiebreak (origin peer / link id); only consulted when
    /// multipath is disabled.
    pub tie: u32,
    /// Presence guard: 1 exactly in the scenarios where the rule exists.
    pub guard: NodeRef,
}

impl Rule {
    /// The static preference key *within* one prefix length: smaller is
    /// preferred. ECMP candidates share the full key.
    pub fn pref_key(&self) -> (u32, Reverse<u32>, u32) {
        (
            self.proto.admin_distance(),
            Reverse(self.local_pref),
            self.as_path_len,
        )
    }

    /// Whether two rules are in the same preference class (candidates for
    /// multipath ECMP).
    pub fn same_class(&self, other: &Rule) -> bool {
        self.prefix.len() == other.prefix.len() && self.pref_key() == other.pref_key()
    }
}

/// Sorts rules into evaluation order: most-specific prefix first, then by
/// preference, then by tiebreak for determinism.
pub fn sort_rules(rules: &mut [Rule]) {
    rules.sort_by_key(|r| (Reverse(r.prefix.len()), r.pref_key(), r.tie));
}

/// Groups pre-sorted rules into preference classes (each class is an ECMP
/// candidate set; earlier classes strictly preferred).
pub fn class_partition(rules: &[Rule]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0;
    for i in 1..=rules.len() {
        if i == rules.len() || !rules[i].same_class(&rules[start]) {
            out.push(start..i);
            start = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_mtbdd::Mtbdd;

    fn rule(prefix: &str, proto: Proto, lp: u32, aspl: u32, tie: u32, g: NodeRef) -> Rule {
        Rule {
            prefix: prefix.parse().unwrap(),
            proto,
            next_hop: NextHop::Null0,
            local_pref: lp,
            as_path_len: aspl,
            tie,
            guard: g,
        }
    }

    #[test]
    fn ordering_prefers_specific_then_admin_then_lp_then_aspath() {
        let m = Mtbdd::new();
        let g = m.one();
        let mut rules = vec![
            rule("10.0.0.0/8", Proto::Static, 0, 0, 0, g),
            rule("10.1.0.0/26", Proto::Ibgp, 100, 3, 1, g),
            rule("10.1.0.0/26", Proto::Ebgp, 100, 5, 2, g),
            rule("10.1.0.0/26", Proto::Ebgp, 200, 9, 3, g),
            rule("10.1.0.0/26", Proto::Ebgp, 100, 3, 4, g),
        ];
        sort_rules(&mut rules);
        // /26 before /8; within /26 eBGP before iBGP, lp 200 first, then
        // shorter AS path.
        let ties: Vec<u32> = rules.iter().map(|r| r.tie).collect();
        assert_eq!(ties, vec![3, 4, 2, 1, 0]);
    }

    #[test]
    fn class_partition_groups_equals() {
        let m = Mtbdd::new();
        let g = m.one();
        let mut rules = vec![
            rule("10.1.0.0/26", Proto::Ebgp, 100, 1, 0, g),
            rule("10.1.0.0/26", Proto::Ebgp, 100, 1, 1, g),
            rule("10.1.0.0/26", Proto::Ebgp, 100, 2, 2, g),
            rule("10.0.0.0/8", Proto::Ebgp, 100, 1, 3, g),
        ];
        sort_rules(&mut rules);
        let classes = class_partition(&rules);
        assert_eq!(classes, vec![0..2, 2..3, 3..4]);
        assert!(class_partition(&[]).is_empty());
    }
}
