//! # yu-routing
//!
//! Symbolic route simulation — the substrate the YU paper builds on
//! (Hoyan-style guarded RIBs, §4.1) — plus a concrete per-scenario
//! simulator used by the baselines and as a differential-testing oracle.
//!
//! * [`IgpState`]: guarded Bellman–Ford IS-IS distances, reachability
//!   guards, guarded IGP RIB rules, and the `V^IGP` route-iteration
//!   vectors of §4.4.
//! * [`BgpState`]: round-based symbolic eBGP/iBGP propagation with guard
//!   merging (Fig. 6), AS-path loop prevention, local preference, and
//!   prefix classification.
//! * [`guarded_sr_policies`]: SR tunnel establishment guards (Fig. 4).
//! * [`SymbolicRoutes`]: the facade serving unified guarded FIB lookups
//!   (symbolic longest-prefix match across connected/static/BGP/IS-IS).
//! * [`ConcreteRoutes`]: Dijkstra + concrete BGP + concrete traffic
//!   forwarding under a single failure scenario.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgp;
pub mod concrete;
pub mod display;
pub mod igp;
pub mod rib;
pub mod sr;
pub mod symbolic;

pub use bgp::{
    classify_prefixes, BgpFrom, BgpRoute, BgpState, ClassId, ClassSig, OriginKind, OriginSig,
};
pub use concrete::{CRule, ConcreteFlowResult, ConcreteRoutes};
pub use display::{format_fib, format_guard, format_sr_policies};
pub use igp::IgpState;
pub use rib::{class_partition, sort_rules, NextHop, Rule};
pub use sr::{guarded_sr_policies, GuardedSrPath, GuardedSrPolicy};
pub use symbolic::SymbolicRoutes;
