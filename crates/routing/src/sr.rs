//! Guarded segment routing policies (paper §4.1, Fig. 4).
//!
//! The guard of an SR path is the conjunction of IGP reachability guards
//! along its segment list: the tunnel `[E, F]` configured on router D can
//! be established exactly when D reaches E *and* E reaches F via IS-IS
//! (`reach_{D,E} ∧ reach_{E,F}`). For anycast segments (several routers
//! own the segment address, the Fig. 9 configuration) the per-hop guard is
//! the disjunction over owners of the previous segment.

use crate::igp::IgpState;
use yu_mtbdd::{Mtbdd, NodeRef};
use yu_net::{Ipv4, Network, RouterId};

/// One SR path with its establishment guard.
#[derive(Debug, Clone)]
pub struct GuardedSrPath {
    /// Segment list (first segment first).
    pub segments: Vec<Ipv4>,
    /// Load-balancing weight.
    pub weight: u64,
    /// 1 exactly where the tunnel can be established.
    pub guard: NodeRef,
}

/// One SR policy with guarded paths.
#[derive(Debug, Clone)]
pub struct GuardedSrPolicy {
    /// Next-hop address the policy applies to.
    pub endpoint: Ipv4,
    /// Optional DSCP match.
    pub match_dscp: Option<u8>,
    /// Guarded weighted paths.
    pub paths: Vec<GuardedSrPath>,
}

impl GuardedSrPolicy {
    /// Whether this policy applies to `(nip, dscp)`.
    pub fn matches(&self, nip: Ipv4, dscp: u8) -> bool {
        self.endpoint == nip && self.match_dscp.is_none_or(|d| d == dscp)
    }
}

/// Computes the guarded SR policies of every router.
///
/// Segment addresses must be IGP destinations of the policy router's AS;
/// paths referencing unknown segments get guard 0 (the tunnel can never be
/// established).
pub fn guarded_sr_policies(
    m: &mut Mtbdd,
    net: &Network,
    igp: &mut IgpState,
    k: Option<u32>,
) -> Vec<Vec<GuardedSrPolicy>> {
    let mut out = Vec::with_capacity(net.topo.num_routers());
    for r in net.topo.routers() {
        let asn = net.asn(r);
        let mut pols = Vec::new();
        for pol in &net.config(r).sr_policies {
            let mut paths = Vec::new();
            for path in &pol.paths {
                let guard = path_guard(m, net, igp, asn, r, &path.segments);
                let guard = match k {
                    Some(k) => m.kreduce(guard, k),
                    None => guard,
                };
                paths.push(GuardedSrPath {
                    segments: path.segments.clone(),
                    weight: path.weight,
                    guard,
                });
            }
            pols.push(GuardedSrPolicy {
                endpoint: pol.endpoint,
                match_dscp: pol.match_dscp,
                paths,
            });
        }
        out.push(pols);
    }
    out
}

/// `reach(head, s1) ∧ reach(owners(s1), s2) ∧ …` — per-hop IGP
/// reachability along the segment list.
fn path_guard(
    m: &mut Mtbdd,
    net: &Network,
    igp: &mut IgpState,
    asn: yu_net::AsNum,
    head: RouterId,
    segments: &[Ipv4],
) -> NodeRef {
    let mut guard = m.one();
    // Reach from the headend to the first segment.
    let mut from: Vec<RouterId> = vec![head];
    for &seg in segments {
        if !igp.knows(asn, seg) {
            return m.zero();
        }
        let mut hop = m.zero();
        for &f in &from {
            let r = igp.reach(m, asn, f, seg);
            hop = m.or(hop, r);
        }
        guard = m.and(guard, hop);
        from = net.igp_owners(asn, seg);
        if from.is_empty() {
            return m.zero();
        }
    }
    guard
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::igp::IgpState;
    use yu_mtbdd::{Ratio, Term};
    use yu_net::{FailureMode, FailureVars, Scenario, SrPath, SrPolicy, Topology};

    /// D - E - F and D - C - F (C also links to E), AS 300 everywhere.
    fn net_with_policy() -> (Network, RouterId) {
        let mut t = Topology::new();
        let cap = Ratio::int(100);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 300);
        let d = t.add_router("D", Ipv4::new(10, 0, 0, 4), 300);
        let e = t.add_router("E", Ipv4::new(10, 0, 0, 5), 300);
        let f = t.add_router("F", Ipv4::new(10, 0, 0, 6), 300);
        t.add_link(d, e, 10, cap.clone()); // u0
        t.add_link(e, f, 10, cap.clone()); // u1
        t.add_link(d, c, 10, cap.clone()); // u2
        t.add_link(c, f, 10, cap.clone()); // u3
        t.add_link(c, e, 10, cap.clone()); // u4
        let mut net = Network::new(t);
        for r in [c, d, e, f] {
            net.config_mut(r).isis_enabled = true;
        }
        net.config_mut(d).sr_policies.push(SrPolicy {
            endpoint: Ipv4::new(10, 0, 0, 6),
            match_dscp: Some(5),
            paths: vec![
                SrPath {
                    segments: vec![Ipv4::new(10, 0, 0, 5), Ipv4::new(10, 0, 0, 6)],
                    weight: 75,
                },
                SrPath {
                    segments: vec![Ipv4::new(10, 0, 0, 3), Ipv4::new(10, 0, 0, 6)],
                    weight: 25,
                },
            ],
        });
        (net, d)
    }

    #[test]
    fn tunnel_guards_follow_reachability() {
        let (net, d) = net_with_policy();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let mut igp = IgpState::compute(&mut m, &net, &fv, None);
        let sr = guarded_sr_policies(&mut m, &net, &mut igp, None);
        let pol = &sr[d.0 as usize][0];
        assert_eq!(pol.paths.len(), 2);
        // Both tunnels up with no failures.
        for p in &pol.paths {
            assert_eq!(m.eval_all_alive(p.guard), Term::ONE);
        }
        // Isolating E entirely (D-E, C-E, E-F) breaks p1 = [E, F] while
        // p2 = [C, F] stays up via D-C and C-F.
        let s = Scenario::links([yu_net::ULinkId(0), yu_net::ULinkId(4), yu_net::ULinkId(1)]);
        assert_eq!(m.eval(pol.paths[0].guard, fv.assignment(&s)), Term::ZERO);
        assert_eq!(m.eval(pol.paths[1].guard, fv.assignment(&s)), Term::ONE);
        // Isolating F (E-F and C-F down) breaks the final reach of both
        // paths even though all segments before F stay reachable.
        let s = Scenario::links([yu_net::ULinkId(1), yu_net::ULinkId(3)]);
        assert_eq!(m.eval(pol.paths[0].guard, fv.assignment(&s)), Term::ZERO);
        assert_eq!(m.eval(pol.paths[1].guard, fv.assignment(&s)), Term::ZERO);
    }

    #[test]
    fn unknown_segment_never_establishes() {
        let (mut net, d) = net_with_policy();
        net.config_mut(d).sr_policies[0].paths[0].segments = vec![Ipv4::new(9, 9, 9, 9)];
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let mut igp = IgpState::compute(&mut m, &net, &fv, None);
        let sr = guarded_sr_policies(&mut m, &net, &mut igp, None);
        assert_eq!(sr[d.0 as usize][0].paths[0].guard, m.zero());
    }

    #[test]
    fn policy_matching_respects_dscp() {
        let (net, d) = net_with_policy();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let mut igp = IgpState::compute(&mut m, &net, &fv, None);
        let sr = guarded_sr_policies(&mut m, &net, &mut igp, None);
        let pol = &sr[d.0 as usize][0];
        assert!(pol.matches(Ipv4::new(10, 0, 0, 6), 5));
        assert!(!pol.matches(Ipv4::new(10, 0, 0, 6), 0));
    }
}
