//! Human-readable rendering of guarded routing state — the paper's
//! Fig. 3 view ("Prefix / Next Hop / AS Path / Guard"), with guards
//! printed as a disjunction of failure cubes over named links/routers.

use crate::rib::NextHop;
use crate::symbolic::SymbolicRoutes;
use yu_mtbdd::{Mtbdd, NodeRef};
use yu_net::{FailureElement, FailureVars, Ipv4, Network, RouterId};

/// Renders a 0/1 guard as a short sum-of-products formula over element
/// names, e.g. `A-C` for "link A-C alive" and `!B-D` for "link B-D
/// failed". Cubes beyond `max_terms` are elided with `... (+n)`.
pub fn format_guard(
    m: &Mtbdd,
    fv: &FailureVars,
    net: &Network,
    guard: NodeRef,
    max_terms: usize,
) -> String {
    if guard == m.one() {
        return "true".into();
    }
    if guard == m.zero() {
        return "false".into();
    }
    let name = |v: u32| match fv.element_of(v) {
        Some(FailureElement::Link(u)) => net.topo.ulink_label(u),
        Some(FailureElement::Router(r)) => net.topo.router(r).name.clone(),
        None => format!("x{v}"),
    };
    let mut cubes = Vec::new();
    let mut elided = 0usize;
    for path in m.all_paths(guard) {
        if !path.value.is_one() {
            continue;
        }
        if cubes.len() >= max_terms {
            elided += 1;
            continue;
        }
        if path.assignment.is_empty() {
            cubes.push("true".to_string());
            continue;
        }
        let cube: Vec<String> = path
            .assignment
            .iter()
            .map(|&(v, alive)| {
                if alive {
                    name(v)
                } else {
                    format!("!{}", name(v))
                }
            })
            .collect();
        cubes.push(cube.join(" & "));
    }
    let mut out = cubes.join("  |  ");
    if elided > 0 {
        out.push_str(&format!("  | ... (+{elided})"));
    }
    out
}

/// Renders the guarded FIB of `router` for destination `dstip` as a
/// Fig. 3-style table, rules in selection order.
pub fn format_fib(
    m: &mut Mtbdd,
    net: &Network,
    fv: &FailureVars,
    routes: &mut SymbolicRoutes,
    router: RouterId,
    dstip: Ipv4,
) -> String {
    let rules = routes.fib_rules(m, net, fv, router, dstip);
    let mut out = format!(
        "guarded FIB of {} for {}:\n{:<20} {:<10} {:<16} {:>4} {:>6}  guard\n",
        net.topo.router(router).name,
        dstip,
        "prefix",
        "proto",
        "next hop",
        "lp",
        "aspath",
    );
    if rules.is_empty() {
        out.push_str("  (no matching rules)\n");
        return out;
    }
    for rule in rules.iter() {
        let nh = match rule.next_hop {
            NextHop::Direct(l) => format!("-> {}", net.topo.link_label(l)),
            NextHop::Ip(ip) => format!("via {ip}"),
            NextHop::Null0 => "Null0".into(),
            NextHop::Receive => "receive".into(),
        };
        let guard = format_guard(m, fv, net, rule.guard, 4);
        out.push_str(&format!(
            "{:<20} {:<10} {:<16} {:>4} {:>6}  {}\n",
            rule.prefix.to_string(),
            format!("{:?}", rule.proto),
            nh,
            rule.local_pref,
            rule.as_path_len,
            guard
        ));
    }
    out
}

/// Renders the guarded SR policies of `router` (the paper's Fig. 4 view).
pub fn format_sr_policies(
    m: &Mtbdd,
    net: &Network,
    fv: &FailureVars,
    routes: &SymbolicRoutes,
    router: RouterId,
) -> String {
    let pols = &routes.sr[router.0 as usize];
    if pols.is_empty() {
        return format!("{}: no SR policies\n", net.topo.router(router).name);
    }
    let mut out = format!("guarded SR policies of {}:\n", net.topo.router(router).name);
    for pol in pols {
        let dscp = pol
            .match_dscp
            .map(|d| format!(" match dscp {d}"))
            .unwrap_or_default();
        out.push_str(&format!("  to {}{dscp}:\n", pol.endpoint));
        for p in &pol.paths {
            let segs: Vec<String> = p.segments.iter().map(|s| s.to_string()).collect();
            out.push_str(&format!(
                "    path [{}] weight {}  guard: {}\n",
                segs.join(", "),
                p.weight,
                format_guard(m, fv, net, p.guard, 4)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_net::FailureMode;

    #[test]
    fn fig3_style_rib_for_router_a() {
        // Reuse the Fig. 10 miniature from the symbolic tests via a fresh
        // build of the motivating structures: simplest is a two-provider
        // network with one filtered route.
        let mut t = yu_net::Topology::new();
        let cap = yu_mtbdd::Ratio::int(100);
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 300);
        t.add_link(a, c, 10, cap);
        let mut net = Network::new(t);
        for r in [a, c] {
            net.config_mut(r).bgp = Some(yu_net::BgpConfig::default());
        }
        let p: yu_net::Prefix = "100.0.0.0/24".parse().unwrap();
        net.config_mut(c).connected.push(p);
        net.config_mut(c).bgp.as_mut().unwrap().networks = vec![p];

        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        let mut routes = SymbolicRoutes::compute(&mut m, &net, &fv, None);
        let table = format_fib(
            &mut m,
            &net,
            &fv,
            &mut routes,
            a,
            "100.0.0.7".parse().unwrap(),
        );
        assert!(table.contains("100.0.0.0/24"), "{table}");
        assert!(table.contains("Ebgp"), "{table}");
        assert!(
            table.contains("A-C"),
            "guard names the session link: {table}"
        );
    }

    #[test]
    fn guard_formatting_basics() {
        let mut t = yu_net::Topology::new();
        let a = t.add_router("A", Ipv4::new(1, 0, 0, 1), 1);
        let b = t.add_router("B", Ipv4::new(1, 0, 0, 2), 1);
        t.add_link(a, b, 1, yu_mtbdd::Ratio::int(1));
        let net = Network::new(t);
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &net.topo, FailureMode::Links);
        assert_eq!(format_guard(&m, &fv, &net, m.one(), 4), "true");
        assert_eq!(format_guard(&m, &fv, &net, m.zero(), 4), "false");
        let v = fv.link_var(yu_net::ULinkId(0)).unwrap();
        let g = m.var_guard(v);
        assert_eq!(format_guard(&m, &fv, &net, g, 4), "A-B");
        let ng = m.nvar_guard(v);
        assert_eq!(format_guard(&m, &fv, &net, ng, 4), "!A-B");
    }
}
