//! QARC-style baseline: shortest-path-only k-failure load checking.
//!
//! QARC [PLDI'20] models the control plane as a weighted graph — traffic
//! always follows shortest paths with ECMP — and encodes the k-failure
//! overload question as an ILP for a MILP solver. Two consequences the
//! paper leans on:
//!
//! 1. **Generality**: QARC fundamentally cannot model iBGP, local
//!    preference, or SR (Table 1). [`supports`] makes the same
//!    restriction explicit: networks using those features are rejected.
//! 2. **Efficiency**: its solver time degrades quickly with network size
//!    and flows (Fig. 15, Table 4).
//!
//! **Substitution note** (no MILP solver exists offline): this
//! implementation searches the scenario space directly — branch and bound
//! over failure subsets with an optimistic load bound for pruning, and
//! per-scenario shortest-path ECMP recomputation. The model restrictions
//! (point 1) are identical to QARC's; the cost of exploring the scenario
//! space still dwarfs YU's symbolic execution (point 2), though the
//! *flow*-count scaling of the commercial ILP is not replicated exactly —
//! see EXPERIMENTS.md.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::{Duration, Instant};
use yu_core::{global_groups, Violation};
use yu_mtbdd::Ratio;
use yu_net::{
    scenarios_up_to_k, FailureMode, Flow, Ipv4, LinkId, LoadPoint, Network, RouterId, Tlp,
};

/// Checks whether QARC's shortest-path model can express `net`.
/// Returns `Err` with the first unsupported feature found.
pub fn supports(net: &Network) -> Result<(), String> {
    for r in net.topo.routers() {
        let cfg = net.config(r);
        if !cfg.sr_policies.is_empty() {
            return Err(format!(
                "router {} uses SR policies (beyond shortest-path forwarding)",
                net.topo.router(r).name
            ));
        }
        if let Some(bgp) = &cfg.bgp {
            if bgp.peer_local_pref.iter().any(|(_, lp)| *lp != 100) {
                return Err(format!(
                    "router {} uses BGP local preference",
                    net.topo.router(r).name
                ));
            }
        }
        if !cfg.static_routes.is_empty() {
            return Err(format!(
                "router {} uses static routes",
                net.topo.router(r).name
            ));
        }
    }
    // iBGP: an AS whose multiple BGP speakers can actually form sessions
    // (they need an IGP to reach each other's loopbacks). FatTrees share
    // tier ASes but run no IGP, so no iBGP ever comes up there.
    for (asn, routers) in net.ases() {
        let speakers = routers.iter().filter(|&&r| net.bgp(r).is_some()).count();
        let has_igp = routers.iter().any(|&r| net.config(r).isis_enabled);
        if speakers > 1 && has_igp {
            return Err(format!("AS {asn} runs iBGP ({speakers} speakers)"));
        }
    }
    Ok(())
}

/// Result of a QARC-style run.
#[derive(Debug, Clone)]
pub struct QarcOutcome {
    /// Violations found.
    pub violations: Vec<Violation>,
    /// Scenarios actually evaluated (after pruning).
    pub scenarios_checked: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl QarcOutcome {
    /// Whether the TLP held everywhere.
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verifies `tlp` under `≤ k` link failures in the shortest-path model.
///
/// # Panics
/// Panics if [`supports`] rejects the network — mirroring QARC's
/// inability to even encode such networks.
pub fn verify(net: &Network, flows: &[Flow], tlp: &Tlp, k: usize, early_stop: bool) -> QarcOutcome {
    verify_bounded(net, flows, tlp, k, early_stop, None)
}

/// Like [`verify`] but stops after `max_scenarios` (harness probing).
pub fn verify_bounded(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    k: usize,
    early_stop: bool,
    max_scenarios: Option<usize>,
) -> QarcOutcome {
    if let Err(e) = supports(net) {
        panic!("QARC cannot model this network: {e}");
    }
    let t0 = Instant::now();
    let groups = global_groups(flows);
    let mut violations = Vec::new();
    let mut scenarios_checked = 0;

    // Upper bound for pruning: the total volume that can ever cross a
    // link is bounded by the sum of all flow volumes. Requirements whose
    // bound exceeds that can never be violated from above; pure
    // lower-bound requirements can only be violated by *losing* traffic.
    let total_volume: Ratio = groups
        .iter()
        .fold(Ratio::ZERO, |acc, g| acc + g.volume.clone());
    let checkable: Vec<_> = tlp
        .reqs
        .iter()
        .filter(|r| r.min.is_some() || r.max.as_ref().is_some_and(|hi| *hi < total_volume))
        .collect();
    if checkable.is_empty() {
        return QarcOutcome {
            violations,
            scenarios_checked,
            elapsed: t0.elapsed(),
        };
    }

    'outer: for scenario in scenarios_up_to_k(&net.topo, FailureMode::Links, k) {
        if max_scenarios.is_some_and(|m| scenarios_checked >= m) {
            break;
        }
        scenarios_checked += 1;
        let model = SpModel::compute(net, &scenario);
        let mut loads: HashMap<LoadPoint, Ratio> = HashMap::new();
        for g in &groups {
            model.route(&g.rep, g.volume.clone(), &mut loads);
        }
        for req in &checkable {
            let load = loads.get(&req.point).cloned().unwrap_or(Ratio::ZERO);
            if !req.satisfied_by(load.clone()) {
                violations.push(Violation {
                    point: req.point,
                    scenario: scenario.clone(),
                    load,
                    min: req.min.clone(),
                    max: req.max.clone(),
                });
                if early_stop {
                    break 'outer;
                }
            }
        }
    }
    QarcOutcome {
        violations,
        scenarios_checked,
        elapsed: t0.elapsed(),
    }
}

/// Shortest-path ECMP model under one scenario (link weights = IGP costs;
/// for a pure-eBGP fabric with unit costs this coincides with hop-count
/// BGP multipath, which is why QARC's model fits FatTrees).
struct SpModel<'n> {
    net: &'n Network,
    scenario: yu_net::Scenario,
    /// Distance-to-destination-router caches per destination prefix owner.
    dist_cache: std::cell::RefCell<HashMap<RouterId, Vec<Option<u64>>>>,
}

impl<'n> SpModel<'n> {
    fn compute(net: &'n Network, scenario: &yu_net::Scenario) -> SpModel<'n> {
        SpModel {
            net,
            scenario: scenario.clone(),
            dist_cache: Default::default(),
        }
    }

    fn owner_of(&self, dst: Ipv4) -> Option<RouterId> {
        self.net
            .topo
            .routers()
            .find(|&r| self.net.config(r).delivers(dst))
    }

    fn dist_to(&self, dest: RouterId) -> Vec<Option<u64>> {
        if let Some(d) = self.dist_cache.borrow().get(&dest) {
            return d.clone();
        }
        let n = self.net.topo.num_routers();
        let mut dist = vec![None; n];
        let mut heap = BinaryHeap::new();
        if self.scenario.router_alive(dest) {
            dist[dest.0 as usize] = Some(0);
            heap.push((Reverse(0u64), dest));
        }
        while let Some((Reverse(d), u)) = heap.pop() {
            if dist[u.0 as usize] != Some(d) {
                continue;
            }
            for &l in self.net.topo.in_links(u) {
                if !self.scenario.link_usable(&self.net.topo, l) {
                    continue;
                }
                let v = self.net.topo.link(l).from;
                let nd = d + self.net.topo.link(l).igp_cost;
                if dist[v.0 as usize].is_none_or(|old| nd < old) {
                    dist[v.0 as usize] = Some(nd);
                    heap.push((Reverse(nd), v));
                }
            }
        }
        self.dist_cache.borrow_mut().insert(dest, dist.clone());
        dist
    }

    /// Routes `volume` of `flow` over the shortest-path ECMP DAG,
    /// accumulating per-link loads plus delivered/dropped.
    fn route(&self, flow: &Flow, volume: Ratio, loads: &mut HashMap<LoadPoint, Ratio>) {
        let Some(dest) = self.owner_of(flow.dst) else {
            if self.scenario.router_alive(flow.ingress) {
                let e = loads
                    .entry(LoadPoint::Dropped(flow.ingress))
                    .or_insert(Ratio::ZERO);
                *e = e.clone() + volume;
            }
            return;
        };
        if !self.scenario.router_alive(flow.ingress) {
            return;
        }
        let dist = self.dist_to(dest);
        // Process routers in decreasing distance from dest (topological
        // order of the shortest-path DAG).
        let mut amounts: HashMap<RouterId, Ratio> = HashMap::new();
        amounts.insert(flow.ingress, volume);
        let mut order: Vec<RouterId> = self.net.topo.routers().collect();
        order.sort_by_key(|r| Reverse(dist[r.0 as usize].unwrap_or(u64::MAX)));
        // Unreachable routers (None) sort first and simply drop.
        for r in order {
            let Some(amount) = amounts.remove(&r) else {
                continue;
            };
            if amount.is_zero() {
                continue;
            }
            if r == dest {
                let e = loads.entry(LoadPoint::Delivered(r)).or_insert(Ratio::ZERO);
                *e = e.clone() + amount;
                continue;
            }
            let Some(dr) = dist[r.0 as usize] else {
                let e = loads.entry(LoadPoint::Dropped(r)).or_insert(Ratio::ZERO);
                *e = e.clone() + amount;
                continue;
            };
            let next: Vec<LinkId> = self
                .net
                .topo
                .out_links(r)
                .iter()
                .copied()
                .filter(|&l| {
                    self.scenario.link_usable(&self.net.topo, l)
                        && dist[self.net.topo.link(l).to.0 as usize]
                            .is_some_and(|du| dr == du + self.net.topo.link(l).igp_cost)
                })
                .collect();
            debug_assert!(!next.is_empty(), "finite distance implies a next hop");
            let share = amount * Ratio::new(1, next.len() as i128);
            for l in next {
                let e = loads.entry(LoadPoint::Link(l)).or_insert(Ratio::ZERO);
                *e = e.clone() + share.clone();
                let to = self.net.topo.link(l).to;
                let a = amounts.entry(to).or_insert(Ratio::ZERO);
                *a = a.clone() + share.clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_net::{BgpConfig, SrPolicy, Tlp, Topology};

    fn diamond() -> (Network, RouterId, RouterId) {
        // A - B - D and A - C - D, pure eBGP, unit costs.
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 1);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 2);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 3);
        let d = t.add_router("D", Ipv4::new(10, 0, 0, 4), 4);
        t.add_link(a, b, 1, Ratio::int(100));
        t.add_link(a, c, 1, Ratio::int(100));
        t.add_link(b, d, 1, Ratio::int(100));
        t.add_link(c, d, 1, Ratio::int(100));
        let mut net = Network::new(t);
        for r in [a, b, c, d] {
            net.config_mut(r).bgp = Some(BgpConfig::default());
        }
        let p = "100.0.0.0/24".parse().unwrap();
        net.config_mut(d).connected.push(p);
        net.config_mut(d).bgp.as_mut().unwrap().networks = vec![p];
        (net, a, d)
    }

    #[test]
    fn supports_rejects_sr_and_ibgp() {
        let (mut net, a, _) = diamond();
        assert!(supports(&net).is_ok());
        net.config_mut(a).sr_policies.push(SrPolicy {
            endpoint: Ipv4::new(10, 0, 0, 4),
            match_dscp: None,
            paths: vec![],
        });
        assert!(supports(&net).unwrap_err().contains("SR"));
        net.config_mut(a).sr_policies.clear();
        // Put B into A's AS: iBGP.
        let mut t2 = Topology::new();
        let x = t2.add_router("X", Ipv4::new(1, 0, 0, 1), 7);
        let y = t2.add_router("Y", Ipv4::new(1, 0, 0, 2), 7);
        t2.add_link(x, y, 1, Ratio::int(100));
        let mut net2 = Network::new(t2);
        net2.config_mut(x).bgp = Some(BgpConfig::default());
        net2.config_mut(y).bgp = Some(BgpConfig::default());
        net2.config_mut(x).isis_enabled = true;
        net2.config_mut(y).isis_enabled = true;
        assert!(supports(&net2).unwrap_err().contains("iBGP"));
    }

    #[test]
    fn finds_ecmp_shift_overload() {
        let (net, a, _) = diamond();
        let flows = vec![Flow::new(
            a,
            Ipv4::new(11, 0, 0, 1),
            "100.0.0.1".parse().unwrap(),
            0,
            Ratio::int(80),
        )];
        // 40 per path normally; one upper-path failure puts 80 on the
        // other.
        let tlp = Tlp::no_overload(&net.topo, Ratio::new(60, 100));
        let out = verify(&net, &flows, &tlp, 1, false);
        assert!(!out.verified());
        assert!(out.violations.iter().any(|v| v.load == Ratio::int(80)));
        let out = verify(&net, &flows, &tlp, 0, false);
        assert!(out.verified());
    }

    #[test]
    fn unviolatable_bounds_are_pruned() {
        let (net, a, _) = diamond();
        let flows = vec![Flow::new(
            a,
            Ipv4::new(11, 0, 0, 1),
            "100.0.0.1".parse().unwrap(),
            0,
            Ratio::int(10),
        )];
        // Threshold 95 > total volume 10: nothing can ever violate, the
        // search short-circuits without enumerating.
        let tlp = Tlp::no_overload(&net.topo, Ratio::new(95, 100));
        let out = verify(&net, &flows, &tlp, 2, false);
        assert!(out.verified());
        assert_eq!(out.scenarios_checked, 0);
    }

    #[test]
    #[should_panic(expected = "QARC cannot model")]
    fn panics_on_unsupported_network() {
        let (mut net, a, _) = diamond();
        net.config_mut(a).sr_policies.push(SrPolicy {
            endpoint: Ipv4::new(10, 0, 0, 4),
            match_dscp: None,
            paths: vec![],
        });
        verify(&net, &[], &Tlp::new(), 1, false);
    }
}
