//! Jingubang-style baseline: exhaustive per-scenario verification.
//!
//! Jingubang [NSDI'24] verifies TLPs for **one** failure scenario at a
//! time. To answer the k-failure question it must enumerate all
//! `Σ_{i<=k} C(n, i)` scenarios and run a (concrete) traffic simulation
//! for each — the cost YU's single symbolic execution avoids. This module
//! implements that baseline on top of the concrete simulator. (The
//! original system simulates incrementally between adjacent scenarios; we
//! re-simulate from scratch, which changes constants but not the
//! enumeration blow-up — the paper's own Fig. 11 shows even incremental
//! Jingubang is 448× slower than YU at N0, k=2.)

use std::collections::HashMap;
use std::time::{Duration, Instant};
use yu_core::{global_groups, FlowGroup, Violation};
use yu_mtbdd::Ratio;
use yu_net::{scenarios_up_to_k, FailureMode, Flow, LoadPoint, Network, Scenario, Tlp};
use yu_routing::ConcreteRoutes;

/// Result of a Jingubang-style run.
#[derive(Debug, Clone)]
pub struct JingubangOutcome {
    /// Violations found (at most one per (scenario, requirement) until
    /// `early_stop`).
    pub violations: Vec<Violation>,
    /// Scenarios simulated.
    pub scenarios_checked: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl JingubangOutcome {
    /// Whether the TLP held in every scenario checked.
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verifies `tlp` by enumerating every `≤ k`-failure scenario and running
/// a concrete traffic simulation in each.
pub fn verify(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    k: usize,
    mode: FailureMode,
    max_hops: usize,
    early_stop: bool,
) -> JingubangOutcome {
    verify_bounded(net, flows, tlp, k, mode, max_hops, early_stop, None)
}

/// Re-simulates exactly one failure scenario with the enumerative
/// engine and returns every non-zero traffic load (links crossed,
/// delivered, dropped). This is the per-scenario unit of work of the
/// Jingubang loop exposed on its own — the independent oracle behind
/// YU's violation forensics: a symbolic counterexample load can be
/// cross-checked bit-exactly against this concrete replay.
pub fn replay_scenario(
    net: &Network,
    flows: &[Flow],
    scenario: &Scenario,
    max_hops: usize,
) -> HashMap<LoadPoint, Ratio> {
    scenario_loads(net, &global_groups(flows), scenario, max_hops)
}

/// One concrete simulation: per-point loads of `groups` under `scenario`.
fn scenario_loads(
    net: &Network,
    groups: &[FlowGroup],
    scenario: &Scenario,
    max_hops: usize,
) -> HashMap<LoadPoint, Ratio> {
    let routes = ConcreteRoutes::compute(net, scenario);
    let mut loads: HashMap<LoadPoint, Ratio> = HashMap::new();
    for g in groups {
        let res = routes.forward_flow(&g.rep, max_hops);
        for (l, frac) in &res.link_fraction {
            let e = loads.entry(LoadPoint::Link(*l)).or_insert(Ratio::ZERO);
            *e = e.clone() + frac.clone() * g.volume.clone();
        }
        for (r, frac) in &res.delivered {
            let e = loads.entry(LoadPoint::Delivered(*r)).or_insert(Ratio::ZERO);
            *e = e.clone() + frac.clone() * g.volume.clone();
        }
        for (r, frac) in &res.dropped {
            let e = loads.entry(LoadPoint::Dropped(*r)).or_insert(Ratio::ZERO);
            *e = e.clone() + frac.clone() * g.volume.clone();
        }
    }
    loads
}

/// Like [`verify`] but stops after `max_scenarios` (used by the figure
/// harness to probe per-scenario cost and extrapolate enormous cells).
#[allow(clippy::too_many_arguments)]
pub fn verify_bounded(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    k: usize,
    mode: FailureMode,
    max_hops: usize,
    early_stop: bool,
    max_scenarios: Option<usize>,
) -> JingubangOutcome {
    let t0 = Instant::now();
    let groups = global_groups(flows);
    let mut violations = Vec::new();
    let mut scenarios_checked = 0;
    'outer: for scenario in scenarios_up_to_k(&net.topo, mode, k) {
        if max_scenarios.is_some_and(|m| scenarios_checked >= m) {
            break;
        }
        scenarios_checked += 1;
        let loads = scenario_loads(net, &groups, &scenario, max_hops);
        for req in &tlp.reqs {
            let load = loads.get(&req.point).cloned().unwrap_or(Ratio::ZERO);
            if !req.satisfied_by(load.clone()) {
                violations.push(Violation {
                    point: req.point,
                    scenario: scenario.clone(),
                    load,
                    min: req.min.clone(),
                    max: req.max.clone(),
                });
                if early_stop {
                    break 'outer;
                }
            }
        }
    }
    JingubangOutcome {
        violations,
        scenarios_checked,
        elapsed: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_net::{BgpConfig, Ipv4, RouterId, Scenario, Tlp, TlpReq, Topology, ULinkId};

    /// A - B with a parallel pair of A-B links; 10 Gbps flow.
    fn pair_net() -> (Network, RouterId, RouterId) {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 200);
        t.add_link(a, b, 10, Ratio::int(100));
        t.add_link(a, b, 10, Ratio::int(100));
        let mut net = Network::new(t);
        for r in [a, b] {
            net.config_mut(r).bgp = Some(BgpConfig::default());
        }
        let p = "100.0.0.0/24".parse().unwrap();
        net.config_mut(b).connected.push(p);
        net.config_mut(b).bgp.as_mut().unwrap().networks = vec![p];
        (net, a, b)
    }

    #[test]
    fn enumerates_and_finds_single_failure_overload() {
        let (net, a, _b) = pair_net();
        let flows = vec![Flow::new(
            a,
            Ipv4::new(11, 0, 0, 1),
            "100.0.0.1".parse().unwrap(),
            0,
            Ratio::int(80),
        )];
        // 80 Gbps over two links = 40 each; one failure puts 80 > 60 on
        // the survivor.
        let tlp = Tlp::no_overload(&net.topo, Ratio::new(60, 100));
        let out = verify(&net, &flows, &tlp, 1, FailureMode::Links, 16, false);
        // 1 + 2 scenarios.
        assert_eq!(out.scenarios_checked, 3);
        assert!(!out.verified());
        assert!(out
            .violations
            .iter()
            .all(|v| v.scenario.failed_links.len() == 1));
        assert!(out.violations.iter().any(|v| v.load == Ratio::int(80)));
        // k = 0: no failure, 40 <= 60 everywhere.
        let out = verify(&net, &flows, &tlp, 0, FailureMode::Links, 16, false);
        assert!(out.verified());
    }

    #[test]
    fn early_stop_halts_enumeration() {
        let (net, a, b) = pair_net();
        let flows = vec![Flow::new(
            a,
            Ipv4::new(11, 0, 0, 1),
            "100.0.0.1".parse().unwrap(),
            0,
            Ratio::int(80),
        )];
        let tlp = Tlp::new().with(TlpReq::at_least(LoadPoint::Delivered(b), Ratio::int(50)));
        let out = verify(&net, &flows, &tlp, 2, FailureMode::Links, 16, true);
        assert_eq!(out.violations.len(), 1);
        // The both-links-down scenario is the only violating one.
        assert_eq!(
            out.violations[0].scenario,
            Scenario::links([ULinkId(0), ULinkId(1)])
        );
        assert!(out.scenarios_checked <= 4);
    }
}
