//! # yu-baselines
//!
//! The two state-of-the-art systems the paper compares YU against (§7),
//! re-implemented as honest baselines:
//!
//! * [`jingubang`] — per-scenario concrete simulation, forced to
//!   enumerate all `Σ C(n, i)` failure scenarios;
//! * [`qarc`] — the shortest-path-only model (it rejects iBGP/SR/static
//!   networks, as the real QARC cannot express them) searched over the
//!   scenario space with pruning.
//!
//! Both agree bit-for-bit with YU's verdicts on supported networks — the
//! integration tests rely on that — they just pay the enumeration cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jingubang;
pub mod qarc;

pub use jingubang::{
    replay_scenario, verify as jingubang_verify, verify_bounded as jingubang_verify_bounded,
    JingubangOutcome,
};
pub use qarc::{
    supports as qarc_supports, verify as qarc_verify, verify_bounded as qarc_verify_bounded,
    QarcOutcome,
};
