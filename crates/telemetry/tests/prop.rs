//! Property and schema tests for the telemetry collector and exporters.
//!
//! Tests that record through the collector use per-thread isolation
//! (`take_thread_log`) so they can run concurrently under the default
//! test harness; only `flush_snapshot_reset_lifecycle` touches the
//! global flushed-log registry.

use std::collections::BTreeMap;

use proptest::prelude::*;
use yu_telemetry::{
    counter, gauge_max, set_enabled, set_thread_track, span, take_thread_log, SpanEvent,
    TelemetryReport, ThreadLog,
};

/// Runs a stack program of open (`true`) / close (`false`) ops with real
/// RAII spans, returning the recorded log plus the expected
/// (completion-order, depth) sequence.
fn run_stack_program(ops: &[bool]) -> (ThreadLog, Vec<u32>) {
    set_enabled(true);
    let _ = take_thread_log(); // drop any residue from this harness thread
    let mut stack: Vec<yu_telemetry::Span> = Vec::new();
    let mut expected_depths = Vec::new();
    for &open in ops {
        if open {
            if stack.len() < 8 {
                stack.push(span("stage"));
            }
        } else if !stack.is_empty() {
            expected_depths.push((stack.len() - 1) as u32);
            stack.pop();
        }
    }
    while let Some(_s) = stack.pop() {
        expected_depths.push(stack.len() as u32);
    }
    (take_thread_log(), expected_depths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Span nesting: recorded depths match the stack discipline, and a
    /// span completing earlier but starting later is contained in time.
    #[test]
    fn span_nesting_matches_stack(ops in proptest::collection::vec(any::<bool>(), 0..40)) {
        let (log, expected_depths) = run_stack_program(&ops);
        let depths: Vec<u32> = log.spans.iter().map(|s| s.depth).collect();
        prop_assert_eq!(&depths, &expected_depths);
        for s in &log.spans {
            prop_assert!(s.name == "stage");
        }
        // Laminar containment: on one thread, if span i completed before
        // span j but started at-or-after it, i nests inside j.
        for (i, a) in log.spans.iter().enumerate() {
            for b in log.spans.iter().skip(i + 1) {
                if a.start_us >= b.start_us {
                    prop_assert!(
                        a.start_us + a.dur_us <= b.start_us + b.dur_us,
                        "inner span must end within its enclosing span"
                    );
                    // Timestamps tie at µs resolution, so a sibling that
                    // opened and closed within b's starting microsecond
                    // can share b's start; only a strictly later start
                    // proves true nesting.
                    if a.start_us > b.start_us {
                        prop_assert!(a.depth > b.depth);
                    }
                }
            }
        }
    }

    /// Counter/gauge merge across threads: totals are sums, gauges are
    /// maxima, regardless of how increments are split across threads.
    #[test]
    fn merge_sums_counters_and_maxes_gauges(
        incs in proptest::collection::vec((0u32..4, 0u64..1000), 0..60),
        nthreads in 1usize..5,
    ) {
        const NAMES: [&str; 4] = ["c.a", "c.b", "g.a", "g.b"];
        // Reference fold over all increments, ignoring thread split.
        let mut want_counters: BTreeMap<&str, u64> = BTreeMap::new();
        let mut want_gauges: BTreeMap<&str, u64> = BTreeMap::new();
        // Per-thread logs built the way worker threads build them.
        let mut threads: Vec<ThreadLog> = (0..nthreads)
            .map(|i| ThreadLog {
                track: format!("worker-{i}"),
                ..ThreadLog::default()
            })
            .collect();
        for (i, &(which, v)) in incs.iter().enumerate() {
            let name = NAMES[which as usize];
            let t = &mut threads[i % nthreads];
            if name.starts_with("c.") {
                *want_counters.entry(name).or_insert(0) += v;
                *t.counters.entry(name).or_insert(0) += v;
            } else {
                let w = want_gauges.entry(name).or_insert(0);
                *w = (*w).max(v);
                let g = t.gauges.entry(name).or_insert(0);
                *g = (*g).max(v);
            }
        }
        let report = TelemetryReport { threads };
        let got_counters = report.counter_totals();
        let got_gauges = report.gauge_maxes();
        for (k, v) in &want_counters {
            prop_assert_eq!(got_counters.get(*k).copied().unwrap_or(0), *v);
        }
        for (k, v) in &want_gauges {
            prop_assert_eq!(got_gauges.get(*k).copied().unwrap_or(0), *v);
        }
        prop_assert_eq!(got_counters.values().sum::<u64>(), want_counters.values().sum::<u64>());
    }

    /// Stage aggregation: count/total/min/max over synthetic spans match
    /// a direct fold.
    #[test]
    fn stage_aggs_match_reference(durs in proptest::collection::vec(0u64..10_000, 1..50)) {
        let spans: Vec<SpanEvent> = durs
            .iter()
            .enumerate()
            .map(|(i, &d)| SpanEvent {
                name: if i % 2 == 0 { "even" } else { "odd" },
                detail: None,
                start_us: i as u64 * 10_000,
                dur_us: d,
                depth: 0,
            })
            .collect();
        let report = TelemetryReport {
            threads: vec![ThreadLog { track: "main".into(), spans, ..ThreadLog::default() }],
        };
        let aggs = report.stage_aggs();
        for name in ["even", "odd"] {
            let want: Vec<u64> = durs
                .iter()
                .enumerate()
                .filter(|(i, _)| (i % 2 == 0) == (name == "even"))
                .map(|(_, &d)| d)
                .collect();
            match aggs.get(name) {
                None => prop_assert!(want.is_empty()),
                Some(a) => {
                    prop_assert_eq!(a.count, want.len() as u64);
                    prop_assert_eq!(a.total_us, want.iter().sum::<u64>());
                    prop_assert_eq!(a.min_us, want.iter().copied().min().unwrap());
                    prop_assert_eq!(a.max_us, want.iter().copied().max().unwrap());
                }
            }
        }
    }
}

/// Records on real spawned threads, exports Chrome trace JSON, and
/// validates the trace-event schema with the JSON parser.
#[test]
fn chrome_trace_schema_is_valid() {
    set_enabled(true);
    let mut threads: Vec<ThreadLog> = Vec::new();
    let handles: Vec<_> = (0..3)
        .map(|w| {
            std::thread::spawn(move || {
                set_thread_track(format!("worker-{w}"));
                {
                    let _outer = span("exec.worker");
                    let _inner = span("exec.flow");
                    counter("flows", 1 + w);
                    gauge_max("peak", 100 * (w + 1));
                }
                take_thread_log()
            })
        })
        .collect();
    for h in handles {
        threads.push(h.join().expect("worker panicked"));
    }
    let report = TelemetryReport { threads };
    let json = report.chrome_trace_json();

    let v: serde::Value = serde_json::from_str(&json).expect("trace output must be valid JSON");
    let root = v.as_object().expect("trace root is an object");
    let events = root
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents is an array");

    let mut tracks = std::collections::BTreeSet::new();
    let mut metadata_names = std::collections::BTreeSet::new();
    let mut complete_events = 0;
    for ev in events {
        let ev = ev.as_object().expect("every event is an object");
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph present");
        let tid = match ev.get("tid") {
            Some(serde::Value::Int(t)) => t,
            other => panic!("tid must be an integer, got {other:?}"),
        };
        assert!(ev.get("pid").is_some(), "pid present");
        tracks.insert(tid);
        match ph {
            "M" => {
                let kind = ev
                    .get("name")
                    .and_then(|n| n.as_str())
                    .expect("metadata kind");
                assert!(
                    kind == "thread_name" || kind == "process_name",
                    "unexpected metadata kind {kind:?}"
                );
                let label = ev
                    .get("args")
                    .and_then(|a| a.as_object())
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .expect("name metadata carries args.name");
                if kind == "thread_name" {
                    metadata_names.insert(label.to_string());
                } else {
                    assert_eq!(label, "yu");
                }
            }
            "X" => {
                complete_events += 1;
                assert!(ev.get("name").and_then(|n| n.as_str()).is_some());
                for field in ["ts", "dur"] {
                    match ev.get(field) {
                        Some(serde::Value::Int(n)) => assert!(*n >= 0),
                        other => panic!("{field} must be a non-negative integer, got {other:?}"),
                    }
                }
            }
            "C" => {
                // Registry histogram counter tracks: self-described args.
                let args = ev
                    .get("args")
                    .and_then(|a| a.as_object())
                    .expect("counter events carry args");
                assert!(args.get("count").is_some() && args.get("sum").is_some());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    // tid 0 is the process/counter pseudo-track; workers are 1..=3.
    assert!(
        tracks.len() == 3 || tracks.len() == 4,
        "one track per worker thread (plus the process pseudo-track)"
    );
    assert_eq!(complete_events, 6, "two spans per worker");
    for w in 0..3 {
        assert!(
            metadata_names.contains(&format!("worker-{w}")),
            "missing thread_name metadata for worker-{w}"
        );
    }
}

/// Disabled telemetry records nothing, and re-enabling works.
#[test]
fn disabled_records_nothing() {
    set_enabled(false);
    let _ = take_thread_log();
    {
        let _s = span("ghost");
        counter("ghost", 7);
        gauge_max("ghost", 7);
    }
    let log = take_thread_log();
    assert!(log.spans.is_empty() && log.counters.is_empty() && log.gauges.is_empty());
    set_enabled(true);
    {
        let _s = span("real");
    }
    let log = take_thread_log();
    assert_eq!(log.spans.len(), 1);
    assert_eq!(log.spans[0].name, "real");
}

/// The one test allowed to touch the global registry: flush from a
/// worker, snapshot from the main thread, then reset.
#[test]
fn flush_snapshot_reset_lifecycle() {
    set_enabled(true);
    yu_telemetry::reset();
    std::thread::spawn(|| {
        set_thread_track("worker-0".to_string());
        let _s = span("exec.worker");
        drop(_s);
        yu_telemetry::flush_thread();
    })
    .join()
    .expect("worker panicked");

    {
        let _s = span("verify");
    }
    let report = yu_telemetry::snapshot();
    let tracks: Vec<&str> = report.threads.iter().map(|t| t.track.as_str()).collect();
    assert!(tracks.contains(&"worker-0"), "tracks: {tracks:?}");
    assert!(report.stage_aggs().contains_key("exec.worker"));
    assert!(report.stage_aggs().contains_key("verify"));

    // Summary table + metrics JSON render and carry derived rates.
    yu_telemetry::counter("mtbdd.apply_cache_hits", 3);
    yu_telemetry::counter("mtbdd.apply_cache_misses", 1);
    let report = yu_telemetry::snapshot();
    let summary = report.summary();
    assert!((summary.derived["apply_cache_hit_rate"] - 0.75).abs() < 1e-9);
    assert!(report.summary_table().contains("exec.worker"));
    let metrics: serde::Value =
        serde_json::from_str(&report.metrics_json()).expect("metrics JSON parses");
    assert!(metrics
        .as_object()
        .and_then(|o| o.get("derived"))
        .and_then(|d| d.as_object())
        .and_then(|d| d.get("apply_cache_hit_rate"))
        .is_some());

    yu_telemetry::reset();
    assert!(yu_telemetry::snapshot().is_empty());
}
