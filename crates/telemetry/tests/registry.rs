//! Property and schema tests for the v2 metrics registry: histogram
//! record/merge against a reference sorted-vector quantile
//! implementation, bucket-boundary edge cases, and the Prometheus text
//! exposition (parseable, typed, monotone across snapshots).
//!
//! Every test builds its own local [`MetricsRegistry`] / [`Histogram`]
//! — nothing here touches the process-global registry, so the tests run
//! concurrently without interference.

use proptest::prelude::*;
use yu_telemetry::{
    bucket_bounds, bucket_index, render_prometheus, Histogram, HistogramSnapshot, MetricsRegistry,
};

/// The reference implementation: exact nearest-rank quantile over the
/// raw samples, with the same rank rule the histogram uses
/// (`rank = ceil(q * count)`, clamped to `[1, count]`).
fn reference_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn record_all(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// The histogram quantile answers with the upper bound of exactly
    /// the bucket that holds the reference quantile — identical rank
    /// rule, bucket-granular value.
    #[test]
    fn quantile_matches_reference_bucket(
        samples in proptest::collection::vec(0u64..=1u64 << 42, 1..200),
        q in 0.0f64..1.0,
    ) {
        let snap = record_all(&samples);
        prop_assert_eq!(snap.count(), samples.len() as u64);
        let reference = reference_quantile(&samples, q);
        let answer = snap.quantile(q);
        let top = *bucket_bounds().last().unwrap();
        if reference > top {
            // The rank falls in the +Inf bucket, which saturates to the
            // largest finite bound.
            prop_assert_eq!(answer, top);
        } else {
            prop_assert_eq!(
                bucket_index(answer),
                bucket_index(reference),
                "quantile {} answered {} for reference {}",
                q, answer, reference
            );
            // The answer is the upper bound of the reference's bucket,
            // so it never under-reports.
            prop_assert!(answer >= reference);
        }
    }

    /// Merging two histograms is exactly recording the concatenation:
    /// same buckets, same sum, same every-quantile (shared static grid,
    /// bucket-wise addition — no approximation).
    #[test]
    fn merge_is_exact(
        a in proptest::collection::vec(0u64..=1u64 << 41, 0..120),
        b in proptest::collection::vec(0u64..=1u64 << 41, 0..120),
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let both: Vec<u64> = a.iter().chain(&b).copied().collect();
        let direct = record_all(&both);
        prop_assert_eq!(&merged.counts, &direct.counts);
        prop_assert_eq!(merged.sum, direct.sum);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }

    /// Bucket semantics at the boundaries: a value equal to a bound
    /// lands in the bucket that bound closes (inclusive upper bound),
    /// and the next integer lands strictly later.
    #[test]
    fn bucket_bounds_are_inclusive_upper(raw_ix in 0usize..10_000) {
        let bounds = bucket_bounds();
        let ix = raw_ix % bounds.len();
        let b = bounds[ix];
        prop_assert_eq!(bucket_index(b), ix);
        prop_assert!(bucket_index(b + 1) > ix);
        if b > 1 {
            prop_assert!(bucket_index(b - 1) <= ix);
        }
    }
}

#[test]
fn quantile_extremes_use_the_clamped_rank() {
    let samples: Vec<u64> = (1..=100).collect();
    let snap = record_all(&samples);
    // q = 0 clamps to rank 1 (the minimum's bucket bound)...
    assert_eq!(snap.quantile(0.0), 1);
    // ...and q = 1 is rank = count (the maximum's bucket bound).
    assert_eq!(snap.quantile(1.0), snap.quantile(0.999999));
    assert_eq!(bucket_index(snap.quantile(1.0)), bucket_index(100));
}

#[test]
fn overflow_values_land_in_the_inf_bucket() {
    let bounds = bucket_bounds();
    let top = *bounds.last().unwrap();
    assert_eq!(bucket_index(top + 1), bounds.len());
    assert_eq!(bucket_index(u64::MAX), bounds.len());
    let h = Histogram::default();
    h.record(u64::MAX);
    let snap = h.snapshot();
    assert_eq!(snap.count(), 1);
    // The +Inf entry of the cumulative view carries the overflow.
    let cum = snap.cumulative();
    let (bound, total) = cum.last().unwrap();
    assert_eq!(*bound, None);
    assert_eq!(*total, 1);
}

/// One parsed exposition: `name -> value` for plain metrics, plus raw
/// `# TYPE` entries.
struct Parsed {
    types: Vec<(String, String)>,
    values: Vec<(String, f64)>,
}

fn parse_exposition(text: &str) -> Parsed {
    let mut types = Vec::new();
    let mut values = Vec::new();
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE name").to_string();
            let kind = it.next().expect("TYPE kind").to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind}"
            );
            types.push((name, kind));
        } else if line.starts_with('#') {
            assert!(line.starts_with("# HELP "), "unknown comment: {line}");
        } else {
            let mut it = line.split_whitespace();
            let name = it.next().expect("sample name").to_string();
            let value: f64 = it
                .next()
                .expect("sample value")
                .parse()
                .unwrap_or_else(|e| panic!("unparseable value in {line:?}: {e}"));
            assert!(it.next().is_none(), "trailing tokens in {line:?}");
            values.push((name, value));
        }
    }
    Parsed { types, values }
}

fn value_of(p: &Parsed, name: &str) -> f64 {
    p.values
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("exposition missing {name}"))
        .1
}

#[test]
fn prometheus_schema_and_monotone_counters() {
    let reg = MetricsRegistry::default();
    reg.serve_requests_total.add(2);
    reg.verify_runs_total.inc();
    reg.serve_request_seconds.record(1_500);
    reg.serve_request_seconds.record(250_000);
    reg.mtbdd_live_nodes.set_u64(4096);

    let first = parse_exposition(&render_prometheus(&reg));

    // Every metric has exactly one TYPE line, in descriptor order.
    let descs = reg.descriptors();
    assert_eq!(first.types.len(), descs.len());
    for (d, (name, _)) in descs.iter().zip(&first.types) {
        assert_eq!(d.name, name);
    }

    // Histogram internal consistency: buckets cumulative and monotone
    // in le, +Inf bucket == _count, _sum present.
    let text = render_prometheus(&reg);
    let mut last_cum = -1.0;
    let mut inf_cum = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("yu_serve_request_seconds_bucket{le=\"") {
            let (le, cum) = rest.split_once("\"} ").expect("bucket line shape");
            let cum: f64 = cum.parse().unwrap();
            assert!(cum >= last_cum, "bucket counts must be cumulative");
            last_cum = cum;
            if le == "+Inf" {
                inf_cum = Some(cum);
            } else {
                let le: f64 = le.parse().expect("le bound parses as f64");
                assert!(le > 0.0);
            }
        }
    }
    assert_eq!(
        inf_cum.expect("+Inf bucket present"),
        value_of(&first, "yu_serve_request_seconds_count")
    );
    assert_eq!(value_of(&first, "yu_serve_request_seconds_count"), 2.0);
    assert!(value_of(&first, "yu_serve_request_seconds_sum") > 0.0);

    // Record more; every counter and bucket count is monotone across
    // snapshots (counters never reset).
    reg.serve_requests_total.add(3);
    reg.serve_request_seconds.record(9_000_000);
    reg.mtbdd_live_nodes.set_u64(1); // gauges may go down
    let second = parse_exposition(&render_prometheus(&reg));
    for (name, v1) in &first.values {
        if name.contains("_total") || name.ends_with("_count") || name.contains("_bucket") {
            let v2 = value_of(&second, name);
            assert!(v2 >= *v1, "{name} went backwards: {v1} -> {v2}");
        }
    }
    assert_eq!(value_of(&second, "yu_serve_requests_total"), 5.0);
    assert_eq!(value_of(&second, "yu_mtbdd_live_nodes"), 1.0);
}

#[test]
fn snapshot_json_matches_live_values() {
    let reg = MetricsRegistry::default();
    reg.incremental_reused_reqs_total.add(7);
    reg.serve_group_reuse_ratio.set(0.75);
    reg.stage_check_seconds.record(2_000); // 2 ms
    let snap = reg.snapshot();
    assert_eq!(snap.counter("yu_incremental_reused_reqs_total"), 7);
    let h = snap
        .histogram("yu_stage_check_seconds")
        .expect("stage histogram present");
    assert_eq!(h.count(), 1);
    let json = snap.to_value().to_string();
    assert!(json.contains("\"yu_incremental_reused_reqs_total\":7"));
    assert!(json.contains("\"yu_serve_group_reuse_ratio\":0.75"));
}
