//! The collection substrate: global enable gate, per-thread buffers,
//! RAII spans, counters, and gauges.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

use crate::report::TelemetryReport;

/// Whether recording is currently on. Initialized once from the
/// environment (`YU_TRACE` / `YU_METRICS`), then controlled by
/// [`set_enabled`].
static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Finished per-thread buffers, appended by [`flush_thread`]. Touched
/// only at flush/snapshot/reset time, never on the recording hot path.
static FLUSHED: Mutex<Vec<ThreadLog>> = Mutex::new(Vec::new());

fn env_truthy(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("false") || v.is_empty() => false,
        Ok(_) => true,
        Err(_) => false,
    }
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if env_truthy("YU_TRACE") || env_truthy("YU_METRICS") {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
}

/// Whether telemetry recording is on. One relaxed atomic load — this is
/// the guard every instrumented call site pays when telemetry is off.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide (e.g. when the CLI sees
/// `--trace-out`). Spans already open keep recording to completion.
pub fn set_enabled(on: bool) {
    init_from_env();
    ENABLED.store(on, Ordering::Relaxed);
}

/// The shared time base: all threads stamp spans relative to one epoch,
/// so cross-thread timelines line up in the trace viewer.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// One completed span: a named stage interval on one thread's track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name (`"igp"`, `"exec"`, ...). Static so recording never
    /// allocates.
    pub name: &'static str,
    /// Optional per-occurrence detail (flow id, load point, ...),
    /// rendered as `args.detail` in the Chrome trace.
    pub detail: Option<String>,
    /// Start offset from the process epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Nesting depth at the time the span opened (0 = top level).
    pub depth: u32,
}

/// Everything one thread recorded: its track label, completed spans, and
/// counter/gauge totals.
#[derive(Debug, Clone, Default)]
pub struct ThreadLog {
    /// Track label shown in the trace viewer (`"main"`, `"worker-3"`).
    pub track: String,
    /// Completed spans in completion order.
    pub spans: Vec<SpanEvent>,
    /// Monotonic counters accumulated on this thread.
    pub counters: BTreeMap<&'static str, u64>,
    /// High-water-mark gauges recorded on this thread.
    pub gauges: BTreeMap<&'static str, u64>,
}

impl ThreadLog {
    fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.gauges.is_empty()
    }
}

#[derive(Default)]
struct LocalBuf {
    log: ThreadLog,
    depth: u32,
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::default());
}

fn default_track() -> String {
    std::thread::current()
        .name()
        .unwrap_or("thread")
        .to_string()
}

/// RAII guard returned by [`span`]: records a [`SpanEvent`] covering its
/// own lifetime into the current thread's buffer when dropped. Inert
/// (and clock-free) when telemetry is disabled.
#[must_use = "a span measures its own lifetime; bind it to a variable"]
pub struct Span {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    name: &'static str,
    detail: Option<String>,
    start_us: u64,
    depth: u32,
}

impl Span {
    fn start(name: &'static str, detail: Option<String>) -> Span {
        if !enabled() {
            return Span { open: None };
        }
        let depth = LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let d = l.depth;
            l.depth += 1;
            d
        });
        Span {
            open: Some(OpenSpan {
                name,
                detail,
                start_us: now_us(),
                depth,
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        let end = now_us();
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.depth = l.depth.saturating_sub(1);
            l.log.spans.push(SpanEvent {
                name: open.name,
                detail: open.detail,
                start_us: open.start_us,
                dur_us: end.saturating_sub(open.start_us),
                depth: open.depth,
            });
        });
    }
}

/// Opens a scoped stage timer. The span closes (and is recorded) when
/// the returned guard drops.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::start(name, None)
}

/// Like [`span`], with a lazily built detail string; `detail` is only
/// invoked when telemetry is enabled, so hot paths pay no formatting
/// cost while disabled.
#[inline]
pub fn span_detail(name: &'static str, detail: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span { open: None };
    }
    Span::start(name, Some(detail()))
}

/// Adds `delta` to the named monotonic counter on the current thread.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    LOCAL.with(|l| {
        *l.borrow_mut().log.counters.entry(name).or_insert(0) += delta;
    });
}

/// Raises the named high-water-mark gauge to at least `value`.
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let g = l.log.gauges.entry(name).or_insert(0);
        *g = (*g).max(value);
    });
}

/// Labels the current thread's track in the exported trace (call once,
/// early, from worker threads: `set_thread_track(format!("worker-{i}"))`).
pub fn set_thread_track(name: String) {
    LOCAL.with(|l| l.borrow_mut().log.track = name);
}

/// Takes the current thread's buffer without touching global state.
/// Primarily for tests; production code uses [`flush_thread`] +
/// [`snapshot`].
pub fn take_thread_log() -> ThreadLog {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let mut log = std::mem::take(&mut l.log);
        if log.track.is_empty() {
            log.track = default_track();
        }
        log
    })
}

/// Moves the current thread's buffer into the global registry. Worker
/// threads call this right before exiting; the buffer then appears in
/// every later [`snapshot`]. A no-op for empty buffers.
pub fn flush_thread() {
    let log = take_thread_log();
    if log.is_empty() {
        return;
    }
    FLUSHED
        .lock()
        .expect("telemetry registry poisoned")
        .push(log);
}

/// Flushes the current thread and returns a report over everything
/// flushed so far (from all threads). Cumulative: data stays in the
/// registry, so later snapshots include earlier stages; use [`reset`]
/// to start a fresh measurement window.
pub fn snapshot() -> TelemetryReport {
    flush_thread();
    let threads = FLUSHED.lock().expect("telemetry registry poisoned").clone();
    TelemetryReport { threads }
}

/// Clears the global registry and the current thread's buffer (other
/// threads' unflushed buffers are untouched). Use between independent
/// measurement windows (e.g. bench runs).
pub fn reset() {
    let _ = take_thread_log();
    FLUSHED.lock().expect("telemetry registry poisoned").clear();
}
