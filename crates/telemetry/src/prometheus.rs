//! Prometheus text-format exposition of the metrics registry.
//!
//! [`snapshot_prometheus`] renders every registered metric in the
//! [text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! `# HELP` / `# TYPE` headers, `_total` counters, gauges, and full
//! histograms (`_bucket{le="..."}` cumulative counts, `_sum`, `_count`).
//! `yu serve --prom-out FILE` rewrites the file atomically after each
//! request (write-to-temp + rename), so a scraper — or the node
//! exporter's textfile collector — never reads a torn exposition.
//!
//! Histogram buckets are recorded in raw integer units (microseconds,
//! node counts) and scaled to the exposition unit here, so `le` bounds
//! of latency histograms come out in seconds as Prometheus convention
//! demands. Counters and bucket counts are monotone across snapshots by
//! construction (relaxed atomic adds, never reset).

use crate::registry::{registry, MetricDesc, MetricKind, MetricsRegistry};

/// Renders the process-wide registry in Prometheus text format.
pub fn snapshot_prometheus() -> String {
    render_prometheus(registry())
}

/// Renders one registry in Prometheus text format (the library API;
/// [`snapshot_prometheus`] applies it to the global registry).
pub fn render_prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for d in reg.descriptors() {
        render_metric(&mut out, &d);
    }
    out
}

fn render_metric(out: &mut String, d: &MetricDesc<'_>) {
    out.push_str(&format!("# HELP {} {}\n", d.name, d.help));
    match &d.metric {
        MetricKind::Counter(c) => {
            out.push_str(&format!("# TYPE {} counter\n", d.name));
            out.push_str(&format!("{} {}\n", d.name, c.get()));
        }
        MetricKind::Gauge(g) => {
            out.push_str(&format!("# TYPE {} gauge\n", d.name));
            out.push_str(&format!("{} {}\n", d.name, fmt_f64(g.get())));
        }
        MetricKind::Histogram(h, scale) => {
            out.push_str(&format!("# TYPE {} histogram\n", d.name));
            let snap = h.snapshot();
            for (bound, cum) in snap.cumulative() {
                let le = match bound {
                    Some(b) => fmt_f64(b as f64 * scale),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cum}\n", d.name));
            }
            out.push_str(&format!(
                "{}_sum {}\n",
                d.name,
                fmt_f64(snap.sum as f64 * scale)
            ));
            out.push_str(&format!("{}_count {}\n", d.name, snap.count()));
        }
    }
}

/// Formats an `f64` the way Prometheus parsers expect: plain decimal
/// or scientific notation, never `NaN`-adjacent localized forms.
/// Rust's shortest-roundtrip `{}` formatting satisfies this.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // Keep integers readable ("42" rather than "42.0" is accepted
        // either way; emit the canonical integer form).
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn exposition_has_headers_buckets_and_consistent_totals() {
        let reg = MetricsRegistry::default();
        reg.serve_requests_total.add(3);
        reg.serve_request_seconds.record(1_500); // 1.5 ms
        reg.serve_request_seconds.record(2_000_000); // 2 s
        let text = render_prometheus(&reg);
        assert!(text.contains("# TYPE yu_serve_requests_total counter"));
        assert!(text.contains("yu_serve_requests_total 3"));
        assert!(text.contains("# TYPE yu_serve_request_seconds histogram"));
        assert!(text.contains("yu_serve_request_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("yu_serve_request_seconds_count 2"));
        // le bounds are in seconds (scaled from recorded microseconds).
        assert!(text.contains("le=\"1\"}"), "1-second bound present");
        // Every line is a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }
}
