//! Aggregation and export of flushed telemetry: per-stage statistics,
//! derived cache rates, the stderr summary table, and metrics JSON.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::collector::ThreadLog;

/// Aggregate statistics for one stage (all spans sharing a name, across
/// every thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct StageAgg {
    /// Number of spans recorded for this stage.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
    /// Shortest span, microseconds.
    pub min_us: u64,
    /// Longest span, microseconds.
    pub max_us: u64,
}

impl StageAgg {
    fn absorb(&mut self, dur_us: u64) {
        self.count += 1;
        self.total_us += dur_us;
        self.min_us = self.min_us.min(dur_us);
        self.max_us = self.max_us.max(dur_us);
    }
}

/// One row of the exported per-stage breakdown.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageSummary {
    /// Stage name (`"igp"`, `"exec"`, ...).
    pub name: String,
    /// Number of spans recorded for this stage.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
    /// Mean span duration, microseconds.
    pub mean_us: f64,
    /// Shortest span, microseconds.
    pub min_us: u64,
    /// Longest span, microseconds.
    pub max_us: u64,
}

/// The machine-readable digest of one run: per-stage timings, raw
/// counter/gauge totals, and derived rates. This is what `--metrics-out`
/// writes and what `RunStats` embeds for `--json` output.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TelemetrySummary {
    /// Per-stage timing rows, sorted by descending total time.
    pub stages: Vec<StageSummary>,
    /// Counter totals summed across all threads.
    pub counters: BTreeMap<String, u64>,
    /// Gauge high-water marks maxed across all threads.
    pub gauges: BTreeMap<String, u64>,
    /// Rates computed from the counters (all in `[0, 1]`):
    /// `apply_cache_hit_rate` = hits / (hits + misses) of the MTBDD apply
    /// cache; `import_memo_hit_rate` likewise for cross-arena import;
    /// `fused_cache_hit_rate` likewise for the fused ADD∘KREDUCE memo;
    /// `check_import_memo_hit_rate` likewise for the per-check-worker
    /// representative imports; `kreduce_reduction_ratio` = fraction of
    /// nodes *removed* by KREDUCE (`1 - after/before`). A rate is
    /// omitted when its inputs were never recorded.
    pub derived: BTreeMap<String, f64>,
}

/// All telemetry flushed so far: one [`ThreadLog`] per flushed thread.
/// Obtained from [`crate::snapshot`]; exported via the methods here.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Per-thread logs in flush order.
    pub threads: Vec<ThreadLog>,
}

impl TelemetryReport {
    /// True when nothing was recorded (e.g. telemetry was disabled).
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Aggregates spans by stage name across all threads.
    pub fn stage_aggs(&self) -> BTreeMap<&'static str, StageAgg> {
        let mut aggs: BTreeMap<&'static str, StageAgg> = BTreeMap::new();
        for t in &self.threads {
            for s in &t.spans {
                aggs.entry(s.name)
                    .or_insert(StageAgg {
                        count: 0,
                        total_us: 0,
                        min_us: u64::MAX,
                        max_us: 0,
                    })
                    .absorb(s.dur_us);
            }
        }
        aggs
    }

    /// Counter totals summed across all threads.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for t in &self.threads {
            for (&k, &v) in &t.counters {
                *out.entry(k.to_string()).or_insert(0) += v;
            }
        }
        out
    }

    /// Gauge high-water marks maxed across all threads.
    pub fn gauge_maxes(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for t in &self.threads {
            for (&k, &v) in &t.gauges {
                let g = out.entry(k.to_string()).or_insert(0);
                *g = (*g).max(v);
            }
        }
        out
    }

    /// Builds the exportable digest: stages sorted by descending total
    /// time, counter/gauge totals, and derived cache rates.
    pub fn summary(&self) -> TelemetrySummary {
        let mut stages: Vec<StageSummary> = self
            .stage_aggs()
            .into_iter()
            .map(|(name, a)| StageSummary {
                name: name.to_string(),
                count: a.count,
                total_us: a.total_us,
                mean_us: a.total_us as f64 / a.count as f64,
                min_us: a.min_us,
                max_us: a.max_us,
            })
            .collect();
        stages.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
        let counters = self.counter_totals();
        let derived = derived_rates(&counters);
        TelemetrySummary {
            stages,
            counters,
            gauges: self.gauge_maxes(),
            derived,
        }
    }

    /// Renders the human-readable per-stage table that `yu verify -v`
    /// prints on stderr.
    pub fn summary_table(&self) -> String {
        let s = self.summary();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
            "stage", "count", "total", "mean", "min", "max"
        ));
        for row in &s.stages {
            out.push_str(&format!(
                "{:<14} {:>7} {:>12} {:>12} {:>12} {:>12}\n",
                row.name,
                row.count,
                fmt_us(row.total_us),
                fmt_us(row.mean_us as u64),
                fmt_us(row.min_us),
                fmt_us(row.max_us),
            ));
        }
        if !s.derived.is_empty() {
            out.push('\n');
            for (k, v) in &s.derived {
                out.push_str(&format!("{k:<28} {v:.4}\n"));
            }
        }
        if !s.counters.is_empty() {
            out.push('\n');
            for (k, v) in &s.counters {
                out.push_str(&format!("{k:<28} {v}\n"));
            }
        }
        if !s.gauges.is_empty() {
            out.push('\n');
            for (k, v) in &s.gauges {
                out.push_str(&format!("{k:<28} {v} (peak)\n"));
            }
        }
        out
    }

    /// Renders the machine-readable metrics JSON written by
    /// `yu verify --metrics-out FILE` (pretty-printed, stable key order).
    pub fn metrics_json(&self) -> String {
        let mut out = String::new();
        serde::write_json(&self.summary().to_value(), Some(2), 0, &mut out);
        out.push('\n');
        out
    }
}

/// Computes cache/reduction rates from raw counter totals; see
/// [`TelemetrySummary::derived`] for the definitions.
fn derived_rates(counters: &BTreeMap<String, u64>) -> BTreeMap<String, f64> {
    let get = |name: &str| counters.get(name).copied().unwrap_or(0);
    let mut d = BTreeMap::new();
    let mut rate = |label: &str, hits: u64, misses: u64| {
        if hits + misses > 0 {
            d.insert(label.to_string(), hits as f64 / (hits + misses) as f64);
        }
    };
    rate(
        "apply_cache_hit_rate",
        get("mtbdd.apply_cache_hits"),
        get("mtbdd.apply_cache_misses"),
    );
    rate(
        "import_memo_hit_rate",
        get("import.memo_hits"),
        get("import.memo_misses"),
    );
    rate(
        "fused_cache_hit_rate",
        get("mtbdd.fused_cache_hits"),
        get("mtbdd.fused_cache_misses"),
    );
    rate(
        "check_import_memo_hit_rate",
        get("check.import_memo_hits"),
        get("check.import_memo_misses"),
    );
    let before = get("kreduce.nodes_before");
    let after = get("kreduce.nodes_after");
    if before > 0 {
        d.insert(
            "kreduce_reduction_ratio".to_string(),
            1.0 - after as f64 / before as f64,
        );
    }
    d
}

/// Formats microseconds with an adaptive unit (`µs`, `ms`, `s`).
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}
