//! The process-lifetime metrics registry: atomic counters, gauges, and
//! log-scale histograms for long-running deployments (`yu serve`).
//!
//! The PR 3 collector answers "where did *this run* spend its time" —
//! thread-local spans flushed into a one-shot report. A daemon needs the
//! complementary view: monotone process-lifetime totals, current-state
//! gauges, and latency distributions that survive across requests. That
//! is this registry. The metric set is **closed** — every metric is a
//! named field of [`MetricsRegistry`], created once at first use — so
//! the hot path is a direct atomic operation on a `&'static` field:
//! no registration lock, no name hashing, no allocation.
//!
//! Instrumented call sites go through [`with_registry`], which costs one
//! relaxed atomic load when recording is off (mirroring the span
//! collector's gate). Recording never touches verifier state, so
//! registry-on and registry-off runs produce bit-identical verdicts —
//! the same invariant PR 3 established for spans, enforced by
//! `tests/telemetry_differential.rs`.
//!
//! Export paths: [`MetricsRegistry::snapshot`] (plain data, JSON via
//! `to_value`) for the `yu serve` `metrics` request, and
//! [`crate::snapshot_prometheus`] for Prometheus text exposition.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Once, OnceLock};

use serde::{Map, Value};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotone counter (relaxed atomic adds).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64` (stored as bits in an
/// atomic, so reads and writes are lock-free).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Sets from an integer (exact up to 2^53).
    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// What kind of metric a [`MetricDesc`] points at.
pub enum MetricKind<'a> {
    /// Monotone counter.
    Counter(&'a Counter),
    /// Point-in-time gauge.
    Gauge(&'a Gauge),
    /// Log-scale histogram; the `f64` scales raw recorded units into
    /// the exposition unit (e.g. `1e-6` for microseconds -> seconds).
    Histogram(&'a Histogram, f64),
}

/// One registry entry: name, help text, and the live metric.
pub struct MetricDesc<'a> {
    /// Prometheus-style metric name (`yu_*`, counters end `_total`).
    pub name: &'static str,
    /// One-line help text (the `# HELP` line).
    pub help: &'static str,
    /// The metric itself.
    pub metric: MetricKind<'a>,
}

/// The closed set of process-lifetime metrics. One instance per process
/// (see [`registry`]); every field is lock-free to record.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    // ---- pipeline totals ----
    /// Completed verification runs (batch, diff, or serve request).
    pub verify_runs_total: Counter,
    /// Requirements checked by the symbolic engine.
    pub reqs_checked_total: Counter,
    /// Requirements discharged by the static preflight analyzer.
    pub reqs_pruned_total: Counter,
    /// Flow groups symbolically (re-)executed.
    pub flow_groups_executed_total: Counter,
    /// IGP Bellman-Ford rounds run by symbolic route simulation.
    pub route_igp_rounds_total: Counter,
    /// BGP propagation rounds run by symbolic route simulation.
    pub route_bgp_rounds_total: Counter,
    // ---- per-run stage latency distributions ----
    /// Route-simulation stage wall-clock per run (recorded in µs).
    pub stage_route_seconds: Histogram,
    /// Traffic-execution stage wall-clock per run (recorded in µs).
    pub stage_exec_seconds: Histogram,
    /// Check stage wall-clock per run (recorded in µs).
    pub stage_check_seconds: Histogram,
    // ---- per-entity attribution distributions ----
    /// Wall-clock of one flow group's symbolic execution (recorded in µs).
    pub flow_exec_seconds: Histogram,
    /// Wall-clock of one requirement's aggregate+check (recorded in µs).
    pub req_check_seconds: Histogram,
    // ---- MTBDD engine ----
    /// Live inner nodes in the main arena after the latest run.
    pub mtbdd_live_nodes: Gauge,
    /// Unique-table load factor (len / capacity) of the main arena.
    pub mtbdd_unique_table_load_factor: Gauge,
    /// Estimated bytes held by the main arena (nodes + tables).
    pub mtbdd_arena_bytes: Gauge,
    /// Distribution of live-node counts across runs.
    pub mtbdd_live_nodes_hist: Histogram,
    /// MTBDD apply-cache hits.
    pub mtbdd_apply_cache_hits_total: Counter,
    /// MTBDD apply-cache misses.
    pub mtbdd_apply_cache_misses_total: Counter,
    /// Fused ADD∘KREDUCE cache hits.
    pub mtbdd_fused_cache_hits_total: Counter,
    /// Fused ADD∘KREDUCE cache misses.
    pub mtbdd_fused_cache_misses_total: Counter,
    /// Garbage collections run.
    pub mtbdd_gc_runs_total: Counter,
    /// Inner nodes reclaimed by garbage collections.
    pub mtbdd_gc_reclaimed_nodes_total: Counter,
    /// Lifetime apply-cache hit rate (hits / lookups, in [0, 1]).
    pub mtbdd_apply_cache_hit_rate: Gauge,
    /// Lifetime fused-kernel cache hit rate (hits / lookups, in [0, 1]).
    pub mtbdd_fused_cache_hit_rate: Gauge,
    // ---- incremental engine ----
    /// Flow groups whose symbolic results were reused across updates.
    pub incremental_reused_groups_total: Counter,
    /// Flow groups re-executed by incremental updates.
    pub incremental_recomputed_groups_total: Counter,
    /// Requirements answered from the incremental verdict cache.
    pub incremental_reused_reqs_total: Counter,
    /// Requirements re-aggregated and re-checked incrementally.
    pub incremental_rechecked_reqs_total: Counter,
    /// Updates that forced a from-scratch rebuild (topology edits).
    pub incremental_full_rebuilds_total: Counter,
    // ---- serve loop ----
    /// Requests handled by `yu serve` (successful change-sets).
    pub serve_requests_total: Counter,
    /// Requests rejected (parse errors, bad requests).
    pub serve_request_errors_total: Counter,
    /// Requests slower than the configured threshold.
    pub serve_slow_requests_total: Counter,
    /// Requests whose verdict delta was non-empty.
    pub serve_verdict_flips_total: Counter,
    /// Requests that exceeded the rolling EWMA latency baseline of
    /// their request kind by the configured regression factor.
    pub serve_perf_regressions_total: Counter,
    /// End-to-end request latency (recorded in µs).
    pub serve_request_seconds: Histogram,
    /// Violations in the current (post-request) state.
    pub serve_violations: Gauge,
    /// Group reuse ratio of the latest request (reused / total).
    pub serve_group_reuse_ratio: Gauge,
    /// Requirement reuse ratio of the latest request (reused / total).
    pub serve_req_reuse_ratio: Gauge,
}

impl MetricsRegistry {
    /// Every metric with its name and help text, in stable exposition
    /// order. This is the single source of truth for both the
    /// Prometheus encoder and [`Self::snapshot`].
    pub fn descriptors(&self) -> Vec<MetricDesc<'_>> {
        use MetricKind::{Counter as C, Gauge as G, Histogram as H};
        vec![
            MetricDesc {
                name: "yu_verify_runs_total",
                help: "Completed verification runs (batch, diff, or serve request)",
                metric: C(&self.verify_runs_total),
            },
            MetricDesc {
                name: "yu_reqs_checked_total",
                help: "Requirements checked by the symbolic engine",
                metric: C(&self.reqs_checked_total),
            },
            MetricDesc {
                name: "yu_reqs_pruned_total",
                help: "Requirements discharged by the static preflight analyzer",
                metric: C(&self.reqs_pruned_total),
            },
            MetricDesc {
                name: "yu_flow_groups_executed_total",
                help: "Flow groups symbolically (re-)executed",
                metric: C(&self.flow_groups_executed_total),
            },
            MetricDesc {
                name: "yu_route_igp_rounds_total",
                help: "IGP Bellman-Ford rounds run by symbolic route simulation",
                metric: C(&self.route_igp_rounds_total),
            },
            MetricDesc {
                name: "yu_route_bgp_rounds_total",
                help: "BGP propagation rounds run by symbolic route simulation",
                metric: C(&self.route_bgp_rounds_total),
            },
            MetricDesc {
                name: "yu_stage_route_seconds",
                help: "Route-simulation stage wall-clock per run",
                metric: H(&self.stage_route_seconds, 1e-6),
            },
            MetricDesc {
                name: "yu_stage_exec_seconds",
                help: "Traffic-execution stage wall-clock per run",
                metric: H(&self.stage_exec_seconds, 1e-6),
            },
            MetricDesc {
                name: "yu_stage_check_seconds",
                help: "Check stage wall-clock per run",
                metric: H(&self.stage_check_seconds, 1e-6),
            },
            MetricDesc {
                name: "yu_flow_exec_seconds",
                help: "Wall-clock of one flow group's symbolic execution",
                metric: H(&self.flow_exec_seconds, 1e-6),
            },
            MetricDesc {
                name: "yu_req_check_seconds",
                help: "Wall-clock of one requirement's aggregate+check",
                metric: H(&self.req_check_seconds, 1e-6),
            },
            MetricDesc {
                name: "yu_mtbdd_live_nodes",
                help: "Live inner nodes in the main arena after the latest run",
                metric: G(&self.mtbdd_live_nodes),
            },
            MetricDesc {
                name: "yu_mtbdd_unique_table_load_factor",
                help: "Unique-table load factor (len/capacity) of the main arena",
                metric: G(&self.mtbdd_unique_table_load_factor),
            },
            MetricDesc {
                name: "yu_mtbdd_arena_bytes",
                help: "Estimated bytes held by the main arena (nodes + tables)",
                metric: G(&self.mtbdd_arena_bytes),
            },
            MetricDesc {
                name: "yu_mtbdd_live_nodes_hist",
                help: "Distribution of live-node counts across runs",
                metric: H(&self.mtbdd_live_nodes_hist, 1.0),
            },
            MetricDesc {
                name: "yu_mtbdd_apply_cache_hits_total",
                help: "MTBDD apply-cache hits",
                metric: C(&self.mtbdd_apply_cache_hits_total),
            },
            MetricDesc {
                name: "yu_mtbdd_apply_cache_misses_total",
                help: "MTBDD apply-cache misses",
                metric: C(&self.mtbdd_apply_cache_misses_total),
            },
            MetricDesc {
                name: "yu_mtbdd_fused_cache_hits_total",
                help: "Fused ADD∘KREDUCE cache hits",
                metric: C(&self.mtbdd_fused_cache_hits_total),
            },
            MetricDesc {
                name: "yu_mtbdd_fused_cache_misses_total",
                help: "Fused ADD∘KREDUCE cache misses",
                metric: C(&self.mtbdd_fused_cache_misses_total),
            },
            MetricDesc {
                name: "yu_mtbdd_gc_runs_total",
                help: "Garbage collections run",
                metric: C(&self.mtbdd_gc_runs_total),
            },
            MetricDesc {
                name: "yu_mtbdd_gc_reclaimed_nodes_total",
                help: "Inner nodes reclaimed by garbage collections",
                metric: C(&self.mtbdd_gc_reclaimed_nodes_total),
            },
            MetricDesc {
                name: "yu_mtbdd_apply_cache_hit_rate",
                help: "Lifetime apply-cache hit rate (hits/lookups)",
                metric: G(&self.mtbdd_apply_cache_hit_rate),
            },
            MetricDesc {
                name: "yu_mtbdd_fused_cache_hit_rate",
                help: "Lifetime fused-kernel cache hit rate (hits/lookups)",
                metric: G(&self.mtbdd_fused_cache_hit_rate),
            },
            MetricDesc {
                name: "yu_incremental_reused_groups_total",
                help: "Flow groups whose symbolic results were reused across updates",
                metric: C(&self.incremental_reused_groups_total),
            },
            MetricDesc {
                name: "yu_incremental_recomputed_groups_total",
                help: "Flow groups re-executed by incremental updates",
                metric: C(&self.incremental_recomputed_groups_total),
            },
            MetricDesc {
                name: "yu_incremental_reused_reqs_total",
                help: "Requirements answered from the incremental verdict cache",
                metric: C(&self.incremental_reused_reqs_total),
            },
            MetricDesc {
                name: "yu_incremental_rechecked_reqs_total",
                help: "Requirements re-aggregated and re-checked incrementally",
                metric: C(&self.incremental_rechecked_reqs_total),
            },
            MetricDesc {
                name: "yu_incremental_full_rebuilds_total",
                help: "Updates that forced a from-scratch rebuild (topology edits)",
                metric: C(&self.incremental_full_rebuilds_total),
            },
            MetricDesc {
                name: "yu_serve_requests_total",
                help: "Requests handled by yu serve (successful change-sets)",
                metric: C(&self.serve_requests_total),
            },
            MetricDesc {
                name: "yu_serve_request_errors_total",
                help: "Requests rejected (parse errors, bad requests)",
                metric: C(&self.serve_request_errors_total),
            },
            MetricDesc {
                name: "yu_serve_slow_requests_total",
                help: "Requests slower than the configured threshold",
                metric: C(&self.serve_slow_requests_total),
            },
            MetricDesc {
                name: "yu_serve_verdict_flips_total",
                help: "Requests whose verdict delta was non-empty",
                metric: C(&self.serve_verdict_flips_total),
            },
            MetricDesc {
                name: "yu_serve_perf_regressions_total",
                help: "Requests exceeding their kind's EWMA latency baseline",
                metric: C(&self.serve_perf_regressions_total),
            },
            MetricDesc {
                name: "yu_serve_request_seconds",
                help: "End-to-end request latency",
                metric: H(&self.serve_request_seconds, 1e-6),
            },
            MetricDesc {
                name: "yu_serve_violations",
                help: "Violations in the current (post-request) state",
                metric: G(&self.serve_violations),
            },
            MetricDesc {
                name: "yu_serve_group_reuse_ratio",
                help: "Group reuse ratio of the latest request (reused/total)",
                metric: G(&self.serve_group_reuse_ratio),
            },
            MetricDesc {
                name: "yu_serve_req_reuse_ratio",
                help: "Requirement reuse ratio of the latest request (reused/total)",
                metric: G(&self.serve_req_reuse_ratio),
            },
        ]
    }

    /// A plain-data copy of every metric, for the `yu serve` `metrics`
    /// request and tests.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for d in self.descriptors() {
            match d.metric {
                MetricKind::Counter(c) => counters.push((d.name, c.get())),
                MetricKind::Gauge(g) => gauges.push((d.name, g.get())),
                MetricKind::Histogram(h, scale) => {
                    histograms.push((d.name, scale, h.snapshot()));
                }
            }
        }
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of the whole registry: plain data, JSON export.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// `(name, total)` per counter, in exposition order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(&'static str, f64)>,
    /// `(name, exposition scale, snapshot)` per histogram.
    pub histograms: Vec<(&'static str, f64, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// The value of one counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// The snapshot of one histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, _, h)| h)
    }

    /// JSON object: counters/gauges verbatim, histograms digested into
    /// `{count, sum, p50, p90, p95, p99}` in exposition units.
    pub fn to_value(&self) -> Value {
        let mut counters = Map::new();
        for &(name, v) in &self.counters {
            counters.insert(name, Value::Int(v as i128));
        }
        let mut gauges = Map::new();
        for &(name, v) in &self.gauges {
            gauges.insert(name, Value::Float(v));
        }
        let mut histograms = Map::new();
        for (name, scale, h) in &self.histograms {
            let mut m = Map::new();
            m.insert("count", Value::Int(h.count() as i128));
            m.insert("sum", Value::Float(h.sum as f64 * scale));
            for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p95", 0.95), ("p99", 0.99)] {
                m.insert(label, Value::Float(h.quantile(q) as f64 * scale));
            }
            histograms.insert(*name, Value::Map(m));
        }
        let mut root = Map::new();
        root.insert("counters", Value::Map(counters));
        root.insert("gauges", Value::Map(gauges));
        root.insert("histograms", Value::Map(histograms));
        Value::Map(root)
    }
}

/// Whether registry recording is on: one relaxed load. On by default
/// (recording is a handful of atomic adds per *request*, not per node);
/// `YU_REGISTRY=0` or [`set_registry_enabled`]`(false)` turns it off —
/// what the serve bench's A/B overhead measurement does.
#[inline]
pub fn registry_enabled() -> bool {
    registry_env_init();
    REGISTRY_ENABLED.load(Ordering::Relaxed)
}

/// Turns registry recording on or off process-wide.
pub fn set_registry_enabled(on: bool) {
    registry_env_init();
    REGISTRY_ENABLED.store(on, Ordering::Relaxed);
}

static REGISTRY_ENABLED: AtomicBool = AtomicBool::new(true);
static REGISTRY_ENV: Once = Once::new();

fn registry_env_init() {
    REGISTRY_ENV.call_once(|| {
        if let Ok(v) = std::env::var("YU_REGISTRY") {
            if v == "0" || v.eq_ignore_ascii_case("false") {
                REGISTRY_ENABLED.store(false, Ordering::Relaxed);
            }
        }
    });
}

/// The process-wide registry. Always available; whether call sites
/// record into it is governed by [`registry_enabled`].
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// Runs `f` against the registry iff recording is enabled: the single
/// gate instrumented call sites pay (one relaxed load when off).
#[inline]
pub fn with_registry(f: impl FnOnce(&MetricsRegistry)) {
    if registry_enabled() {
        f(registry());
    }
}
