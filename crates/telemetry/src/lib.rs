//! # yu-telemetry
//!
//! Lightweight instrumentation for the YU symbolic verification pipeline:
//! scoped RAII stage timers ([`span`]), monotonic [`counter`]s, and
//! high-water-mark [`gauge_max`]es, collected into **per-thread buffers**
//! so the sharded parallel workers of `yu-core` record independently
//! without any lock contention on the hot path.
//!
//! ## Zero cost when disabled
//!
//! Every recording entry point starts with one relaxed atomic load.
//! Telemetry is off by default; it turns on when the `YU_TRACE` or
//! `YU_METRICS` environment variable is set to a non-empty value other
//! than `0`/`false` (mirroring the `YU_AUDIT` gate of `yu-mtbdd`), or
//! programmatically via [`set_enabled`] (what `yu verify --trace-out`
//! does). While disabled, [`span`] never reads the clock and [`counter`]
//! never touches thread-local state, so instrumented code paths cost a
//! branch — measured < 2% on the parallel bench.
//!
//! ## Collection model
//!
//! Spans and counters land in a thread-local buffer. Worker threads call
//! [`set_thread_track`] (to label their Chrome-trace track) and
//! [`flush_thread`] before they exit; the main thread's buffer is flushed
//! implicitly by [`snapshot`]. A [`TelemetryReport`] is the merge of all
//! flushed buffers and can be exported three ways:
//!
//! * [`TelemetryReport::summary_table`] — human-readable per-stage table
//!   (what `yu verify -v` prints on stderr);
//! * [`TelemetryReport::metrics_json`] — machine-readable metrics with
//!   derived rates (apply-cache hit rate, KREDUCE reduction ratio,
//!   import-memo hit rate) for `--metrics-out`;
//! * [`TelemetryReport::chrome_trace_json`] — Chrome trace-event JSON
//!   (one track per worker thread) for `--trace-out`, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! ## Process-lifetime metrics (v2)
//!
//! The span collector is one-shot: it answers "where did *this run*
//! spend its time". Long-running deployments (`yu serve`) need the
//! complementary continuous view, provided by three sibling subsystems:
//!
//! * [`registry`]/[`MetricsRegistry`] — atomic counters, gauges, and
//!   fixed-bucket log-scale [`Histogram`]s (lock-free record, exact
//!   merge) accumulating over the whole process;
//! * [`snapshot_prometheus`] — Prometheus text-format exposition of the
//!   registry (what `yu serve --prom-out` writes after each request);
//! * [`emit_event`] — a leveled, structured JSON event log
//!   (`--events-out`): request lifecycle, slow requests, GC runs,
//!   verdict flips, audit failures.
//!
//! Registry recording is on by default (a handful of atomic adds per
//! request — measured < 2% on the serve bench) and disabled with
//! `YU_REGISTRY=0` or [`set_registry_enabled`]; like spans, it is an
//! observer only — registry-on and registry-off runs are bit-identical
//! in verdicts (`tests/telemetry_differential.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod events;
mod histogram;
mod profile;
mod prometheus;
mod registry;
mod report;
mod trace;

pub use collector::{
    counter, enabled, flush_thread, gauge_max, reset, set_enabled, set_thread_track, snapshot,
    span, span_detail, take_thread_log, Span, SpanEvent, ThreadLog,
};
pub use events::{
    close_event_sink, emit_event, events_enabled, set_event_min_level, set_event_sink_file,
    set_event_sink_memory, take_memory_events, EventLevel,
};
pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot};
pub use profile::FrameRow;
pub use prometheus::{render_prometheus, snapshot_prometheus};
pub use registry::{
    registry, registry_enabled, set_registry_enabled, with_registry, Counter, Gauge, MetricDesc,
    MetricKind, MetricsRegistry, RegistrySnapshot,
};
pub use report::{StageAgg, StageSummary, TelemetryReport, TelemetrySummary};
