//! # yu-telemetry
//!
//! Lightweight instrumentation for the YU symbolic verification pipeline:
//! scoped RAII stage timers ([`span`]), monotonic [`counter`]s, and
//! high-water-mark [`gauge_max`]es, collected into **per-thread buffers**
//! so the sharded parallel workers of `yu-core` record independently
//! without any lock contention on the hot path.
//!
//! ## Zero cost when disabled
//!
//! Every recording entry point starts with one relaxed atomic load.
//! Telemetry is off by default; it turns on when the `YU_TRACE` or
//! `YU_METRICS` environment variable is set to a non-empty value other
//! than `0`/`false` (mirroring the `YU_AUDIT` gate of `yu-mtbdd`), or
//! programmatically via [`set_enabled`] (what `yu verify --trace-out`
//! does). While disabled, [`span`] never reads the clock and [`counter`]
//! never touches thread-local state, so instrumented code paths cost a
//! branch — measured < 2% on the parallel bench.
//!
//! ## Collection model
//!
//! Spans and counters land in a thread-local buffer. Worker threads call
//! [`set_thread_track`] (to label their Chrome-trace track) and
//! [`flush_thread`] before they exit; the main thread's buffer is flushed
//! implicitly by [`snapshot`]. A [`TelemetryReport`] is the merge of all
//! flushed buffers and can be exported three ways:
//!
//! * [`TelemetryReport::summary_table`] — human-readable per-stage table
//!   (what `yu verify -v` prints on stderr);
//! * [`TelemetryReport::metrics_json`] — machine-readable metrics with
//!   derived rates (apply-cache hit rate, KREDUCE reduction ratio,
//!   import-memo hit rate) for `--metrics-out`;
//! * [`TelemetryReport::chrome_trace_json`] — Chrome trace-event JSON
//!   (one track per worker thread) for `--trace-out`, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod report;
mod trace;

pub use collector::{
    counter, enabled, flush_thread, gauge_max, reset, set_enabled, set_thread_track, snapshot,
    span, span_detail, take_thread_log, Span, SpanEvent, ThreadLog,
};
pub use report::{StageAgg, StageSummary, TelemetryReport, TelemetrySummary};
