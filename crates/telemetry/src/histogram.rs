//! Fixed-bucket log-scale histograms with lock-free recording and exact
//! merging.
//!
//! The bucket grid is **static and shared by every histogram**: after a
//! linear run for the smallest values, each power-of-two octave is split
//! into four linear sub-buckets, so every recorded value lands in a
//! bucket whose upper bound is at most 12.5% above its lower bound.
//! Fixed boundaries are what make merges *exact*: two histograms (from
//! two threads, two processes, or an A/B pair) merge by bucket-wise
//! addition with zero re-binning error, and quantile queries on the
//! merge equal quantile queries on the concatenated sample stream (up
//! to the shared bucket resolution).
//!
//! Recording is one relaxed `fetch_add` on the bucket counter plus one
//! on the sum — no locks, no allocation — so worker threads and the
//! serve loop can record on the hot path. Counts are monotone, which is
//! exactly what the Prometheus exposition (`_bucket`/`_sum`/`_count`)
//! requires of a live-scraped histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Linear sub-buckets per power-of-two octave.
const SUBS: u64 = 4;
/// The grid tops out at `2^MAX_OCTAVE`; larger values land in the
/// overflow bucket. `2^40` microseconds is ~12.7 days, `2^40` nodes is
/// far beyond any arena this process could hold.
const MAX_OCTAVE: u32 = 40;

/// The shared bucket upper bounds, strictly increasing. Bucket `i`
/// counts values `v` with `bounds[i-1] < v <= bounds[i]` (bucket 0
/// counts `v <= bounds[0]`, i.e. 0 and 1); one extra overflow bucket
/// catches everything above the last bound.
pub fn bucket_bounds() -> &'static [u64] {
    static BOUNDS: OnceLock<Vec<u64>> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut bounds: Vec<u64> = (1..=SUBS).collect(); // 1, 2, 3, 4
        let mut base = SUBS; // divisible by SUBS from here on
        while base < 1u64 << MAX_OCTAVE {
            let step = base / SUBS;
            for s in 1..=SUBS {
                bounds.push(base + s * step); // 5 6 7 8, 10 12 14 16, ...
            }
            base *= 2;
        }
        bounds
    })
}

/// The bucket index of one value on the shared grid (the overflow
/// bucket is `bucket_bounds().len()`).
pub fn bucket_index(v: u64) -> usize {
    bucket_bounds().partition_point(|&b| b < v)
}

/// A lock-free histogram over the shared log-scale grid.
///
/// `record` is wait-free (two relaxed atomic adds); `snapshot` reads
/// the counters without stopping writers, so a snapshot taken during
/// concurrent recording is some valid interleaving — each individual
/// counter is exact and monotone.
#[derive(Debug)]
pub struct Histogram {
    /// One counter per grid bucket plus the trailing overflow bucket.
    buckets: Box<[AtomicU64]>,
    /// Sum of every recorded value (exact, u64 saturating in practice:
    /// ~584k years of microseconds before wrap).
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram on the shared grid.
    pub fn new() -> Histogram {
        let n = bucket_bounds().len() + 1;
        Histogram {
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value: two relaxed atomic adds, no locks.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A plain-data copy of the current counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Adds a snapshot's counts into this histogram (exact: the grids
    /// are identical by construction).
    pub fn absorb(&self, other: &HistogramSnapshot) {
        for (b, &c) in self.buckets.iter().zip(&other.counts) {
            b.fetch_add(c, Ordering::Relaxed);
        }
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`]: plain data, exact bucket-wise
/// merge, quantile queries, and the cumulative view Prometheus needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, aligned with [`bucket_bounds`] plus one
    /// trailing overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An all-zero snapshot (identity of [`Self::merge`]).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; bucket_bounds().len() + 1],
            sum: 0,
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another snapshot in: exact bucket-wise addition (the grid
    /// is shared, so no re-binning and no error).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the bucket
    /// holding the value of rank `ceil(q * count)` — i.e. an upper bound
    /// on the true quantile that is exact up to the grid resolution
    /// (<= 12.5% above the true value). Returns 0 for an empty
    /// histogram; overflow-bucket quantiles report the last grid bound.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let bounds = bucket_bounds();
                return bounds[i.min(bounds.len() - 1)];
            }
        }
        unreachable!("cumulative count reaches the total")
    }

    /// Cumulative `(upper_bound, count_le)` pairs in grid order; the
    /// final pair is `(None, total)` — Prometheus's `+Inf` bucket.
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let bounds = bucket_bounds();
        let mut out = Vec::with_capacity(self.counts.len());
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            out.push((bounds.get(i).copied(), cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_and_log_scale() {
        let b = bucket_bounds();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(&b[..12], &[1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16]);
        // Relative grid resolution: each step is at most 25% of the
        // lower bound past the linear run.
        for w in b.windows(2) {
            assert!(w[1] - w[0] <= w[0].div_ceil(SUBS), "{w:?}");
        }
        assert_eq!(*b.last().unwrap(), 1 << MAX_OCTAVE);
    }

    #[test]
    fn index_respects_bucket_semantics() {
        let b = bucket_bounds();
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        for (i, &bound) in b.iter().enumerate() {
            assert_eq!(bucket_index(bound), i, "bound {bound} is inclusive");
            assert_eq!(bucket_index(bound + 1), i + 1, "next value spills over");
        }
        assert_eq!(bucket_index(u64::MAX), b.len(), "overflow bucket");
    }

    #[test]
    fn record_quantile_and_merge() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum, 500_500);
        // The p50 of 1..=1000 is 500; its bucket upper bound is 512.
        assert_eq!(s.quantile(0.5), 512);
        // Exact merge doubles every bucket.
        let mut m = s.clone();
        m.merge(&s);
        assert_eq!(m.count(), 2000);
        assert_eq!(m.sum, 1_001_000);
        assert_eq!(m.quantile(0.5), s.quantile(0.5));
        // The +Inf cumulative entry carries the total.
        assert_eq!(m.cumulative().last().unwrap(), &(None, 2000));
    }
}
