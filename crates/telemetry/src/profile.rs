//! Span-tree attribution: folds the flushed span logs into a
//! per-call-path table and a folded-stack export.
//!
//! The summary table ([`crate::TelemetryReport::summary`]) aggregates
//! spans by *name*, losing where a stage was called from — `aggregate`
//! under `verify` and `aggregate` under `check.worker` land in one row.
//! This module rebuilds each thread's call tree from the recorded
//! `(start, duration, depth)` triples and attributes time to full call
//! *paths* instead:
//!
//! * [`crate::TelemetryReport::span_attribution`] — one [`FrameRow`] per
//!   distinct path with call count, total, and **self** time (total
//!   minus time spent in recorded children);
//! * [`crate::TelemetryReport::folded_stacks`] — the same data in the
//!   folded-stack text format consumed by `flamegraph.pl` and
//!   [inferno] (`frame;frame;frame value`, value = self-microseconds),
//!   written by `yu profile --folded-out`.
//!
//! [inferno]: https://github.com/jonhoo/inferno
//!
//! Reconstruction uses only what the collector already records: spans
//! sorted by start time nest by their recorded depth, so the enclosing
//! stack at any point is the chain of still-open spans. A span whose
//! parent never closed (snapshot taken mid-run) attaches to its
//! thread's track root; every path is prefixed with the track label so
//! worker threads stay distinguishable in the flamegraph.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::collector::ThreadLog;
use crate::report::TelemetryReport;

/// Attribution of one distinct call path across all threads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FrameRow {
    /// Semicolon-joined call path, track label first
    /// (`main;verify;aggregate`).
    pub stack: String,
    /// Number of spans recorded at this path.
    pub count: u64,
    /// Sum of span durations at this path, microseconds (includes
    /// child spans).
    pub total_us: u64,
    /// Time at this path not covered by recorded child spans,
    /// microseconds. Sums to total recorded time across all rows.
    pub self_us: u64,
}

/// A frame as used while rebuilding one thread's call tree.
struct OpenFrame {
    path: String,
    dur_us: u64,
    depth: u32,
    child_us: u64,
}

/// Sanitizes a frame component for the folded-stack format: `;` is the
/// frame separator and the last space separates the count, so neither
/// may appear inside a frame.
fn frame_name(name: &str, detail: Option<&String>) -> String {
    let mut frame = match detail {
        Some(d) => format!("{name}({d})"),
        None => name.to_string(),
    };
    frame = frame.replace([';', ' '], "_");
    frame
}

/// Rebuilds one thread's call tree and returns `(path, total, self)`
/// per span, in close order.
fn thread_frames(t: &ThreadLog) -> Vec<(String, u64, u64)> {
    let mut spans: Vec<_> = t.spans.iter().collect();
    // Start order visits parents before their children (a parent opens
    // no later than anything it encloses; ties break toward the
    // shallower span).
    spans.sort_by_key(|s| (s.start_us, s.depth));
    let root = if t.track.is_empty() {
        "thread"
    } else {
        t.track.as_str()
    };
    let root = frame_name(root, None);
    let mut out = Vec::new();
    let mut stack: Vec<OpenFrame> = Vec::new();
    let close = |stack: &mut Vec<OpenFrame>, out: &mut Vec<(String, u64, u64)>| {
        let top = stack.pop().expect("close on empty stack");
        let self_us = top.dur_us.saturating_sub(top.child_us);
        if let Some(parent) = stack.last_mut() {
            parent.child_us += top.dur_us;
        }
        out.push((top.path, top.dur_us, self_us));
    };
    for s in spans {
        // A span at depth d closes everything at depth >= d: the
        // collector only reuses a depth once the previous occupant has
        // dropped.
        while stack.last().is_some_and(|top| top.depth >= s.depth) {
            close(&mut stack, &mut out);
        }
        let frame = frame_name(s.name, s.detail.as_ref());
        let path = match stack.last() {
            Some(parent) => format!("{};{}", parent.path, frame),
            None => format!("{root};{frame}"),
        };
        stack.push(OpenFrame {
            path,
            dur_us: s.dur_us,
            depth: s.depth,
            child_us: 0,
        });
    }
    while !stack.is_empty() {
        close(&mut stack, &mut out);
    }
    out
}

impl TelemetryReport {
    /// Attributes recorded time to full call paths: one [`FrameRow`]
    /// per distinct path across all threads, sorted by descending self
    /// time (ties on path). The self times of all rows sum to the total
    /// recorded span time, so the table is a complete attribution of
    /// where the run went.
    pub fn span_attribution(&self) -> Vec<FrameRow> {
        let mut agg: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        for t in &self.threads {
            for (path, total, selfv) in thread_frames(t) {
                let e = agg.entry(path).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 += total;
                e.2 += selfv;
            }
        }
        let mut rows: Vec<FrameRow> = agg
            .into_iter()
            .map(|(stack, (count, total_us, self_us))| FrameRow {
                stack,
                count,
                total_us,
                self_us,
            })
            .collect();
        rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.stack.cmp(&b.stack)));
        rows
    }

    /// Renders the folded-stack text consumed by `flamegraph.pl` /
    /// inferno: one `frame;frame;frame self_us` line per distinct call
    /// path, in stable (lexicographic) order. Zero-weight paths are
    /// kept — they carry structure (a parent fully covered by its
    /// children) and cost the flamegraph nothing.
    pub fn folded_stacks(&self) -> String {
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for t in &self.threads {
            for (path, _, selfv) in thread_frames(t) {
                *agg.entry(path).or_insert(0) += selfv;
            }
        }
        let mut out = String::new();
        for (path, selfv) in agg {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&selfv.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::SpanEvent;

    fn ev(name: &'static str, start: u64, dur: u64, depth: u32) -> SpanEvent {
        SpanEvent {
            name,
            detail: None,
            start_us: start,
            dur_us: dur,
            depth,
        }
    }

    fn log(track: &str, spans: Vec<SpanEvent>) -> ThreadLog {
        ThreadLog {
            track: track.to_string(),
            spans,
            ..Default::default()
        }
    }

    #[test]
    fn nested_spans_fold_into_paths_with_self_time() {
        // verify [0,100) contains aggregate [10,40) and aggregate [50,90).
        let report = TelemetryReport {
            threads: vec![log(
                "main",
                vec![
                    ev("aggregate", 10, 30, 1),
                    ev("aggregate", 50, 40, 1),
                    ev("verify", 0, 100, 0),
                ],
            )],
        };
        let rows = report.span_attribution();
        let by_stack: BTreeMap<&str, &FrameRow> =
            rows.iter().map(|r| (r.stack.as_str(), r)).collect();
        let verify = by_stack["main;verify"];
        assert_eq!(
            (verify.count, verify.total_us, verify.self_us),
            (1, 100, 30)
        );
        let agg = by_stack["main;verify;aggregate"];
        assert_eq!((agg.count, agg.total_us, agg.self_us), (2, 70, 70));
        // Self times are a complete partition of recorded time.
        let self_sum: u64 = rows.iter().map(|r| r.self_us).sum();
        assert_eq!(self_sum, 100);
        // Rows are sorted by descending self time.
        assert!(rows.windows(2).all(|w| w[0].self_us >= w[1].self_us));
    }

    #[test]
    fn folded_output_is_flamegraph_shaped() {
        let report = TelemetryReport {
            threads: vec![
                log("main", vec![ev("exec", 0, 10, 0)]),
                log(
                    "worker-0",
                    vec![ev("exec.flow", 1, 5, 1), ev("exec.worker", 0, 8, 0)],
                ),
            ],
        };
        let folded = report.folded_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "main;exec 10",
                "worker-0;exec.worker 3",
                "worker-0;exec.worker;exec.flow 5",
            ]
        );
        // Every line: frames then one numeric field after the last space.
        for l in lines {
            let (_, value) = l.rsplit_once(' ').expect("value field");
            value.parse::<u64>().expect("numeric self time");
        }
    }

    #[test]
    fn orphan_spans_attach_to_the_track_root() {
        // Depth-2 span whose ancestors never closed (mid-run snapshot).
        let report = TelemetryReport {
            threads: vec![log("main", vec![ev("aggregate", 5, 7, 2)])],
        };
        let rows = report.span_attribution();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].stack, "main;aggregate");
        assert_eq!(rows[0].self_us, 7);
    }

    #[test]
    fn details_become_frame_qualifiers_and_are_sanitized() {
        let spans = vec![SpanEvent {
            name: "aggregate",
            detail: Some("Link(a b;c)".to_string()),
            start_us: 0,
            dur_us: 3,
            depth: 0,
        }];
        let report = TelemetryReport {
            threads: vec![log("main", spans)],
        };
        let folded = report.folded_stacks();
        assert_eq!(folded, "main;aggregate(Link(a_b_c)) 3\n");
    }

    #[test]
    fn sibling_spans_at_equal_depth_do_not_nest() {
        let report = TelemetryReport {
            threads: vec![log("main", vec![ev("a", 0, 4, 0), ev("b", 4, 6, 0)])],
        };
        let folded = report.folded_stacks();
        assert_eq!(folded, "main;a 4\nmain;b 6\n");
    }
}
