//! The structured event log: leveled, machine-readable JSON-lines
//! events for the long-running verifier.
//!
//! Metrics answer "how much / how fast"; events answer "what happened
//! and when". An operator tailing `yu serve --events-out events.jsonl`
//! sees one JSON object per line:
//!
//! ```json
//! {"ts_us": 18234, "level": "info", "kind": "request_finish",
//!  "id": 7, "verified": true, "elapsed_us": 912}
//! ```
//!
//! The taxonomy (see DESIGN.md §14): `request_start` / `request_finish`
//! (info), `slow_request` (warn, over the configured threshold),
//! `verdict_flip` (warn, with the flipped requirement points), `gc`
//! (info, reclaimed node counts), `audit_failure` (error, emitted
//! before the auditor panics so the operator sees *why* the daemon
//! died), and `serve_error` (warn, malformed or rejected requests).
//!
//! Emission is gated on a configured sink plus a minimum level; with no
//! sink the guard is one relaxed atomic load, and call sites build
//! their field lists only after checking [`events_enabled`], so the
//! disabled path allocates nothing. Event emission never touches
//! verifier state — the bit-identity differential covers events-on runs.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Mutex;

use serde::{Map, Value};

use crate::collector::now_us;

/// Event severity, ordered `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventLevel {
    /// Routine lifecycle events (request start/finish, GC).
    Info,
    /// Operator attention (slow requests, verdict flips, bad requests).
    Warn,
    /// Failures (invariant-audit violations).
    Error,
}

impl EventLevel {
    /// The lowercase wire name (`"info"` / `"warn"` / `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            EventLevel::Info => "info",
            EventLevel::Warn => "warn",
            EventLevel::Error => "error",
        }
    }
}

enum Sink {
    Off,
    File(BufWriter<File>),
    /// In-memory capture for tests.
    Memory(Vec<String>),
}

static SINK: Mutex<Sink> = Mutex::new(Sink::Off);
static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);
/// Minimum level that gets written, as `EventLevel as u8`.
static MIN_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Whether any event sink is configured: the one-relaxed-load guard
/// call sites check before building field lists.
#[inline]
pub fn events_enabled() -> bool {
    SINK_ACTIVE.load(Ordering::Relaxed)
}

/// Routes events to a JSON-lines file (created or truncated). Every
/// event is flushed on write so `tail -f` and crash post-mortems see
/// complete lines.
pub fn set_event_sink_file(path: &Path) -> std::io::Result<()> {
    let f = File::create(path)?;
    *SINK.lock().expect("event sink poisoned") = Sink::File(BufWriter::new(f));
    SINK_ACTIVE.store(true, Ordering::Relaxed);
    Ok(())
}

/// Routes events to an in-memory buffer (tests); drain with
/// [`take_memory_events`].
pub fn set_event_sink_memory() {
    *SINK.lock().expect("event sink poisoned") = Sink::Memory(Vec::new());
    SINK_ACTIVE.store(true, Ordering::Relaxed);
}

/// Disables event emission and drops the sink (flushing a file sink).
pub fn close_event_sink() {
    SINK_ACTIVE.store(false, Ordering::Relaxed);
    *SINK.lock().expect("event sink poisoned") = Sink::Off;
}

/// Drains the in-memory sink (empty unless [`set_event_sink_memory`]).
pub fn take_memory_events() -> Vec<String> {
    match &mut *SINK.lock().expect("event sink poisoned") {
        Sink::Memory(lines) => std::mem::take(lines),
        _ => Vec::new(),
    }
}

/// Sets the minimum level written to the sink (default `Info`).
pub fn set_event_min_level(level: EventLevel) {
    MIN_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Emits one event: a JSON line with `ts_us` (microseconds since the
/// process telemetry epoch), `level`, `kind`, then `fields` in order.
/// A no-op without a sink or below the minimum level.
pub fn emit_event(level: EventLevel, kind: &'static str, fields: Vec<(&'static str, Value)>) {
    if !events_enabled() || (level as u8) < MIN_LEVEL.load(Ordering::Relaxed) {
        return;
    }
    let mut m = Map::new();
    m.insert("ts_us", Value::Int(now_us() as i128));
    m.insert("level", Value::Str(level.as_str().to_string()));
    m.insert("kind", Value::Str(kind.to_string()));
    for (k, v) in fields {
        m.insert(k, v);
    }
    let line = Value::Map(m).to_string();
    match &mut *SINK.lock().expect("event sink poisoned") {
        Sink::Off => {}
        Sink::File(w) => {
            // A full disk must not take the verifier down with it.
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        Sink::Memory(lines) => lines.push(line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_names() {
        assert!(EventLevel::Info < EventLevel::Warn);
        assert!(EventLevel::Warn < EventLevel::Error);
        assert_eq!(EventLevel::Warn.as_str(), "warn");
    }
}
