//! Chrome trace-event exporter: renders a [`TelemetryReport`] as the
//! JSON object format understood by `chrome://tracing` and Perfetto.

use serde::{Map, Value};

use crate::registry::MetricKind;
use crate::report::TelemetryReport;

impl TelemetryReport {
    /// Renders the report as Chrome trace-event JSON (the `traceEvents`
    /// object format): a process-name (`"M"`) metadata event, one
    /// complete (`"X"`) event per span, one thread-name (`"M"`)
    /// metadata event per thread (so each flushed thread appears as its
    /// own named track), and — when the metrics registry is recording —
    /// one counter (`"C"`) event per non-empty registry histogram, so
    /// the latency distributions show up as self-described counter
    /// tracks alongside the spans in Perfetto. Timestamps/durations are
    /// microseconds from the shared process epoch. Written by
    /// `yu verify --trace-out FILE`.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<Value> = Vec::new();
        let mut process = Map::new();
        process.insert("ph", Value::Str("M".into()));
        process.insert("name", Value::Str("process_name".into()));
        process.insert("pid", Value::Int(1));
        process.insert("tid", Value::Int(0));
        let mut args = Map::new();
        args.insert("name", Value::Str("yu".into()));
        process.insert("args", Value::Map(args));
        events.push(Value::Map(process));
        for (tid, t) in self.threads.iter().enumerate() {
            let tid = tid as i128 + 1;
            let mut meta = Map::new();
            meta.insert("ph", Value::Str("M".into()));
            meta.insert("name", Value::Str("thread_name".into()));
            meta.insert("pid", Value::Int(1));
            meta.insert("tid", Value::Int(tid));
            let mut args = Map::new();
            args.insert("name", Value::Str(t.track.clone()));
            meta.insert("args", Value::Map(args));
            events.push(Value::Map(meta));

            for s in &t.spans {
                let mut ev = Map::new();
                ev.insert("ph", Value::Str("X".into()));
                ev.insert("name", Value::Str(s.name.to_string()));
                ev.insert("cat", Value::Str("yu".into()));
                ev.insert("pid", Value::Int(1));
                ev.insert("tid", Value::Int(tid));
                ev.insert("ts", Value::Int(s.start_us as i128));
                ev.insert("dur", Value::Int(s.dur_us as i128));
                let mut args = Map::new();
                args.insert("depth", Value::Int(s.depth as i128));
                if let Some(detail) = &s.detail {
                    args.insert("detail", Value::Str(detail.clone()));
                }
                ev.insert("args", Value::Map(args));
                events.push(Value::Map(ev));
            }
        }
        // Registry histograms as counter tracks, stamped at the end of
        // the recorded timeline so they read as "state after the run".
        if crate::registry_enabled() {
            let end_ts = self
                .threads
                .iter()
                .flat_map(|t| t.spans.iter())
                .map(|s| s.start_us + s.dur_us)
                .max()
                .unwrap_or(0);
            for d in crate::registry().descriptors() {
                let MetricKind::Histogram(h, scale) = d.metric else {
                    continue;
                };
                let snap = h.snapshot();
                if snap.count() == 0 {
                    continue;
                }
                let mut ev = Map::new();
                ev.insert("ph", Value::Str("C".into()));
                ev.insert("name", Value::Str(d.name.to_string()));
                ev.insert("pid", Value::Int(1));
                ev.insert("tid", Value::Int(0));
                ev.insert("ts", Value::Int(end_ts as i128));
                let mut args = Map::new();
                args.insert("count", Value::Int(snap.count() as i128));
                args.insert("sum", Value::Float(snap.sum as f64 * scale));
                args.insert("p99", Value::Float(snap.quantile(0.99) as f64 * scale));
                ev.insert("args", Value::Map(args));
                events.push(Value::Map(ev));
            }
        }
        let mut root = Map::new();
        root.insert("traceEvents", Value::Seq(events));
        root.insert("displayTimeUnit", Value::Str("ms".into()));
        let mut out = String::new();
        serde::write_json(&Value::Map(root), None, 0, &mut out);
        out.push('\n');
        out
    }
}
