//! Chrome trace-event exporter: renders a [`TelemetryReport`] as the
//! JSON object format understood by `chrome://tracing` and Perfetto.

use serde::{Map, Value};

use crate::report::TelemetryReport;

impl TelemetryReport {
    /// Renders the report as Chrome trace-event JSON (the `traceEvents`
    /// object format): one complete (`"X"`) event per span and one
    /// thread-name (`"M"`) metadata event per thread, so each flushed
    /// thread appears as its own named track. Timestamps/durations are
    /// microseconds from the shared process epoch. Written by
    /// `yu verify --trace-out FILE`.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<Value> = Vec::new();
        for (tid, t) in self.threads.iter().enumerate() {
            let tid = tid as i128 + 1;
            let mut meta = Map::new();
            meta.insert("ph", Value::Str("M".into()));
            meta.insert("name", Value::Str("thread_name".into()));
            meta.insert("pid", Value::Int(1));
            meta.insert("tid", Value::Int(tid));
            let mut args = Map::new();
            args.insert("name", Value::Str(t.track.clone()));
            meta.insert("args", Value::Map(args));
            events.push(Value::Map(meta));

            for s in &t.spans {
                let mut ev = Map::new();
                ev.insert("ph", Value::Str("X".into()));
                ev.insert("name", Value::Str(s.name.to_string()));
                ev.insert("cat", Value::Str("yu".into()));
                ev.insert("pid", Value::Int(1));
                ev.insert("tid", Value::Int(tid));
                ev.insert("ts", Value::Int(s.start_us as i128));
                ev.insert("dur", Value::Int(s.dur_us as i128));
                let mut args = Map::new();
                args.insert("depth", Value::Int(s.depth as i128));
                if let Some(detail) = &s.detail {
                    args.insert("detail", Value::Str(detail.clone()));
                }
                ev.insert("args", Value::Map(args));
                events.push(Value::Map(ev));
            }
        }
        let mut root = Map::new();
        root.insert("traceEvents", Value::Seq(events));
        root.insert("displayTimeUnit", Value::Str("ms".into()));
        let mut out = String::new();
        serde::write_json(&Value::Map(root), None, 0, &mut out);
        out.push('\n');
        out
    }
}
