//! Property-based tests for the network substrate: the LPM trie against a
//! linear-scan oracle, prefix parsing round trips, and scenario
//! enumeration invariants.

use proptest::prelude::*;
use yu_mtbdd::{Mtbdd, Ratio, Term};
use yu_net::{
    scenario_count, scenarios_up_to_k, FailureMode, FailureVars, Ipv4, Prefix, PrefixTrie, Topology,
};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::new(Ipv4(addr), len))
}

proptest! {
    /// The trie's `matches` equals a brute-force scan, in the same
    /// most-specific-first order.
    #[test]
    fn trie_matches_linear_scan(
        prefixes in proptest::collection::btree_set(arb_prefix(), 0..40),
        probes in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i);
        }
        for probe in probes {
            let ip = Ipv4(probe);
            let got: Vec<Prefix> = trie.matches(ip).into_iter().map(|(p, _)| p).collect();
            let mut want: Vec<Prefix> = prefixes
                .iter()
                .copied()
                .filter(|p| p.contains(ip))
                .collect();
            want.sort_by_key(|p| std::cmp::Reverse(p.len()));
            prop_assert_eq!(got, want);
        }
    }

    /// Prefix parse/display round trip.
    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(back, p);
    }

    /// Prefix containment is consistent with `covers`.
    #[test]
    fn covers_iff_contains_network(a in arb_prefix(), b in arb_prefix()) {
        let covers = a.covers(&b);
        let by_def = b.len() >= a.len() && a.contains(b.addr());
        prop_assert_eq!(covers, by_def);
    }

    /// Scenario enumeration yields exactly `Σ C(n, i)` distinct scenarios,
    /// in non-decreasing failure count, each within budget.
    #[test]
    fn enumeration_count_and_order(n_links in 1usize..=7, k in 0usize..=3) {
        let mut t = Topology::new();
        let a = t.add_router("a", Ipv4::new(1, 0, 0, 1), 1);
        let b = t.add_router("b", Ipv4::new(1, 0, 0, 2), 1);
        for _ in 0..n_links {
            t.add_link(a, b, 1, Ratio::int(1));
        }
        let all: Vec<_> = scenarios_up_to_k(&t, FailureMode::Links, k).collect();
        prop_assert_eq!(all.len() as u128, scenario_count(n_links, k));
        let mut seen = std::collections::HashSet::new();
        let mut last = 0;
        for s in &all {
            prop_assert!(s.count() <= k);
            prop_assert!(s.count() >= last, "non-decreasing failure count");
            last = s.count();
            prop_assert!(seen.insert(format!("{s:?}")), "duplicate scenario");
        }
    }

    /// `scenario_of_path` ↔ `assignment` round trip: decoding any
    /// root-to-terminal path of a KREDUCE-d diagram to a concrete failure
    /// scenario and re-evaluating under that scenario's assignment
    /// reproduces the path's terminal value exactly — the property that
    /// makes a violating path a trustworthy counterexample (Theorem 5.1)
    /// and per-flow blame sum exactly (Lemma 1).
    #[test]
    fn scenario_of_path_assignment_roundtrip(
        n_links in 1usize..=6,
        k in 0u32..=3,
        coeffs in proptest::collection::vec(1i64..=50, 6),
    ) {
        let mut t = Topology::new();
        let a = t.add_router("a", Ipv4::new(1, 0, 0, 1), 1);
        let b = t.add_router("b", Ipv4::new(1, 0, 0, 2), 1);
        for _ in 0..n_links {
            t.add_link(a, b, 1, Ratio::int(1));
        }
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &t, FailureMode::Links);
        // load = 10 + Σ coeff_i · [link i failed]
        let mut f = m.constant(Ratio::int(10));
        for (i, u) in t.ulinks().enumerate() {
            let v = fv.link_var(u).unwrap();
            let g = m.nvar_guard(v);
            let extra = m.scale(g, Term::int(coeffs[i % coeffs.len()]));
            f = m.add(f, extra);
        }
        let reduced = m.kreduce(f, k);
        for path in m.all_paths(reduced) {
            let s = fv.scenario_of_path(&path);
            // Post-KREDUCE paths encode at most k failures (Lemma 2).
            prop_assert!(s.count() <= k as usize);
            // The reduced diagram evaluates to the path's terminal ...
            let got = m.eval(reduced, fv.assignment(&s));
            prop_assert_eq!(&got, &path.value);
            // ... and so does the exact (unreduced) one (Lemma 1).
            let exact = m.eval(f, fv.assignment(&s));
            prop_assert_eq!(&exact, &path.value);
        }
    }
}
