//! The complete network: topology plus per-router configuration, with the
//! derived views (BGP sessions, IGP areas, delivery points) that both the
//! symbolic and the concrete simulators consume.

use crate::addr::{Ipv4, Prefix};
use crate::config::{BgpConfig, RouterConfig, SrPolicy};
use crate::topology::{AsNum, LinkId, RouterId, Topology, ULinkId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A BGP session between two routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BgpSession {
    /// External session riding a physical link (the directed link is the
    /// direction *towards the receiver*; routes learned over it resolve to
    /// that link's reverse as the direct next hop).
    Ebgp {
        /// Undirected link carrying the session.
        ulink: ULinkId,
    },
    /// Internal session between loopbacks; up when the IGP connects them.
    Ibgp,
}

/// A fully specified network.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    /// The graph.
    pub topo: Topology,
    /// Per-router configuration, indexed by `RouterId`.
    pub configs: Vec<RouterConfig>,
}

impl Network {
    /// Wraps a topology with default (empty) configurations.
    pub fn new(topo: Topology) -> Network {
        let configs = vec![RouterConfig::default(); topo.num_routers()];
        Network { topo, configs }
    }

    /// The configuration of router `r`.
    pub fn config(&self, r: RouterId) -> &RouterConfig {
        &self.configs[r.0 as usize]
    }

    /// Mutable configuration of router `r`.
    pub fn config_mut(&mut self, r: RouterId) -> &mut RouterConfig {
        &mut self.configs[r.0 as usize]
    }

    /// The BGP configuration of `r`, if BGP runs there.
    pub fn bgp(&self, r: RouterId) -> Option<&BgpConfig> {
        self.config(r).bgp.as_ref()
    }

    /// The AS of router `r`.
    pub fn asn(&self, r: RouterId) -> AsNum {
        self.topo.router(r).asn
    }

    /// Derived BGP sessions of router `r`: `(peer, session)` pairs.
    ///
    /// * eBGP: one session per physical link to a BGP router in another AS
    ///   (parallel links create parallel sessions, like real per-link eBGP).
    /// * iBGP: full mesh with every other BGP router of the same AS.
    pub fn bgp_sessions(&self, r: RouterId) -> Vec<(RouterId, BgpSession)> {
        if self.bgp(r).is_none() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for &l in self.topo.out_links(r) {
            let peer = self.topo.link(l).to;
            if self.bgp(peer).is_some() && self.asn(peer) != self.asn(r) {
                out.push((
                    peer,
                    BgpSession::Ebgp {
                        ulink: self.topo.link(l).ulink,
                    },
                ));
            }
        }
        for peer in self.topo.routers() {
            if peer != r && self.asn(peer) == self.asn(r) && self.bgp(peer).is_some() {
                out.push((peer, BgpSession::Ibgp));
            }
        }
        out
    }

    /// Directed links on which an IS-IS adjacency forms: both endpoints run
    /// IS-IS and are in the same AS.
    pub fn isis_links(&self, r: RouterId) -> Vec<LinkId> {
        if !self.config(r).isis_enabled {
            return Vec::new();
        }
        self.topo
            .out_links(r)
            .iter()
            .copied()
            .filter(|&l| {
                let peer = self.topo.link(l).to;
                self.config(peer).isis_enabled && self.asn(peer) == self.asn(r)
            })
            .collect()
    }

    /// All destination addresses the IGP of `r`'s AS must resolve: the
    /// loopbacks of IS-IS routers in that AS (deduplicated — anycast
    /// loopbacks appear once).
    pub fn igp_destinations(&self, asn: AsNum) -> Vec<Ipv4> {
        let mut set = std::collections::BTreeSet::new();
        for r in self.topo.routers() {
            if self.asn(r) == asn && self.config(r).isis_enabled {
                set.insert(self.topo.router(r).loopback);
            }
        }
        set.into_iter().collect()
    }

    /// Routers of an AS, in id order.
    pub fn routers_in_as(&self, asn: AsNum) -> Vec<RouterId> {
        self.topo
            .routers()
            .filter(|&r| self.asn(r) == asn)
            .collect()
    }

    /// All ASes present, with their routers.
    pub fn ases(&self) -> BTreeMap<AsNum, Vec<RouterId>> {
        let mut m: BTreeMap<AsNum, Vec<RouterId>> = BTreeMap::new();
        for r in self.topo.routers() {
            m.entry(self.asn(r)).or_default().push(r);
        }
        m
    }

    /// Routers owning loopback `ip` *within* AS `asn` and running IS-IS
    /// (the owners an IGP lookup can terminate at).
    pub fn igp_owners(&self, asn: AsNum, ip: Ipv4) -> Vec<RouterId> {
        self.topo
            .loopback_owners(ip)
            .into_iter()
            .filter(|&r| self.asn(r) == asn && self.config(r).isis_enabled)
            .collect()
    }

    /// All prefixes appearing anywhere in the configuration (connected,
    /// static, BGP networks) plus loopback host routes — the universe used
    /// for prefix classification.
    pub fn all_prefixes(&self) -> Vec<Prefix> {
        let mut set = std::collections::BTreeSet::new();
        for r in self.topo.routers() {
            let c = self.config(r);
            set.extend(c.connected.iter().copied());
            set.extend(c.static_routes.iter().map(|s| s.prefix));
            if let Some(b) = &c.bgp {
                set.extend(b.networks.iter().copied());
            }
            set.insert(Prefix::host(self.topo.router(r).loopback));
        }
        set.into_iter().collect()
    }

    /// The SR policy of `r` matching `(nip, dscp)`, if any.
    pub fn sr_policy(&self, r: RouterId, nip: Ipv4, dscp: u8) -> Option<&SrPolicy> {
        self.config(r).sr_policy_for(nip, dscp)
    }

    /// Basic well-formedness checks; returns human-readable problems.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.configs.len() != self.topo.num_routers() {
            problems.push(format!(
                "config count {} != router count {}",
                self.configs.len(),
                self.topo.num_routers()
            ));
        }
        for r in self.topo.routers() {
            let cfg = self.config(r);
            for pol in &cfg.sr_policies {
                if pol.paths.is_empty() {
                    problems.push(format!(
                        "router {} has an SR policy for {} with no paths",
                        self.topo.router(r).name,
                        pol.endpoint
                    ));
                }
                for p in &pol.paths {
                    if p.segments.is_empty() {
                        problems.push(format!(
                            "router {} has an SR path with no segments",
                            self.topo.router(r).name
                        ));
                    }
                }
            }
            if let Some(b) = &cfg.bgp {
                for n in &b.networks {
                    let owned = cfg.connected.iter().any(|c| c == n)
                        || cfg.static_routes.iter().any(|s| s.prefix == *n);
                    if !owned {
                        problems.push(format!(
                            "router {} originates {} into BGP without a connected or static route",
                            self.topo.router(r).name,
                            n
                        ));
                    }
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_mtbdd::Ratio;

    fn two_as_net() -> (Network, RouterId, RouterId, RouterId) {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 300);
        let d = t.add_router("D", Ipv4::new(10, 0, 0, 4), 300);
        t.add_link(a, c, 10, Ratio::int(100));
        t.add_link(c, d, 10, Ratio::int(100));
        let mut n = Network::new(t);
        for r in [a, c, d] {
            n.config_mut(r).bgp = Some(BgpConfig::default());
            n.config_mut(r).isis_enabled = true;
        }
        (n, a, c, d)
    }

    #[test]
    fn session_derivation() {
        let (n, a, c, d) = two_as_net();
        let sa = n.bgp_sessions(a);
        assert_eq!(sa.len(), 1);
        assert!(matches!(sa[0], (p, BgpSession::Ebgp { .. }) if p == c));
        let sc = n.bgp_sessions(c);
        // eBGP to A, iBGP to D.
        assert_eq!(sc.len(), 2);
        assert!(sc
            .iter()
            .any(|(p, s)| *p == a && matches!(s, BgpSession::Ebgp { .. })));
        assert!(sc
            .iter()
            .any(|(p, s)| *p == d && matches!(s, BgpSession::Ibgp)));
    }

    #[test]
    fn isis_links_stay_within_as() {
        let (n, a, c, _) = two_as_net();
        // A-C crosses the AS boundary: no adjacency.
        assert!(n.isis_links(a).is_empty());
        let cl = n.isis_links(c);
        assert_eq!(cl.len(), 1);
        assert_eq!(n.topo.link(cl[0]).to.0, 2);
    }

    #[test]
    fn igp_destinations_dedup_anycast() {
        let mut t = Topology::new();
        let b1 = t.add_router("B1", Ipv4::new(1, 1, 1, 1), 300);
        let b2 = t.add_router("B2", Ipv4::new(1, 1, 1, 1), 300);
        t.add_link(b1, b2, 10, Ratio::int(100));
        let mut n = Network::new(t);
        n.config_mut(b1).isis_enabled = true;
        n.config_mut(b2).isis_enabled = true;
        assert_eq!(n.igp_destinations(300), vec![Ipv4::new(1, 1, 1, 1)]);
        assert_eq!(n.igp_owners(300, Ipv4::new(1, 1, 1, 1)), vec![b1, b2]);
    }

    #[test]
    fn validation_flags_unowned_networks() {
        let (mut n, a, _, _) = two_as_net();
        n.config_mut(a).bgp.as_mut().unwrap().networks = vec!["100.0.0.0/24".parse().unwrap()];
        let problems = n.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("originates"));
        n.config_mut(a)
            .connected
            .push("100.0.0.0/24".parse().unwrap());
        assert!(n.validate().is_empty());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use yu_mtbdd::Ratio;

    #[test]
    fn parallel_links_create_parallel_ebgp_sessions() {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(1, 0, 0, 1), 100);
        let b = t.add_router("B", Ipv4::new(1, 0, 0, 2), 200);
        t.add_link(a, b, 1, Ratio::int(100));
        t.add_link(a, b, 1, Ratio::int(100));
        let mut n = Network::new(t);
        n.config_mut(a).bgp = Some(BgpConfig::default());
        n.config_mut(b).bgp = Some(BgpConfig::default());
        let sessions = n.bgp_sessions(a);
        assert_eq!(sessions.len(), 2, "one eBGP session per physical link");
        let ulinks: std::collections::BTreeSet<_> = sessions
            .iter()
            .map(|(_, s)| match s {
                BgpSession::Ebgp { ulink } => *ulink,
                BgpSession::Ibgp => panic!("unexpected iBGP"),
            })
            .collect();
        assert_eq!(ulinks.len(), 2);
    }

    #[test]
    fn all_prefixes_collects_every_source() {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(1, 0, 0, 1), 100);
        let mut n = Network::new(t.clone());
        n.config_mut(a)
            .connected
            .push("20.0.0.0/24".parse().unwrap());
        n.config_mut(a)
            .static_routes
            .push(crate::config::StaticRoute {
                prefix: "30.0.0.0/8".parse().unwrap(),
                next_hop: crate::config::StaticNextHop::Null0,
            });
        n.config_mut(a).bgp = Some(BgpConfig {
            networks: vec!["20.0.0.0/24".parse().unwrap()],
            ..Default::default()
        });
        let ps = n.all_prefixes();
        assert!(ps.contains(&"20.0.0.0/24".parse().unwrap()));
        assert!(ps.contains(&"30.0.0.0/8".parse().unwrap()));
        assert!(
            ps.contains(&Prefix::host(Ipv4::new(1, 0, 0, 1))),
            "loopback host route"
        );
        assert_eq!(ps.len(), 3);
    }
}
