//! Traffic load properties (TLPs).
//!
//! A TLP is a set of `{point: [v1, v2]}` requirements (paper §3.2): the
//! traffic load at each point must stay within the range in every failure
//! scenario with at most `k` failures. Points are directed links plus two
//! pseudo-sinks per router — delivered traffic (for "traffic to the
//! destination must not drop below X", property P1 of the motivating
//! example) and dropped traffic (blackholes, as in Fig. 10).

use crate::topology::{LinkId, RouterId, Topology};
use serde::{Deserialize, Serialize};
use yu_mtbdd::Ratio;

/// A measurement point for a traffic load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LoadPoint {
    /// A directed link.
    Link(LinkId),
    /// Traffic delivered locally at a router (it owns a connected network
    /// covering the destination).
    Delivered(RouterId),
    /// Traffic dropped at a router (Null0 route or no matching route).
    Dropped(RouterId),
}

impl LoadPoint {
    /// Human-readable label.
    pub fn describe(&self, topo: &Topology) -> String {
        match self {
            LoadPoint::Link(l) => format!("link {}", topo.link_label(*l)),
            LoadPoint::Delivered(r) => format!("delivered@{}", topo.router(*r).name),
            LoadPoint::Dropped(r) => format!("dropped@{}", topo.router(*r).name),
        }
    }
}

/// One requirement: the load at `point` must stay within `[min, max]`
/// (either bound may be absent).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlpReq {
    /// Where the load is measured.
    pub point: LoadPoint,
    /// Lower bound (inclusive), if any.
    pub min: Option<Ratio>,
    /// Upper bound (inclusive), if any.
    pub max: Option<Ratio>,
}

impl TlpReq {
    /// Requires `load <= max`; a violation is any scenario where the load
    /// strictly exceeds the bound.
    pub fn at_most(point: LoadPoint, max: Ratio) -> TlpReq {
        TlpReq {
            point,
            min: None,
            max: Some(max),
        }
    }

    /// Requires `load >= min`.
    pub fn at_least(point: LoadPoint, min: Ratio) -> TlpReq {
        TlpReq {
            point,
            min: Some(min),
            max: None,
        }
    }

    /// Whether a concrete load satisfies this requirement.
    pub fn satisfied_by(&self, load: Ratio) -> bool {
        self.min.as_ref().is_none_or(|m| &load >= m) && self.max.as_ref().is_none_or(|m| &load <= m)
    }
}

/// A traffic load property: a conjunction of requirements.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tlp {
    /// All requirements; the property holds when every one holds.
    pub reqs: Vec<TlpReq>,
}

impl Tlp {
    /// Empty property (trivially true).
    pub fn new() -> Tlp {
        Tlp::default()
    }

    /// "No link is overloaded": on every directed link the load must stay
    /// at or below `fraction * capacity`. The paper's P2 "overloaded means
    /// >= 95 Gbps on a 100 Gbps link" corresponds to `fraction` slightly
    /// > under 95/100; with exact rationals a violation is any load strictly
    /// > above the bound, so passing `fraction = 94999/100000` reproduces the
    /// > paper's inclusive-overload threshold exactly.
    pub fn no_overload(topo: &Topology, fraction: Ratio) -> Tlp {
        Tlp {
            reqs: topo
                .links()
                .map(|l| {
                    TlpReq::at_most(
                        LoadPoint::Link(l),
                        topo.link(l).capacity.clone() * fraction.clone(),
                    )
                })
                .collect(),
        }
    }

    /// Adds a requirement and returns `self` (builder style).
    pub fn with(mut self, req: TlpReq) -> Tlp {
        self.reqs.push(req);
        self
    }

    /// Requirements measured on links only.
    pub fn link_reqs(&self) -> impl Iterator<Item = &TlpReq> {
        self.reqs
            .iter()
            .filter(|r| matches!(r.point, LoadPoint::Link(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4;

    #[test]
    fn bounds_check() {
        let r = TlpReq {
            point: LoadPoint::Dropped(RouterId(0)),
            min: Some(Ratio::int(10)),
            max: Some(Ratio::int(20)),
        };
        assert!(r.satisfied_by(Ratio::int(10)));
        assert!(r.satisfied_by(Ratio::int(20)));
        assert!(!r.satisfied_by(Ratio::int(9)));
        assert!(!r.satisfied_by(Ratio::int(21)));
        assert!(TlpReq::at_most(r.point, Ratio::int(5)).satisfied_by(Ratio::ZERO));
        assert!(TlpReq::at_least(r.point, Ratio::int(5)).satisfied_by(Ratio::int(99)));
    }

    #[test]
    fn no_overload_covers_all_links() {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(1, 0, 0, 1), 1);
        let b = t.add_router("B", Ipv4::new(1, 0, 0, 2), 1);
        t.add_link(a, b, 1, Ratio::int(100));
        let tlp = Tlp::no_overload(&t, Ratio::new(95, 100));
        assert_eq!(tlp.reqs.len(), 2); // two directions
        assert_eq!(tlp.reqs[0].max, Some(Ratio::int(95)));
        assert_eq!(tlp.link_reqs().count(), 2);
    }

    #[test]
    fn describe_points() {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(1, 0, 0, 1), 1);
        let b = t.add_router("B", Ipv4::new(1, 0, 0, 2), 1);
        t.add_link(a, b, 1, Ratio::int(100));
        assert_eq!(LoadPoint::Link(LinkId(0)).describe(&t), "link A->B");
        assert_eq!(LoadPoint::Delivered(b).describe(&t), "delivered@B");
        assert_eq!(LoadPoint::Dropped(a).describe(&t), "dropped@A");
    }
}
