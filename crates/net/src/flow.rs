//! Traffic flows.
//!
//! A flow is the paper's `(intf, srcip, dstip, dscp)` tuple plus a volume.
//! The ingress interface is modeled as the router where the flow enters the
//! network (the paper's pseudo incoming link `l_R` of Algorithm 1).

use crate::addr::Ipv4;
use crate::topology::RouterId;
use serde::{Deserialize, Serialize};
use yu_mtbdd::Ratio;

/// One traffic flow entering the network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Router where the flow enters the network.
    pub ingress: RouterId,
    /// Source address (not used for forwarding; kept for identification).
    pub src: Ipv4,
    /// Destination address (drives LPM and SR policy matching).
    pub dst: Ipv4,
    /// DSCP value (drives SR policy matching).
    pub dscp: u8,
    /// Traffic volume in Gbps.
    pub volume: Ratio,
}

impl Flow {
    /// Convenience constructor.
    pub fn new(ingress: RouterId, src: Ipv4, dst: Ipv4, dscp: u8, volume: Ratio) -> Flow {
        Flow {
            ingress,
            src,
            dst,
            dscp,
            volume,
        }
    }

    /// The forwarding-relevant key of the flow: two flows with equal keys
    /// are forwarded identically everywhere in every failure scenario
    /// (the "global flow equivalence" heuristic of §6; source addresses do
    /// not affect forwarding in this model).
    pub fn forwarding_key(&self) -> (RouterId, Ipv4, u8) {
        (self.ingress, self.dst, self.dscp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_key_ignores_src_and_volume() {
        let f1 = Flow::new(
            RouterId(0),
            Ipv4::new(11, 0, 0, 1),
            Ipv4::new(100, 0, 0, 1),
            0,
            Ratio::int(20),
        );
        let f2 = Flow::new(
            RouterId(0),
            Ipv4::new(11, 0, 0, 99),
            Ipv4::new(100, 0, 0, 1),
            0,
            Ratio::int(80),
        );
        assert_eq!(f1.forwarding_key(), f2.forwarding_key());
        let f3 = Flow {
            dscp: 5,
            ..f1.clone()
        };
        assert_ne!(f1.forwarding_key(), f3.forwarding_key());
    }
}
