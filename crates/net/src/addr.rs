//! IPv4 addressing and prefixes.
//!
//! The WAN model uses plain IPv4 addresses for loopbacks, interface
//! endpoints, flow endpoints, and route prefixes. (The paper's production
//! WAN uses SRv6; segment identifiers here are router loopback addresses,
//! which preserves the forwarding semantics while keeping addresses 32-bit.)

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 32-bit IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4 {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets of the address.
    pub fn octets(&self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Error parsing an address or prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address or prefix: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Ipv4 {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Ipv4, AddrParseError> {
        let mut it = s.split('.');
        let mut octets = [0u8; 4];
        for o in octets.iter_mut() {
            *o = it
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| AddrParseError(s.into()))?;
        }
        if it.next().is_some() {
            return Err(AddrParseError(s.into()));
        }
        Ok(Ipv4(u32::from_be_bytes(octets)))
    }
}

/// An IPv4 prefix `addr/len` (host bits zeroed on construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    addr: Ipv4,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix {
        addr: Ipv4(0),
        len: 0,
    };

    /// Builds `addr/len`, zeroing host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            addr: Ipv4(addr.0 & mask(len)),
            len,
        }
    }

    /// A host route `addr/32`.
    pub fn host(addr: Ipv4) -> Prefix {
        Prefix::new(addr, 32)
    }

    /// The network address.
    pub fn addr(&self) -> Ipv4 {
        self.addr
    }

    /// The prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `ip` is covered by this prefix.
    pub fn contains(&self, ip: Ipv4) -> bool {
        ip.0 & mask(self.len) == self.addr.0
    }

    /// Whether `other` is fully covered by this prefix.
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The `i`-th bit of the network address, counted from the top.
    pub fn bit(&self, i: u8) -> bool {
        debug_assert!(i < self.len);
        self.addr.0 >> (31 - i) & 1 == 1
    }
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Prefix, AddrParseError> {
        let (a, l) = s.split_once('/').ok_or_else(|| AddrParseError(s.into()))?;
        let addr: Ipv4 = a.parse()?;
        let len: u8 = l.parse().map_err(|_| AddrParseError(s.into()))?;
        if len > 32 {
            return Err(AddrParseError(s.into()));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let ip: Ipv4 = "10.0.0.6".parse().unwrap();
        assert_eq!(ip, Ipv4::new(10, 0, 0, 6));
        assert_eq!(ip.to_string(), "10.0.0.6");
        let p: Prefix = "100.0.0.0/24".parse().unwrap();
        assert_eq!(p.to_string(), "100.0.0.0/24");
        assert!("300.0.0.1".parse::<Ipv4>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
    }

    #[test]
    fn host_bits_zeroed() {
        let p = Prefix::new(Ipv4::new(10, 1, 2, 3), 16);
        assert_eq!(p.addr(), Ipv4::new(10, 1, 0, 0));
    }

    #[test]
    fn containment() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(p.contains(Ipv4::new(10, 255, 0, 1)));
        assert!(!p.contains(Ipv4::new(11, 0, 0, 1)));
        let q: Prefix = "10.1.0.0/26".parse().unwrap();
        assert!(p.covers(&q));
        assert!(!q.covers(&p));
        assert!(Prefix::DEFAULT.contains(Ipv4::new(1, 2, 3, 4)));
    }

    #[test]
    fn bits() {
        let p: Prefix = "128.0.0.0/2".parse().unwrap();
        assert!(p.bit(0));
        assert!(!p.bit(1));
    }
}
