//! The failure model: boolean variables per failable element, usability
//! guards, concrete scenarios, and scenario enumeration.
//!
//! The paper verifies TLPs under "arbitrary k failures" of either links or
//! routers (§7 evaluates both, Figs. 11 and 17). Each failable element gets
//! one boolean MTBDD variable; `1` means alive. A directed link is usable
//! iff its undirected link variable and (in router mode) both endpoint
//! router variables are 1.

use crate::topology::{LinkId, RouterId, Topology, ULinkId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use yu_mtbdd::{Mtbdd, NodeRef, Path, Var};

/// Which elements may fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureMode {
    /// Only undirected links fail (the paper's primary setting).
    Links,
    /// Only routers fail (Fig. 17).
    Routers,
    /// Both (budget `k` is shared).
    LinksAndRouters,
}

/// The failable element a variable stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FailureElement {
    /// An undirected link.
    Link(ULinkId),
    /// A router.
    Router(RouterId),
}

/// Allocation of MTBDD variables to failable elements.
#[derive(Debug, Clone)]
pub struct FailureVars {
    mode: FailureMode,
    link_vars: Vec<Option<Var>>,
    router_vars: Vec<Option<Var>>,
    elements: Vec<FailureElement>,
    first_var: Var,
}

impl FailureVars {
    /// Allocates one variable per failable element of `topo` under `mode`.
    pub fn allocate(m: &mut Mtbdd, topo: &Topology, mode: FailureMode) -> FailureVars {
        let mut fv = FailureVars {
            mode,
            link_vars: vec![None; topo.num_ulinks()],
            router_vars: vec![None; topo.num_routers()],
            elements: Vec::new(),
            first_var: m.num_vars(),
        };
        if matches!(mode, FailureMode::Links | FailureMode::LinksAndRouters) {
            for u in topo.ulinks() {
                fv.link_vars[u.0 as usize] = Some(m.fresh_var());
                fv.elements.push(FailureElement::Link(u));
            }
        }
        if matches!(mode, FailureMode::Routers | FailureMode::LinksAndRouters) {
            for r in topo.routers() {
                fv.router_vars[r.0 as usize] = Some(m.fresh_var());
                fv.elements.push(FailureElement::Router(r));
            }
        }
        fv
    }

    /// The failure mode this allocation was built for.
    pub fn mode(&self) -> FailureMode {
        self.mode
    }

    /// The number of failable elements.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// All failable elements in variable order.
    pub fn elements(&self) -> &[FailureElement] {
        &self.elements
    }

    /// The variable guarding undirected link `u`, if links can fail.
    pub fn link_var(&self, u: ULinkId) -> Option<Var> {
        self.link_vars[u.0 as usize]
    }

    /// The variable guarding router `r`, if routers can fail.
    pub fn router_var(&self, r: RouterId) -> Option<Var> {
        self.router_vars[r.0 as usize]
    }

    /// The element a variable stands for, if the variable belongs to this
    /// allocation.
    pub fn element_of(&self, v: Var) -> Option<FailureElement> {
        let ix = v.checked_sub(self.first_var)? as usize;
        self.elements.get(ix).copied()
    }

    /// Guard that is 1 iff router `r` is alive.
    pub fn router_alive(&self, m: &mut Mtbdd, r: RouterId) -> NodeRef {
        match self.router_vars[r.0 as usize] {
            Some(v) => m.var_guard(v),
            None => m.one(),
        }
    }

    /// Guard that is 1 iff directed link `l` is usable: the undirected link
    /// and both endpoint routers are alive.
    pub fn link_usable(&self, m: &mut Mtbdd, topo: &Topology, l: LinkId) -> NodeRef {
        let lk = topo.link(l);
        let mut g = match self.link_vars[lk.ulink.0 as usize] {
            Some(v) => m.var_guard(v),
            None => m.one(),
        };
        for r in [lk.from, lk.to] {
            let rg = self.router_alive(m, r);
            g = m.and(g, rg);
        }
        g
    }

    /// Decodes an MTBDD counterexample path into a concrete scenario
    /// (don't-care variables default to alive).
    pub fn scenario_of_path(&self, path: &Path) -> Scenario {
        let mut s = Scenario::none();
        for &v in &path.failed_vars() {
            match self.element_of(v) {
                Some(FailureElement::Link(u)) => {
                    s.failed_links.insert(u);
                }
                Some(FailureElement::Router(r)) => {
                    s.failed_routers.insert(r);
                }
                None => {}
            }
        }
        s
    }

    /// An assignment function (for [`Mtbdd::eval`]) describing `scenario`.
    pub fn assignment<'a>(&'a self, scenario: &'a Scenario) -> impl Fn(Var) -> bool + 'a {
        move |v| match self.element_of(v) {
            Some(FailureElement::Link(u)) => !scenario.failed_links.contains(&u),
            Some(FailureElement::Router(r)) => !scenario.failed_routers.contains(&r),
            None => true,
        }
    }
}

/// A concrete failure scenario: the sets of failed links and routers.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Scenario {
    /// Failed undirected links.
    pub failed_links: BTreeSet<ULinkId>,
    /// Failed routers.
    pub failed_routers: BTreeSet<RouterId>,
}

impl Scenario {
    /// The scenario with no failures.
    pub fn none() -> Scenario {
        Scenario::default()
    }

    /// The scenario failing exactly the given undirected links.
    pub fn links(links: impl IntoIterator<Item = ULinkId>) -> Scenario {
        Scenario {
            failed_links: links.into_iter().collect(),
            failed_routers: BTreeSet::new(),
        }
    }

    /// The scenario failing exactly the given routers.
    pub fn routers(routers: impl IntoIterator<Item = RouterId>) -> Scenario {
        Scenario {
            failed_links: BTreeSet::new(),
            failed_routers: routers.into_iter().collect(),
        }
    }

    /// Total number of failed elements.
    pub fn count(&self) -> usize {
        self.failed_links.len() + self.failed_routers.len()
    }

    /// Whether router `r` is alive.
    pub fn router_alive(&self, r: RouterId) -> bool {
        !self.failed_routers.contains(&r)
    }

    /// Whether directed link `l` is usable.
    pub fn link_usable(&self, topo: &Topology, l: LinkId) -> bool {
        let lk = topo.link(l);
        !self.failed_links.contains(&lk.ulink)
            && self.router_alive(lk.from)
            && self.router_alive(lk.to)
    }

    /// Human-readable description. Failed links come first, then failed
    /// routers, each group sorted by label, so reports and JSON are
    /// byte-stable regardless of how the scenario was produced.
    pub fn describe(&self, topo: &Topology) -> String {
        if self.count() == 0 {
            return "no failures".into();
        }
        let mut links: Vec<String> = self
            .failed_links
            .iter()
            .map(|&u| format!("link {}", topo.ulink_label(u)))
            .collect();
        links.sort();
        let mut routers: Vec<String> = self
            .failed_routers
            .iter()
            .map(|&r| format!("router {}", topo.router(r).name))
            .collect();
        routers.sort();
        links.extend(routers);
        links.join(", ")
    }
}

/// Iterates over *all* scenarios with at most `k` failed elements under a
/// failure mode — the enumeration the Jingubang/QARC baselines must pay and
/// YU avoids. Scenarios are produced in order of increasing failure count,
/// starting with the no-failure scenario.
pub fn scenarios_up_to_k(
    topo: &Topology,
    mode: FailureMode,
    k: usize,
) -> impl Iterator<Item = Scenario> + '_ {
    let mut elements: Vec<FailureElement> = Vec::new();
    if matches!(mode, FailureMode::Links | FailureMode::LinksAndRouters) {
        elements.extend(topo.ulinks().map(FailureElement::Link));
    }
    if matches!(mode, FailureMode::Routers | FailureMode::LinksAndRouters) {
        elements.extend(topo.routers().map(FailureElement::Router));
    }
    (0..=k.min(elements.len())).flat_map(move |size| {
        Combinations::new(elements.clone(), size).map(|combo| {
            let mut s = Scenario::none();
            for e in combo {
                match e {
                    FailureElement::Link(u) => {
                        s.failed_links.insert(u);
                    }
                    FailureElement::Router(r) => {
                        s.failed_routers.insert(r);
                    }
                }
            }
            s
        })
    })
}

/// Number of scenarios with at most `k` of `n` elements failed.
pub fn scenario_count(n: usize, k: usize) -> u128 {
    let mut total = 0u128;
    for size in 0..=k.min(n) {
        let mut c = 1u128;
        for i in 0..size {
            c = c * (n - i) as u128 / (i + 1) as u128;
        }
        total += c;
    }
    total
}

struct Combinations<T> {
    items: Vec<T>,
    indices: Vec<usize>,
    done: bool,
}

impl<T: Clone> Combinations<T> {
    fn new(items: Vec<T>, size: usize) -> Combinations<T> {
        let done = size > items.len();
        Combinations {
            indices: (0..size).collect(),
            items,
            done,
        }
    }
}

impl<T: Clone> Iterator for Combinations<T> {
    type Item = Vec<T>;
    fn next(&mut self) -> Option<Vec<T>> {
        if self.done {
            return None;
        }
        let out: Vec<T> = self
            .indices
            .iter()
            .map(|&i| self.items[i].clone())
            .collect();
        // Advance to the next combination in lexicographic order.
        let n = self.items.len();
        let k = self.indices.len();
        if k == 0 {
            self.done = true;
            return Some(out);
        }
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.indices[i] != i + n - k {
                self.indices[i] += 1;
                for j in i + 1..k {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                break;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4;
    use yu_mtbdd::{Ratio, Term};

    fn tri() -> Topology {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 1);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 1);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 1);
        t.add_link(a, b, 1, Ratio::int(100));
        t.add_link(b, c, 1, Ratio::int(100));
        t.add_link(a, c, 1, Ratio::int(100));
        t
    }

    #[test]
    fn allocate_links_mode() {
        let t = tri();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &t, FailureMode::Links);
        assert_eq!(fv.num_elements(), 3);
        assert!(fv.link_var(ULinkId(0)).is_some());
        assert!(fv.router_var(RouterId(0)).is_none());
        assert_eq!(fv.element_of(0), Some(FailureElement::Link(ULinkId(0))));
        assert_eq!(fv.element_of(99), None);
    }

    #[test]
    fn link_usable_guard_depends_on_mode() {
        let t = tri();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &t, FailureMode::Routers);
        let l = LinkId(0); // A->B
        let g = fv.link_usable(&mut m, &t, l);
        // Fails when either endpoint router fails.
        let s = Scenario::routers([RouterId(0)]);
        assert_eq!(m.eval(g, fv.assignment(&s)), Term::ZERO);
        let s = Scenario::routers([RouterId(2)]);
        assert_eq!(m.eval(g, fv.assignment(&s)), Term::ONE);
    }

    #[test]
    fn scenario_roundtrip_through_path() {
        let t = tri();
        let mut m = Mtbdd::new();
        let fv = FailureVars::allocate(&mut m, &t, FailureMode::Links);
        let v = fv.link_var(ULinkId(1)).unwrap();
        let g = m.nvar_guard(v); // 1 iff link 1 failed
        let p = m.find_path(g, |t| t.is_one()).unwrap();
        let s = fv.scenario_of_path(&p);
        assert_eq!(s, Scenario::links([ULinkId(1)]));
        assert_eq!(m.eval(g, fv.assignment(&s)), Term::ONE);
    }

    #[test]
    fn enumeration_counts() {
        let t = tri();
        let n: Vec<_> = scenarios_up_to_k(&t, FailureMode::Links, 2).collect();
        // C(3,0) + C(3,1) + C(3,2) = 1 + 3 + 3
        assert_eq!(n.len(), 7);
        assert_eq!(n[0], Scenario::none());
        assert!(n.iter().all(|s| s.count() <= 2));
        assert_eq!(scenario_count(3, 2), 7);
        assert_eq!(scenario_count(4000, 2), 1 + 4000 + 4000 * 3999 / 2);
        // Router mode enumerates routers.
        let n: Vec<_> = scenarios_up_to_k(&t, FailureMode::Routers, 1).collect();
        assert_eq!(n.len(), 4);
        assert!(n[1].failed_routers.len() == 1);
    }

    #[test]
    fn describe_scenarios() {
        let t = tri();
        assert_eq!(Scenario::none().describe(&t), "no failures");
        let s = Scenario::links([ULinkId(0)]);
        assert_eq!(s.describe(&t), "link A-B");
    }

    #[test]
    fn describe_is_sorted_by_label() {
        // Router/link insertion order deliberately disagrees with label
        // order, so a correct `describe` must sort.
        let mut t = Topology::new();
        let z = t.add_router("Z", Ipv4::new(10, 0, 0, 1), 1);
        let m = t.add_router("M", Ipv4::new(10, 0, 0, 2), 1);
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 3), 1);
        t.add_link(z, m, 1, Ratio::int(100)); // u0: Z-M
        t.add_link(a, z, 1, Ratio::int(100)); // u1: A-Z
        t.add_link(a, m, 1, Ratio::int(100)); // u2: A-M
        let s = Scenario {
            failed_links: [ULinkId(0), ULinkId(2), ULinkId(1)].into_iter().collect(),
            failed_routers: [z, a, m].into_iter().collect(),
        };
        assert_eq!(
            s.describe(&t),
            "link A-M, link A-Z, link Z-M, router A, router M, router Z"
        );
    }
}
