//! Declarative change sets over a verification state.
//!
//! A [`ChangeSet`] is an ordered list of edits to the triple the verifier
//! consumes — network, flows, and traffic load property. Changes name
//! routers by *name* (not id) so they survive serialization and can be sent
//! to a running `yu serve` daemon; link and flow edits address elements by
//! the same stable order the spec file lists them in.
//!
//! [`ChangeSet::apply`] is atomic: it works on clones and either returns the
//! fully-updated state or an error, never a partially-mutated one. It also
//! classifies the edit into an [`Impact`], which tells the incremental
//! verifier which derived artifacts (failure variables, symbolic routes,
//! flow-group MTBDDs, requirement verdicts) must be recomputed.

use crate::addr::Ipv4;
use crate::flow::Flow;
use crate::network::Network;
use crate::tlp::{LoadPoint, Tlp, TlpReq};
use crate::topology::{AsNum, LinkId, RouterId, Topology, ULinkId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use yu_mtbdd::Ratio;

/// A serializable reference to a [`LoadPoint`], by router names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointRef {
    /// The directed link `from -> to`; `index` selects among parallel links
    /// with the same orientation (0 = first such link in spec order).
    Link {
        /// Source router name.
        from: String,
        /// Destination router name.
        to: String,
        /// Which parallel `from -> to` link (default 0).
        #[serde(default)]
        index: usize,
    },
    /// Traffic delivered locally at a router.
    Delivered {
        /// Router name.
        router: String,
    },
    /// Traffic dropped at a router.
    Dropped {
        /// Router name.
        router: String,
    },
}

impl PointRef {
    /// Resolves the reference against a topology.
    pub fn resolve(&self, topo: &Topology) -> Result<LoadPoint, ChangeError> {
        match self {
            PointRef::Link { from, to, index } => {
                Ok(LoadPoint::Link(resolve_link(topo, from, to, *index)?))
            }
            PointRef::Delivered { router } => {
                Ok(LoadPoint::Delivered(resolve_router(topo, router)?))
            }
            PointRef::Dropped { router } => Ok(LoadPoint::Dropped(resolve_router(topo, router)?)),
        }
    }

    /// The name-based reference of a concrete point.
    pub fn of(point: LoadPoint, topo: &Topology) -> PointRef {
        match point {
            LoadPoint::Link(l) => {
                let lk = topo.link(l);
                let from = topo.router(lk.from).name.clone();
                let to = topo.router(lk.to).name.clone();
                let index = topo
                    .links()
                    .filter(|&c| topo.link(c).from == lk.from && topo.link(c).to == lk.to)
                    .position(|c| c == l)
                    .unwrap_or(0);
                PointRef::Link { from, to, index }
            }
            LoadPoint::Delivered(r) => PointRef::Delivered {
                router: topo.router(r).name.clone(),
            },
            LoadPoint::Dropped(r) => PointRef::Dropped {
                router: topo.router(r).name.clone(),
            },
        }
    }
}

/// One edit to the verification state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Change {
    /// Sets the IGP cost of both directions of the undirected link picked
    /// by its `from -> to` orientation (`index` among parallel links).
    SetLinkCost {
        /// Source router name (of the orientation used to pick the link).
        from: String,
        /// Destination router name.
        to: String,
        /// Which parallel `from -> to` link (default 0).
        #[serde(default)]
        index: usize,
        /// New IGP cost for both directions.
        cost: u64,
    },
    /// Adds a router (no links, default config).
    AddRouter {
        /// Unique router name.
        name: String,
        /// Loopback address.
        loopback: Ipv4,
        /// AS number.
        asn: AsNum,
    },
    /// Removes a router, its incident links, flows entering at it, and
    /// requirements measured on any removed element.
    RemoveRouter {
        /// Router name.
        router: String,
    },
    /// Adds a symmetric undirected link.
    AddLink {
        /// One endpoint name.
        a: String,
        /// Other endpoint name.
        b: String,
        /// IGP cost (both directions).
        cost: u64,
        /// Capacity in Gbps.
        capacity: Ratio,
    },
    /// Removes the undirected link picked by its `from -> to` orientation;
    /// requirements measured on either direction are dropped.
    RemoveLink {
        /// Source router name of the picking orientation.
        from: String,
        /// Destination router name.
        to: String,
        /// Which parallel `from -> to` link (default 0).
        #[serde(default)]
        index: usize,
    },
    /// Replaces the volume of the `flow`-th flow (spec order).
    SetFlowVolume {
        /// Flow index in the spec's flow list.
        flow: usize,
        /// New volume in Gbps.
        volume: Ratio,
    },
    /// Appends a flow.
    AddFlow {
        /// Ingress router name.
        ingress: String,
        /// Source address.
        src: Ipv4,
        /// Destination address.
        dst: Ipv4,
        /// DSCP value (default 0).
        #[serde(default)]
        dscp: u8,
        /// Volume in Gbps.
        volume: Ratio,
    },
    /// Removes the `flow`-th flow (later flows shift down).
    RemoveFlow {
        /// Flow index in the spec's flow list.
        flow: usize,
    },
    /// Appends a requirement.
    AddReq {
        /// Where the load is measured.
        point: PointRef,
        /// Lower bound, if any.
        #[serde(default)]
        min: Option<Ratio>,
        /// Upper bound, if any.
        #[serde(default)]
        max: Option<Ratio>,
    },
    /// Removes the `req`-th requirement (later requirements shift down).
    RemoveReq {
        /// Requirement index in the TLP's list.
        req: usize,
    },
    /// Replaces the bounds of the `req`-th requirement.
    SetReqBounds {
        /// Requirement index in the TLP's list.
        req: usize,
        /// New lower bound, if any.
        #[serde(default)]
        min: Option<Ratio>,
        /// New upper bound, if any.
        #[serde(default)]
        max: Option<Ratio>,
    },
}

/// An ordered list of changes applied as one atomic transaction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChangeSet {
    /// The edits, applied in order.
    pub changes: Vec<Change>,
}

/// Why a change set could not be applied. The original state is untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChangeError {
    /// A change names a router the topology does not have.
    UnknownRouter(String),
    /// A change names a directed link the topology does not have.
    UnknownLink {
        /// Source router name.
        from: String,
        /// Destination router name.
        to: String,
        /// Parallel-link index requested.
        index: usize,
    },
    /// An index into the flow or requirement list is out of range.
    BadIndex {
        /// What the index addresses ("flow" or "req").
        what: &'static str,
        /// The index requested.
        index: usize,
        /// Current list length.
        len: usize,
    },
    /// `AddRouter` with a name that already exists.
    DuplicateRouter(String),
    /// `AddLink` with both endpoints the same router.
    SelfLoop(String),
}

impl fmt::Display for ChangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChangeError::UnknownRouter(name) => write!(f, "unknown router `{name}`"),
            ChangeError::UnknownLink { from, to, index } => {
                write!(f, "no directed link `{from}->{to}` with index {index}")
            }
            ChangeError::BadIndex { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
            ChangeError::DuplicateRouter(name) => write!(f, "router `{name}` already exists"),
            ChangeError::SelfLoop(name) => write!(f, "self-loop link on `{name}`"),
        }
    }
}

impl std::error::Error for ChangeError {}

/// Which derived verifier artifacts an edit invalidates. Flags compose with
/// [`Impact::union`]; `topology` subsumes `routing` (failure variables are
/// renumbered, so every symbolic artifact must be rebuilt).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Impact {
    /// Failure-variable universe changed (router/link set edited): full
    /// rebuild of routes, flow groups, and verdicts.
    pub topology: bool,
    /// Routing inputs changed (costs, configs): recompute symbolic routes,
    /// re-execute only flow groups whose route dependencies changed.
    pub routing: bool,
    /// The flow list changed: regroup, re-execute only new/changed groups.
    pub flows: bool,
    /// The property changed: recheck requirements (loads are reusable).
    pub tlp: bool,
}

impl Impact {
    /// No effect.
    pub const NONE: Impact = Impact {
        topology: false,
        routing: false,
        flows: false,
        tlp: false,
    };

    /// Combines two impacts (per-flag or).
    pub fn union(self, other: Impact) -> Impact {
        Impact {
            topology: self.topology || other.topology,
            routing: self.routing || other.routing,
            flows: self.flows || other.flows,
            tlp: self.tlp || other.tlp,
        }
    }

    /// Whether anything at all changed.
    pub fn any(self) -> bool {
        self.topology || self.routing || self.flows || self.tlp
    }
}

impl fmt::Display for Impact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.topology {
            parts.push("topology");
        }
        if self.routing {
            parts.push("routing");
        }
        if self.flows {
            parts.push("flows");
        }
        if self.tlp {
            parts.push("tlp");
        }
        if parts.is_empty() {
            write!(f, "none")
        } else {
            write!(f, "{}", parts.join("+"))
        }
    }
}

fn resolve_router(topo: &Topology, name: &str) -> Result<RouterId, ChangeError> {
    topo.router_by_name(name)
        .ok_or_else(|| ChangeError::UnknownRouter(name.to_string()))
}

fn resolve_link(
    topo: &Topology,
    from: &str,
    to: &str,
    index: usize,
) -> Result<LinkId, ChangeError> {
    let (f, t) = (resolve_router(topo, from)?, resolve_router(topo, to)?);
    topo.links()
        .filter(|&l| topo.link(l).from == f && topo.link(l).to == t)
        .nth(index)
        .ok_or_else(|| ChangeError::UnknownLink {
            from: from.to_string(),
            to: to.to_string(),
            index,
        })
}

impl ChangeSet {
    /// A change set holding one change.
    pub fn single(change: Change) -> ChangeSet {
        ChangeSet {
            changes: vec![change],
        }
    }

    /// Applies every change in order to clones of the inputs, returning the
    /// new state and the combined impact. On error the inputs are untouched
    /// (the transaction never partially commits).
    pub fn apply(
        &self,
        net: &Network,
        flows: &[Flow],
        tlp: &Tlp,
    ) -> Result<(Network, Vec<Flow>, Tlp, Impact), ChangeError> {
        let mut net = net.clone();
        let mut flows = flows.to_vec();
        let mut tlp = tlp.clone();
        let mut impact = Impact::NONE;
        for change in &self.changes {
            impact = impact.union(apply_one(change, &mut net, &mut flows, &mut tlp)?);
        }
        Ok((net, flows, tlp, impact))
    }
}

fn apply_one(
    change: &Change,
    net: &mut Network,
    flows: &mut Vec<Flow>,
    tlp: &mut Tlp,
) -> Result<Impact, ChangeError> {
    match change {
        Change::SetLinkCost {
            from,
            to,
            index,
            cost,
        } => {
            let l = resolve_link(&net.topo, from, to, *index)?;
            let u = net.topo.link(l).ulink;
            net.topo.set_ulink_cost(u, *cost);
            Ok(Impact {
                routing: true,
                ..Impact::NONE
            })
        }
        Change::AddRouter {
            name,
            loopback,
            asn,
        } => {
            if net.topo.router_by_name(name).is_some() {
                return Err(ChangeError::DuplicateRouter(name.clone()));
            }
            net.topo.add_router(name.clone(), *loopback, *asn);
            net.configs.push(Default::default());
            Ok(Impact {
                topology: true,
                ..Impact::NONE
            })
        }
        Change::RemoveRouter { router } => {
            let r = resolve_router(&net.topo, router)?;
            rebuild_without(net, flows, tlp, Some(r), None);
            Ok(Impact {
                topology: true,
                flows: true,
                tlp: true,
                ..Impact::NONE
            })
        }
        Change::AddLink {
            a,
            b,
            cost,
            capacity,
        } => {
            let (ra, rb) = (resolve_router(&net.topo, a)?, resolve_router(&net.topo, b)?);
            if ra == rb {
                return Err(ChangeError::SelfLoop(a.clone()));
            }
            net.topo.add_link(ra, rb, *cost, capacity.clone());
            Ok(Impact {
                topology: true,
                ..Impact::NONE
            })
        }
        Change::RemoveLink { from, to, index } => {
            let l = resolve_link(&net.topo, from, to, *index)?;
            let u = net.topo.link(l).ulink;
            rebuild_without(net, flows, tlp, None, Some(u));
            Ok(Impact {
                topology: true,
                tlp: true,
                ..Impact::NONE
            })
        }
        Change::SetFlowVolume { flow, volume } => {
            let len = flows.len();
            let f = flows.get_mut(*flow).ok_or(ChangeError::BadIndex {
                what: "flow",
                index: *flow,
                len,
            })?;
            f.volume = volume.clone();
            Ok(Impact {
                flows: true,
                ..Impact::NONE
            })
        }
        Change::AddFlow {
            ingress,
            src,
            dst,
            dscp,
            volume,
        } => {
            let r = resolve_router(&net.topo, ingress)?;
            flows.push(Flow::new(r, *src, *dst, *dscp, volume.clone()));
            Ok(Impact {
                flows: true,
                ..Impact::NONE
            })
        }
        Change::RemoveFlow { flow } => {
            if *flow >= flows.len() {
                return Err(ChangeError::BadIndex {
                    what: "flow",
                    index: *flow,
                    len: flows.len(),
                });
            }
            flows.remove(*flow);
            Ok(Impact {
                flows: true,
                ..Impact::NONE
            })
        }
        Change::AddReq { point, min, max } => {
            let point = point.resolve(&net.topo)?;
            tlp.reqs.push(TlpReq {
                point,
                min: min.clone(),
                max: max.clone(),
            });
            Ok(Impact {
                tlp: true,
                ..Impact::NONE
            })
        }
        Change::RemoveReq { req } => {
            if *req >= tlp.reqs.len() {
                return Err(ChangeError::BadIndex {
                    what: "req",
                    index: *req,
                    len: tlp.reqs.len(),
                });
            }
            tlp.reqs.remove(*req);
            Ok(Impact {
                tlp: true,
                ..Impact::NONE
            })
        }
        Change::SetReqBounds { req, min, max } => {
            let len = tlp.reqs.len();
            let r = tlp.reqs.get_mut(*req).ok_or(ChangeError::BadIndex {
                what: "req",
                index: *req,
                len,
            })?;
            r.min = min.clone();
            r.max = max.clone();
            Ok(Impact {
                tlp: true,
                ..Impact::NONE
            })
        }
    }
}

/// Rebuilds the network without `drop_router` (and its incident links) and
/// without `drop_ulink`, remapping every id-bearing artifact: configs
/// (peer references), flows (ingress; flows entering at a removed router are
/// dropped), and requirements (points on removed elements are dropped).
fn rebuild_without(
    net: &mut Network,
    flows: &mut Vec<Flow>,
    tlp: &mut Tlp,
    drop_router: Option<RouterId>,
    drop_ulink: Option<ULinkId>,
) {
    let old = &net.topo;
    let mut topo = Topology::new();
    let mut router_map: HashMap<RouterId, RouterId> = HashMap::new();
    for r in old.routers() {
        if Some(r) == drop_router {
            continue;
        }
        let rt = old.router(r);
        router_map.insert(r, topo.add_router(rt.name.clone(), rt.loopback, rt.asn));
    }
    let mut link_map: HashMap<LinkId, LinkId> = HashMap::new();
    for u in old.ulinks() {
        if Some(u) == drop_ulink {
            continue;
        }
        let (fwd, rev) = old.directions(u);
        let lk = old.link(fwd);
        let (Some(&a), Some(&b)) = (router_map.get(&lk.from), router_map.get(&lk.to)) else {
            continue; // incident to the dropped router
        };
        let nu = topo.add_link(a, b, lk.igp_cost, lk.capacity.clone());
        let (nfwd, nrev) = topo.directions(nu);
        // add_link is symmetric; preserve an asymmetric reverse cost if the
        // old topology had one.
        topo.set_link_cost(nrev, old.link(rev).igp_cost);
        link_map.insert(fwd, nfwd);
        link_map.insert(rev, nrev);
    }
    let mut configs = Vec::with_capacity(topo.num_routers());
    for r in old.routers() {
        if Some(r) == drop_router {
            continue;
        }
        let mut cfg = net.configs[r.0 as usize].clone();
        if let Some(bgp) = cfg.bgp.as_mut() {
            bgp.peer_local_pref = bgp
                .peer_local_pref
                .iter()
                .filter_map(|&(p, lp)| router_map.get(&p).map(|&np| (np, lp)))
                .collect();
            // A filter scoped to a removed peer is vacuous; drop it.
            bgp.deny_exports.retain_mut(|d| match d.peer {
                None => true,
                Some(p) => match router_map.get(&p) {
                    Some(&np) => {
                        d.peer = Some(np);
                        true
                    }
                    None => false,
                },
            });
        }
        configs.push(cfg);
    }
    flows.retain_mut(|f| match router_map.get(&f.ingress) {
        Some(&nr) => {
            f.ingress = nr;
            true
        }
        None => false,
    });
    tlp.reqs.retain_mut(|req| {
        let mapped = match req.point {
            LoadPoint::Link(l) => link_map.get(&l).copied().map(LoadPoint::Link),
            LoadPoint::Delivered(r) => router_map.get(&r).copied().map(LoadPoint::Delivered),
            LoadPoint::Dropped(r) => router_map.get(&r).copied().map(LoadPoint::Dropped),
        };
        match mapped {
            Some(p) => {
                req.point = p;
                true
            }
            None => false,
        }
    });
    net.topo = topo;
    net.configs = configs;
}

/// Classifies the structural difference between two full verification
/// states — the granularity `yu diff` needs to pick an incremental path.
/// Conservative: anything it cannot prove unchanged is flagged.
pub fn diff_impact(old: (&Network, &[Flow], &Tlp), new: (&Network, &[Flow], &Tlp)) -> Impact {
    let (onet, oflows, otlp) = old;
    let (nnet, nflows, ntlp) = new;
    let mut imp = Impact::NONE;
    let same_shape = onet.topo.num_routers() == nnet.topo.num_routers()
        && onet.topo.num_links() == nnet.topo.num_links()
        && onet.topo.num_ulinks() == nnet.topo.num_ulinks()
        && onet
            .topo
            .routers()
            .all(|r| onet.topo.router(r) == nnet.topo.router(r))
        && onet.topo.links().all(|l| {
            let (a, b) = (onet.topo.link(l), nnet.topo.link(l));
            a.from == b.from && a.to == b.to && a.ulink == b.ulink && a.capacity == b.capacity
        });
    if !same_shape {
        imp.topology = true;
        imp.routing = true;
    } else if onet != nnet {
        // Same shape, different costs or configs: routing-only change.
        imp.routing = true;
    }
    if oflows != nflows {
        imp.flows = true;
    }
    if otlp != ntlp {
        imp.tlp = true;
    }
    imp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BgpConfig;

    fn diamond() -> (Network, Vec<Flow>, Tlp) {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 100);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 100);
        let d = t.add_router("D", Ipv4::new(10, 0, 0, 4), 100);
        t.add_link(a, b, 10, Ratio::int(100));
        t.add_link(b, d, 10, Ratio::int(100));
        t.add_link(a, c, 10, Ratio::int(100));
        t.add_link(c, d, 10, Ratio::int(100));
        let mut net = Network::new(t);
        for r in [a, b, c, d] {
            net.config_mut(r).isis_enabled = true;
        }
        net.config_mut(d)
            .connected
            .push("100.0.0.0/24".parse().unwrap());
        let flows = vec![Flow::new(
            a,
            Ipv4::new(11, 0, 0, 1),
            Ipv4::new(100, 0, 0, 1),
            0,
            Ratio::int(20),
        )];
        let tlp = Tlp::new()
            .with(TlpReq::at_most(LoadPoint::Link(LinkId(0)), Ratio::int(95)))
            .with(TlpReq::at_least(LoadPoint::Delivered(d), Ratio::int(1)));
        (net, flows, tlp)
    }

    #[test]
    fn cost_edit_is_routing_only() {
        let (net, flows, tlp) = diamond();
        let cs = ChangeSet::single(Change::SetLinkCost {
            from: "A".into(),
            to: "B".into(),
            index: 0,
            cost: 99,
        });
        let (nnet, nflows, ntlp, imp) = cs.apply(&net, &flows, &tlp).unwrap();
        assert_eq!(
            imp,
            Impact {
                routing: true,
                ..Impact::NONE
            }
        );
        assert_eq!(nnet.topo.link(LinkId(0)).igp_cost, 99);
        assert_eq!(nnet.topo.link(LinkId(1)).igp_cost, 99, "both directions");
        assert_eq!(nflows, flows);
        assert_eq!(ntlp, tlp);
        assert_eq!(
            diff_impact((&net, &flows, &tlp), (&nnet, &nflows, &ntlp)),
            imp
        );
    }

    #[test]
    fn remove_router_remaps_everything() {
        let (mut net, flows, tlp) = diamond();
        let b = net.topo.router_by_name("B").unwrap();
        let d = net.topo.router_by_name("D").unwrap();
        net.config_mut(d).bgp = Some(BgpConfig {
            peer_local_pref: vec![(b, 200), (RouterId(0), 150)],
            ..Default::default()
        });
        let cs = ChangeSet::single(Change::RemoveRouter { router: "B".into() });
        let (nnet, nflows, ntlp, imp) = cs.apply(&net, &flows, &tlp).unwrap();
        assert!(imp.topology);
        assert_eq!(nnet.topo.num_routers(), 3);
        assert_eq!(nnet.topo.num_ulinks(), 2, "A-B and B-D dropped");
        assert_eq!(nnet.configs.len(), 3);
        // The A->B link requirement is gone; the Delivered(D) one is remapped.
        assert_eq!(ntlp.reqs.len(), 1);
        let nd = nnet.topo.router_by_name("D").unwrap();
        assert_eq!(ntlp.reqs[0].point, LoadPoint::Delivered(nd));
        // Flow ingress A remapped (A keeps id 0 here) and retained.
        assert_eq!(nflows.len(), 1);
        assert_eq!(nnet.topo.router(nflows[0].ingress).name, "A");
        // Config peer references: B's entry dropped, A's remapped.
        let bgp = nnet.config(nd).bgp.as_ref().unwrap();
        assert_eq!(bgp.peer_local_pref, vec![(RouterId(0), 150)]);
        assert!(nnet.validate().is_empty());
    }

    #[test]
    fn remove_ingress_router_drops_flow() {
        let (net, flows, tlp) = diamond();
        let cs = ChangeSet::single(Change::RemoveRouter { router: "A".into() });
        let (_, nflows, _, _) = cs.apply(&net, &flows, &tlp).unwrap();
        assert!(nflows.is_empty());
    }

    #[test]
    fn errors_leave_state_untouched() {
        let (net, flows, tlp) = diamond();
        let cs = ChangeSet {
            changes: vec![
                Change::SetLinkCost {
                    from: "A".into(),
                    to: "B".into(),
                    index: 0,
                    cost: 77,
                },
                Change::RemoveRouter {
                    router: "NOPE".into(),
                },
            ],
        };
        let err = cs.apply(&net, &flows, &tlp).unwrap_err();
        assert_eq!(err, ChangeError::UnknownRouter("NOPE".into()));
        // The borrow-based API makes partial commits impossible; the
        // original cost is still visible.
        assert_eq!(net.topo.link(LinkId(0)).igp_cost, 10);
        let _ = (flows, tlp);
    }

    #[test]
    fn bad_indices_are_reported() {
        let (net, flows, tlp) = diamond();
        for change in [
            Change::RemoveFlow { flow: 5 },
            Change::SetFlowVolume {
                flow: 1,
                volume: Ratio::int(1),
            },
            Change::RemoveReq { req: 9 },
            Change::SetReqBounds {
                req: 2,
                min: None,
                max: None,
            },
        ] {
            let err = ChangeSet::single(change)
                .apply(&net, &flows, &tlp)
                .unwrap_err();
            assert!(matches!(err, ChangeError::BadIndex { .. }), "{err}");
        }
        let err = ChangeSet::single(Change::SetLinkCost {
            from: "A".into(),
            to: "B".into(),
            index: 1,
            cost: 1,
        })
        .apply(&net, &flows, &tlp)
        .unwrap_err();
        assert!(matches!(err, ChangeError::UnknownLink { index: 1, .. }));
    }

    #[test]
    fn point_ref_round_trip() {
        let (net, _, _) = diamond();
        for point in [
            LoadPoint::Link(LinkId(3)),
            LoadPoint::Delivered(RouterId(3)),
            LoadPoint::Dropped(RouterId(1)),
        ] {
            let r = PointRef::of(point, &net.topo);
            assert_eq!(r.resolve(&net.topo).unwrap(), point);
        }
    }

    #[test]
    fn change_set_json_round_trip() {
        let cs = ChangeSet {
            changes: vec![
                Change::SetLinkCost {
                    from: "A".into(),
                    to: "B".into(),
                    index: 0,
                    cost: 42,
                },
                Change::AddReq {
                    point: PointRef::Delivered { router: "D".into() },
                    min: Some(Ratio::new(1, 2)),
                    max: None,
                },
                Change::RemoveFlow { flow: 3 },
            ],
        };
        let json = serde_json::to_string(&cs).unwrap();
        let back: ChangeSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cs);
    }

    #[test]
    fn diff_impact_classifies() {
        let (net, flows, tlp) = diamond();
        assert_eq!(
            diff_impact((&net, &flows, &tlp), (&net, &flows, &tlp)),
            Impact::NONE
        );
        let mut costier = net.clone();
        costier.topo.set_ulink_cost(ULinkId(0), 5);
        let imp = diff_impact((&net, &flows, &tlp), (&costier, &flows, &tlp));
        assert!(imp.routing && !imp.topology);
        let mut bigger = net.clone();
        let e = bigger.topo.add_router("E", Ipv4::new(10, 0, 0, 5), 100);
        bigger.configs.push(Default::default());
        let _ = e;
        let imp = diff_impact((&net, &flows, &tlp), (&bigger, &flows, &tlp));
        assert!(imp.topology);
        let mut heavier = flows.clone();
        heavier[0].volume = Ratio::int(30);
        let imp = diff_impact((&net, &flows, &tlp), (&net, &heavier, &tlp));
        assert_eq!(
            imp,
            Impact {
                flows: true,
                ..Impact::NONE
            }
        );
    }
}
