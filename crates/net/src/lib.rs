//! # yu-net
//!
//! The network substrate for the YU k-failure traffic-load verifier:
//! topology (routers, directed links, parallel links), IPv4 addressing with
//! a longest-prefix-match trie, the failure model (one boolean variable per
//! failable element, scenarios, enumeration), per-router configuration
//! (connected/static routes, eBGP/iBGP, IS-IS, SR policies), traffic flows,
//! and traffic load properties.
//!
//! This crate defines *what the network is*; `yu-routing` computes guarded
//! routing state from it and `yu-core` runs symbolic traffic execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod change;
mod config;
mod failure;
mod flow;
mod network;
mod tlp;
mod topology;
mod trie;

pub use addr::{AddrParseError, Ipv4, Prefix};
pub use change::{diff_impact, Change, ChangeError, ChangeSet, Impact, PointRef};
pub use config::{
    BgpConfig, DenyExport, Proto, RouterConfig, SrPath, SrPolicy, StaticNextHop, StaticRoute,
};
pub use failure::{
    scenario_count, scenarios_up_to_k, FailureElement, FailureMode, FailureVars, Scenario,
};
pub use flow::Flow;
pub use network::{BgpSession, Network};
pub use tlp::{LoadPoint, Tlp, TlpReq};
pub use topology::{AsNum, Link, LinkId, Router, RouterId, Topology, ULinkId};
pub use trie::PrefixTrie;

/// Default TTL bound for traffic simulation (symbolic and concrete must
/// use the same value so differential tests compare identical semantics).
///
/// Deliberately below the IP default of 64: with exact rational traffic
/// fractions, a transient forwarding loop multiplies ECMP split factors
/// every cycle, and 40 hops keeps worst-case denominators (~6^40) safely
/// inside `i128` while still far exceeding any real forwarding path.
pub const DEFAULT_MAX_HOPS: usize = 40;
