//! Routers, links, and the WAN topology graph.
//!
//! Links are *directed* (the paper models a network link with directions and
//! speaks of incoming/outgoing links), but failures apply to the undirected
//! link: [`Topology::add_link`] creates the two directed halves sharing one
//! [`ULinkId`]. Parallel links between the same router pair are allowed
//! (e.g. the two E–F links of the motivating example) — each call creates a
//! distinct undirected link with its own failure variable.

use crate::addr::Ipv4;
use serde::{Deserialize, Serialize};
use std::fmt;
use yu_mtbdd::Ratio;

/// Identifier of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// Identifier of a *directed* link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Identifier of an *undirected* link (the unit of failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ULinkId(pub u32);

/// An autonomous system number.
pub type AsNum = u32;

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A router with its loopback address and AS membership.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Router {
    /// Human-readable name (unique within a topology).
    pub name: String,
    /// Loopback address; `/32` of it is advertised into the IGP. Several
    /// routers may share a loopback (anycast, as in the Fig. 9 incident).
    pub loopback: Ipv4,
    /// The AS this router belongs to.
    pub asn: AsNum,
}

/// A directed link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Source router.
    pub from: RouterId,
    /// Destination router.
    pub to: RouterId,
    /// IGP cost of traversing the link in this direction.
    pub igp_cost: u64,
    /// Capacity in Gbps (used by overload properties).
    pub capacity: Ratio,
    /// The undirected link this direction belongs to.
    pub ulink: ULinkId,
}

/// The network graph.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    routers: Vec<Router>,
    links: Vec<Link>,
    /// The two directed halves of each undirected link.
    ulinks: Vec<(LinkId, LinkId)>,
    /// Outgoing directed links per router.
    out_adj: Vec<Vec<LinkId>>,
    /// Incoming directed links per router.
    in_adj: Vec<Vec<LinkId>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a router and returns its id.
    pub fn add_router(&mut self, name: impl Into<String>, loopback: Ipv4, asn: AsNum) -> RouterId {
        let id = RouterId(self.routers.len() as u32);
        self.routers.push(Router {
            name: name.into(),
            loopback,
            asn,
        });
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a symmetric undirected link (two directed halves with the same
    /// cost and capacity) and returns its id.
    pub fn add_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        igp_cost: u64,
        capacity: Ratio,
    ) -> ULinkId {
        assert_ne!(a, b, "self-loop link on {a}");
        let ulink = ULinkId(self.ulinks.len() as u32);
        let fwd = LinkId(self.links.len() as u32);
        self.links.push(Link {
            from: a,
            to: b,
            igp_cost,
            capacity: capacity.clone(),
            ulink,
        });
        let rev = LinkId(self.links.len() as u32);
        self.links.push(Link {
            from: b,
            to: a,
            igp_cost,
            capacity,
            ulink,
        });
        self.ulinks.push((fwd, rev));
        self.out_adj[a.0 as usize].push(fwd);
        self.in_adj[b.0 as usize].push(fwd);
        self.out_adj[b.0 as usize].push(rev);
        self.in_adj[a.0 as usize].push(rev);
        ulink
    }

    /// Sets the IGP cost of one *directed* link. The reverse direction is
    /// untouched, so asymmetric costs can be expressed by two calls.
    pub fn set_link_cost(&mut self, l: LinkId, cost: u64) {
        self.links[l.0 as usize].igp_cost = cost;
    }

    /// Sets the IGP cost of both directed halves of an undirected link.
    pub fn set_ulink_cost(&mut self, u: ULinkId, cost: u64) {
        let (fwd, rev) = self.directions(u);
        self.set_link_cost(fwd, cost);
        self.set_link_cost(rev, cost);
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of undirected links.
    pub fn num_ulinks(&self) -> usize {
        self.ulinks.len()
    }

    /// The router with id `r`.
    pub fn router(&self, r: RouterId) -> &Router {
        &self.routers[r.0 as usize]
    }

    /// The directed link with id `l`.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.0 as usize]
    }

    /// The two directed halves of undirected link `u`.
    pub fn directions(&self, u: ULinkId) -> (LinkId, LinkId) {
        self.ulinks[u.0 as usize]
    }

    /// The opposite direction of directed link `l`.
    pub fn reverse(&self, l: LinkId) -> LinkId {
        let (a, b) = self.directions(self.link(l).ulink);
        if a == l {
            b
        } else {
            a
        }
    }

    /// Outgoing directed links of router `r`.
    pub fn out_links(&self, r: RouterId) -> &[LinkId] {
        &self.out_adj[r.0 as usize]
    }

    /// Incoming directed links of router `r`.
    pub fn in_links(&self, r: RouterId) -> &[LinkId] {
        &self.in_adj[r.0 as usize]
    }

    /// All router ids.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.routers.len() as u32).map(RouterId)
    }

    /// All directed link ids.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// All undirected link ids.
    pub fn ulinks(&self) -> impl Iterator<Item = ULinkId> + '_ {
        (0..self.ulinks.len() as u32).map(ULinkId)
    }

    /// Looks up a router by name.
    pub fn router_by_name(&self, name: &str) -> Option<RouterId> {
        self.routers
            .iter()
            .position(|r| r.name == name)
            .map(|i| RouterId(i as u32))
    }

    /// All routers whose loopback equals `ip` (several for anycast).
    pub fn loopback_owners(&self, ip: Ipv4) -> Vec<RouterId> {
        self.routers()
            .filter(|&r| self.router(r).loopback == ip)
            .collect()
    }

    /// Human-readable label `A->B` for a directed link.
    pub fn link_label(&self, l: LinkId) -> String {
        let lk = self.link(l);
        format!("{}->{}", self.router(lk.from).name, self.router(lk.to).name)
    }

    /// Human-readable label `A-B` for an undirected link.
    pub fn ulink_label(&self, u: ULinkId) -> String {
        let (fwd, _) = self.directions(u);
        let lk = self.link(fwd);
        format!("{}-{}", self.router(lk.from).name, self.router(lk.to).name)
    }

    /// Human-readable label `A->C->E` for a router path.
    pub fn path_label(&self, hops: &[RouterId]) -> String {
        hops.iter()
            .map(|&r| self.router(r).name.as_str())
            .collect::<Vec<_>>()
            .join("->")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> Ratio {
        Ratio::int(100)
    }

    #[test]
    fn build_and_query() {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 200);
        let u = t.add_link(a, b, 10, caps().clone());
        assert_eq!(t.num_routers(), 2);
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.num_ulinks(), 1);
        let (fwd, rev) = t.directions(u);
        assert_eq!(t.link(fwd).from, a);
        assert_eq!(t.link(rev).from, b);
        assert_eq!(t.reverse(fwd), rev);
        assert_eq!(t.reverse(rev), fwd);
        assert_eq!(t.out_links(a), &[fwd]);
        assert_eq!(t.in_links(a), &[rev]);
        assert_eq!(t.router_by_name("B"), Some(b));
        assert_eq!(t.link_label(fwd), "A->B");
        assert_eq!(t.ulink_label(u), "A-B");
    }

    #[test]
    fn parallel_links_are_distinct() {
        let mut t = Topology::new();
        let e = t.add_router("E", Ipv4::new(10, 0, 0, 5), 300);
        let f = t.add_router("F", Ipv4::new(10, 0, 0, 6), 300);
        let u1 = t.add_link(e, f, 10000, caps().clone());
        let u2 = t.add_link(e, f, 10000, caps().clone());
        assert_ne!(u1, u2);
        assert_eq!(t.out_links(e).len(), 2);
    }

    #[test]
    fn anycast_loopbacks() {
        let mut t = Topology::new();
        let b1 = t.add_router("B1", Ipv4::new(1, 1, 1, 1), 65000);
        let b2 = t.add_router("B2", Ipv4::new(1, 1, 1, 1), 65000);
        assert_eq!(t.loopback_owners(Ipv4::new(1, 1, 1, 1)), vec![b1, b2]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
        t.add_link(a, a, 1, caps().clone());
    }
}
