//! A binary longest-prefix-match trie.
//!
//! Used for FIB lookups (all matching prefixes for a destination address,
//! most-specific first — symbolic LPM needs *all* of them, since under
//! failures a more specific route may be absent and a covering route takes
//! over, the root cause of the Fig. 10 blackhole) and for the prefix
//! classification that backs global flow equivalence.

use crate::addr::{Ipv4, Prefix};

#[derive(Debug, Clone)]
struct TrieNode<T> {
    value: Option<T>,
    children: [Option<Box<TrieNode<T>>>; 2],
}

impl<T> Default for TrieNode<T> {
    fn default() -> Self {
        TrieNode {
            value: None,
            children: [None, None],
        }
    }
}

/// A map from [`Prefix`] to `T` supporting longest-prefix-match queries.
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    root: TrieNode<T>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> PrefixTrie<T> {
        PrefixTrie {
            root: TrieNode::default(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node_mut(&mut self, prefix: &Prefix) -> &mut TrieNode<T> {
        let mut cur = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            cur = cur.children[b].get_or_insert_with(Box::default);
        }
        cur
    }

    /// Inserts or replaces the value at `prefix`, returning the old value.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let node = self.node_mut(&prefix);
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Returns a mutable reference to the value at `prefix`, inserting the
    /// default produced by `make` if absent.
    pub fn entry_or_insert_with(&mut self, prefix: Prefix, make: impl FnOnce() -> T) -> &mut T {
        let before = self.node_mut(&prefix).value.is_some();
        if !before {
            self.len += 1;
        }
        self.node_mut(&prefix).value.get_or_insert_with(make)
    }

    /// The value stored exactly at `prefix`, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<&T> {
        let mut cur = &self.root;
        for i in 0..prefix.len() {
            cur = cur.children[prefix.bit(i) as usize].as_deref()?;
        }
        cur.value.as_ref()
    }

    /// All `(prefix, value)` entries whose prefix contains `ip`, ordered
    /// most-specific (longest) first.
    pub fn matches(&self, ip: Ipv4) -> Vec<(Prefix, &T)> {
        let mut out = Vec::new();
        let mut cur = &self.root;
        let mut depth = 0u8;
        loop {
            if let Some(v) = &cur.value {
                out.push((Prefix::new(ip, depth), v));
            }
            if depth == 32 {
                break;
            }
            let b = (ip.0 >> (31 - depth)) & 1;
            match cur.children[b as usize].as_deref() {
                Some(c) => {
                    cur = c;
                    depth += 1;
                }
                None => break,
            }
        }
        out.reverse();
        out
    }

    /// The most specific entry containing `ip`, if any.
    pub fn longest_match(&self, ip: Ipv4) -> Option<(Prefix, &T)> {
        self.matches(ip).into_iter().next()
    }

    /// Iterates over all `(prefix, value)` entries in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        let mut out = Vec::new();
        fn walk<'a, T>(
            node: &'a TrieNode<T>,
            addr: u32,
            depth: u8,
            out: &mut Vec<(Prefix, &'a T)>,
        ) {
            if let Some(v) = &node.value {
                out.push((Prefix::new(Ipv4(addr), depth), v));
            }
            for (b, child) in node.children.iter().enumerate() {
                if let Some(c) = child {
                    let addr = if b == 1 && depth < 32 {
                        addr | 1 << (31 - depth)
                    } else {
                        addr
                    };
                    walk(c, addr, depth + 1, out);
                }
            }
        }
        walk(&self.root, 0, 0, &mut out);
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_len() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), "a"), None);
        assert_eq!(t.insert(p("10.1.0.0/26"), "b"), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), "a2"), Some("a"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&"a2"));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
    }

    #[test]
    fn matches_most_specific_first() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/26"), 26);
        let m: Vec<_> = t
            .matches(ip("10.1.0.5"))
            .into_iter()
            .map(|x| *x.1)
            .collect();
        assert_eq!(m, vec![26, 8, 0]);
        let m: Vec<_> = t
            .matches(ip("10.2.0.5"))
            .into_iter()
            .map(|x| *x.1)
            .collect();
        assert_eq!(m, vec![8, 0]);
        assert_eq!(t.longest_match(ip("11.0.0.1")).map(|x| *x.1), Some(0));
    }

    #[test]
    fn iter_roundtrips_prefixes() {
        let mut t = PrefixTrie::new();
        let prefixes = ["10.0.0.0/8", "10.1.0.0/26", "192.168.1.0/24", "0.0.0.0/0"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let got: std::collections::BTreeSet<_> = t.iter().map(|(pf, _)| pf).collect();
        let want: std::collections::BTreeSet<_> = prefixes.iter().map(|s| p(s)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::host(ip("10.0.0.6")), "lo");
        assert_eq!(t.longest_match(ip("10.0.0.6")).map(|x| *x.1), Some("lo"));
        assert!(t.longest_match(ip("10.0.0.7")).is_none());
    }

    #[test]
    fn entry_or_insert_with() {
        let mut t: PrefixTrie<Vec<u32>> = PrefixTrie::new();
        t.entry_or_insert_with(p("10.0.0.0/8"), Vec::new).push(1);
        t.entry_or_insert_with(p("10.0.0.0/8"), Vec::new).push(2);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&vec![1, 2]));
        assert_eq!(t.len(), 1);
    }
}
