//! Per-router configuration: connected networks, static routes, BGP,
//! IS-IS, and segment routing policies.
//!
//! The model mirrors the feature set the paper needs (Table 1): eBGP and
//! iBGP with local preference and multipath, an IGP (IS-IS) with per-link
//! costs, static routes including `Null0` drop routes with redistribution
//! into BGP (the Fig. 10 incident), and SR policies with weighted segment
//!-list paths matched on DSCP (the Fig. 1 and Fig. 9 networks).

use crate::addr::{Ipv4, Prefix};
use crate::topology::RouterId;
use serde::{Deserialize, Serialize};

/// Next hop of a static route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StaticNextHop {
    /// Discard matching traffic (a blackhole route).
    Null0,
    /// Recursive next hop, resolved through the IGP (or an SR policy).
    Ip(Ipv4),
}

/// A static route.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticRoute {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next hop.
    pub next_hop: StaticNextHop,
}

/// An outbound BGP route filter: suppresses advertising any prefix covered
/// by `prefix` to `peer` (`None` = to every peer). This is how the Fig. 10
/// misconfiguration arises: D1 redistributes a static `10/8 -> Null0` into
/// BGP while filtering the more specific `10.1/26` from its advertisements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenyExport {
    /// Peer the filter applies to; `None` = all peers.
    pub peer: Option<RouterId>,
    /// Prefixes covered by this prefix are suppressed.
    pub prefix: Prefix,
}

/// BGP configuration of a router. Sessions are derived from the topology:
/// an eBGP session per physical link whose endpoints are in different ASes
/// (both running BGP), and an iBGP full mesh among the BGP routers of each
/// AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpConfig {
    /// Prefixes originated by this router (`network` statements). The
    /// router also *delivers* traffic for these prefixes (they are attached
    /// networks).
    pub networks: Vec<Prefix>,
    /// Whether static routes are redistributed into BGP (Fig. 10).
    pub redistribute_static: bool,
    /// Import local preference per peer router; unlisted peers get 100.
    pub peer_local_pref: Vec<(RouterId, u32)>,
    /// Whether equally-preferred routes are used together (ECMP). The
    /// paper's WAN uses multipath; disabling it falls back to a
    /// lowest-router-id tiebreak.
    pub multipath: bool,
    /// Outbound advertisement filters.
    pub deny_exports: Vec<DenyExport>,
}

impl Default for BgpConfig {
    fn default() -> Self {
        BgpConfig {
            networks: Vec::new(),
            redistribute_static: false,
            peer_local_pref: Vec::new(),
            multipath: true,
            deny_exports: Vec::new(),
        }
    }
}

impl BgpConfig {
    /// Whether advertising `prefix` to `peer` is suppressed by a filter.
    pub fn export_denied(&self, peer: RouterId, prefix: &Prefix) -> bool {
        self.deny_exports
            .iter()
            .any(|d| d.peer.is_none_or(|p| p == peer) && d.prefix.covers(prefix))
    }

    /// The import local preference for routes learned from `peer`.
    pub fn local_pref_for(&self, peer: RouterId) -> u32 {
        self.peer_local_pref
            .iter()
            .find(|(p, _)| *p == peer)
            .map(|(_, lp)| *lp)
            .unwrap_or(100)
    }
}

/// One weighted path of an SR policy: an explicit segment list (router
/// loopback addresses, possibly anycast) plus a load-balancing weight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrPath {
    /// Segment list, first segment first (`[E, F]` in the paper's Fig. 4).
    pub segments: Vec<Ipv4>,
    /// Relative weight; traffic splits proportionally among paths whose
    /// tunnels can be established (paper §4.4, `c_p`).
    pub weight: u64,
}

/// A segment routing policy: traffic resolving BGP next hop `endpoint`
/// (and matching `match_dscp`, if set) is steered into the weighted paths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrPolicy {
    /// The next-hop address the policy applies to (e.g. `10.0.0.6/32` on
    /// router D in Fig. 1).
    pub endpoint: Ipv4,
    /// Optional DSCP match; `None` matches all traffic.
    pub match_dscp: Option<u8>,
    /// Weighted candidate paths.
    pub paths: Vec<SrPath>,
}

impl SrPolicy {
    /// Whether this policy applies to a flow with DSCP `dscp` resolving
    /// next hop `nip`.
    pub fn matches(&self, nip: Ipv4, dscp: u8) -> bool {
        self.endpoint == nip && self.match_dscp.is_none_or(|d| d == dscp)
    }
}

/// Full configuration of one router.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Attached (connected) networks; traffic for them is delivered here.
    /// These are installed as connected routes (administrative distance 0)
    /// and may be originated into BGP via [`BgpConfig::networks`].
    pub connected: Vec<Prefix>,
    /// Static routes (administrative distance 1).
    pub static_routes: Vec<StaticRoute>,
    /// BGP process, if running.
    pub bgp: Option<BgpConfig>,
    /// Whether IS-IS runs on this router (adjacency forms on a link when
    /// both endpoints run IS-IS and are in the same AS).
    pub isis_enabled: bool,
    /// Segment routing policies.
    pub sr_policies: Vec<SrPolicy>,
}

impl RouterConfig {
    /// Whether this router delivers traffic destined to `ip` locally.
    pub fn delivers(&self, ip: Ipv4) -> bool {
        self.connected.iter().any(|p| p.contains(ip))
    }

    /// The SR policy matching `(nip, dscp)`, if any. The first matching
    /// policy wins (configuration order).
    pub fn sr_policy_for(&self, nip: Ipv4, dscp: u8) -> Option<&SrPolicy> {
        self.sr_policies.iter().find(|p| p.matches(nip, dscp))
    }
}

/// Administrative distances, ordered: lower wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Proto {
    /// Connected network (distance 0).
    Connected,
    /// Static route (distance 1).
    Static,
    /// External BGP (distance 20).
    Ebgp,
    /// IS-IS (distance 115).
    Isis,
    /// Internal BGP (distance 200).
    Ibgp,
}

impl Proto {
    /// Numeric administrative distance.
    pub fn admin_distance(&self) -> u32 {
        match self {
            Proto::Connected => 0,
            Proto::Static => 1,
            Proto::Ebgp => 20,
            Proto::Isis => 115,
            Proto::Ibgp => 200,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_pref_default_and_override() {
        let mut b = BgpConfig::default();
        b.peer_local_pref.push((RouterId(3), 200));
        assert_eq!(b.local_pref_for(RouterId(3)), 200);
        assert_eq!(b.local_pref_for(RouterId(4)), 100);
    }

    #[test]
    fn sr_policy_matching() {
        let pol = SrPolicy {
            endpoint: Ipv4::new(10, 0, 0, 6),
            match_dscp: Some(5),
            paths: vec![],
        };
        assert!(pol.matches(Ipv4::new(10, 0, 0, 6), 5));
        assert!(!pol.matches(Ipv4::new(10, 0, 0, 6), 0));
        assert!(!pol.matches(Ipv4::new(10, 0, 0, 5), 5));
        let any = SrPolicy {
            endpoint: Ipv4::new(10, 0, 0, 6),
            match_dscp: None,
            paths: vec![],
        };
        assert!(any.matches(Ipv4::new(10, 0, 0, 6), 42));
    }

    #[test]
    fn delivery_and_policy_lookup() {
        let cfg = RouterConfig {
            connected: vec!["100.0.0.0/24".parse().unwrap()],
            sr_policies: vec![
                SrPolicy {
                    endpoint: Ipv4::new(10, 0, 0, 6),
                    match_dscp: Some(5),
                    paths: vec![],
                },
                SrPolicy {
                    endpoint: Ipv4::new(10, 0, 0, 6),
                    match_dscp: None,
                    paths: vec![],
                },
            ],
            ..Default::default()
        };
        assert!(cfg.delivers("100.0.0.7".parse().unwrap()));
        assert!(!cfg.delivers("101.0.0.7".parse().unwrap()));
        // First match wins.
        let p = cfg.sr_policy_for(Ipv4::new(10, 0, 0, 6), 5).unwrap();
        assert_eq!(p.match_dscp, Some(5));
        let p = cfg.sr_policy_for(Ipv4::new(10, 0, 0, 6), 9).unwrap();
        assert_eq!(p.match_dscp, None);
    }

    #[test]
    fn admin_distance_ordering() {
        assert!(Proto::Connected < Proto::Static);
        assert!(Proto::Static < Proto::Ebgp);
        assert!(Proto::Ebgp < Proto::Isis);
        assert!(Proto::Isis < Proto::Ibgp);
    }
}
