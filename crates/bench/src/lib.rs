//! # yu-bench
//!
//! Shared harness helpers for regenerating the paper's evaluation
//! (`src/bin/figures.rs` prints every table and figure; `benches/` holds
//! the Criterion timing benches).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};
use yu_core::{YuOptions, YuVerifier};
use yu_gen::{wan, Wan, WanPreset};
use yu_mtbdd::Ratio;
use yu_net::{FailureMode, Flow, Tlp};

/// Flow counts used for each preset in the figure harness (scaled from
/// the paper's one-hour windows; see EXPERIMENTS.md).
pub fn preset_flow_count(preset: WanPreset) -> usize {
    match preset {
        WanPreset::N0 => 2_000,
        WanPreset::N1 => 5_000,
        WanPreset::N2 => 10_000,
        WanPreset::Wan => 20_000,
    }
}

/// Builds a preset WAN together with its harness workload.
pub fn preset_instance(preset: WanPreset) -> (Wan, Vec<Flow>) {
    let w = wan(preset.params());
    let flows = w.flows(preset_flow_count(preset), 0xF10F);
    (w, flows)
}

/// The overload TLP used throughout the harness (95% of capacity).
pub fn overload_tlp(net: &yu_net::Network) -> Tlp {
    Tlp::no_overload(&net.topo, Ratio::new(95, 100))
}

/// Result of one timed YU verification.
pub struct YuRun {
    /// Total wall-clock time (route sim + exec + check).
    pub total: Duration,
    /// Symbolic route simulation time.
    pub route: Duration,
    /// Symbolic traffic execution time.
    pub exec: Duration,
    /// TLP checking time.
    pub check: Duration,
    /// Whether the TLP held.
    pub verified: bool,
    /// Number of violations found.
    pub violations: usize,
    /// Flow groups executed.
    pub groups: usize,
    /// MTBDD nodes created.
    pub nodes: usize,
}

/// Runs YU end to end on one instance and reports timings.
pub fn run_yu(
    net: &yu_net::Network,
    flows: &[Flow],
    tlp: &Tlp,
    k: u32,
    mode: FailureMode,
    use_kreduce: bool,
    use_link_local: bool,
) -> YuRun {
    let t0 = Instant::now();
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k,
            mode,
            use_kreduce,
            use_link_local_equiv: use_link_local,
            ..Default::default()
        },
    );
    v.add_flows(flows);
    let out = v.verify(tlp);
    YuRun {
        total: t0.elapsed(),
        route: out.stats.route_time,
        exec: out.stats.exec_time,
        check: out.stats.check_time,
        verified: out.verified(),
        violations: out.violations.len(),
        groups: out.stats.flow_groups,
        nodes: out.stats.mtbdd.nodes_created,
    }
}

/// Formats a duration in seconds with 3 decimals (the paper's unit).
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Simple text CDF: returns `(value at each decile, p90, max)` of sorted
/// samples.
pub fn cdf_summary(mut samples: Vec<f64>) -> (Vec<f64>, f64, f64) {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| {
        let ix = ((samples.len() as f64 - 1.0) * q).round() as usize;
        samples[ix]
    };
    let deciles = (0..=10).map(|i| pick(i as f64 / 10.0)).collect();
    (deciles, pick(0.9), *samples.last().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_summary_deciles() {
        let (dec, p90, max) = cdf_summary((1..=100).map(|i| i as f64).collect());
        assert_eq!(dec.len(), 11);
        assert_eq!(dec[0], 1.0);
        assert_eq!(max, 100.0);
        assert!((p90 - 90.0).abs() <= 1.0);
    }

    #[test]
    fn run_yu_on_tiny_preset() {
        let (w, flows) = preset_instance(WanPreset::N0);
        let tlp = overload_tlp(&w.net);
        let run = run_yu(
            &w.net,
            &flows[..200],
            &tlp,
            1,
            FailureMode::Links,
            true,
            true,
        );
        assert!(run.groups > 0);
        assert!(run.nodes > 0);
        assert!(run.total >= run.check);
    }
}
