//! Benchmark harness for the check stage: the fused `ADD∘KREDUCE` kernel
//! and sharded parallel property checking.
//!
//! Three experiments, reported as machine-readable JSON (the repo
//! records a run as `BENCH_check.json`):
//!
//! 0. **Layout A/B** — the same fused aggregation workload built on two
//!    engine layouts: a `HashMap`-based reference manager (layout A,
//!    the pre-flat-arena design: tuple-keyed unique table and memo
//!    caches) and the production flat arena (layout B: packed `Vec`
//!    nodes, open-addressed `u32` slot table, direct-mapped caches).
//!    Both hash-cons the identical canonical diagrams, so
//!    `nodes_created` must match exactly — a deterministic gate — and
//!    the comparison isolates data layout: wall-clock, measured
//!    unique-table probe lengths, and estimated heap bytes.
//! 1. **Fused kernel microbench** — a Fig. 18-style aggregation blow-up
//!    (many overlapping primary/backup flow STFs summed pairwise under a
//!    small failure budget), built twice in fresh arenas: classic
//!    `apply(Add)` followed by `kreduce`, and the fused
//!    `add_kreduce`. Node allocations are deterministic, so the reported
//!    `nodes_ratio`/`peak_ratio` are machine-independent; the fused
//!    kernel must come in strictly below 1.0 (it never materializes the
//!    un-reduced sum).
//! 2. **Check-worker scaling** — the same verification at increasing
//!    `check_workers`, reporting per-stage wall-clock and the check-stage
//!    speedup vs the sequential checker. The `cores` field matters: with
//!    fewer physical cores than workers, threads time-slice and the
//!    speedup column measures sharding overhead, not parallelism.
//!
//! ```text
//! cargo run --release -p yu-bench --bin check \
//!     [--quick] [--out FILE] [--baseline FILE] [--max-regress FRAC]
//! ```
//!
//! With `--baseline BENCH_check.json` the run exits non-zero if the
//! sequential check regresses by more than `--max-regress` (default
//! 0.25) against the baseline. The hard gate is the deterministic
//! total-allocation count (`check_nodes`); wall-clock is gated too but
//! only fails when the node count confirms the regression, so a CI
//! runner slower than the machine that recorded the baseline cannot
//! trip the gate on its own. Wall-clock comparison is skipped entirely
//! (node gate kept) when either side ran on a single core — timings
//! from a time-sliced CPU say nothing about the code.

use serde::Serialize;
use std::time::Instant;
use yu_bench::{overload_tlp, preset_instance};
use yu_core::{YuOptions, YuVerifier};
use yu_gen::{fattree_with_flows, WanPreset};
use yu_mtbdd::{Mtbdd, NodeRef, Ratio, Term};
use yu_net::{FailureMode, Flow, Network, Tlp};

#[derive(Serialize)]
struct KernelSide {
    /// Inner nodes materialized while aggregating (excludes the shared
    /// per-flow STF construction) — deterministic.
    nodes_created: usize,
    /// Unique-table high-water mark of the arena — deterministic.
    unique_peak: usize,
    secs: f64,
}

#[derive(Serialize)]
struct FusedMicro {
    nvars: u32,
    nflows: usize,
    k: u32,
    unfused: KernelSide,
    fused: KernelSide,
    /// `fused.nodes_created / unfused.nodes_created`; < 1.0 means the
    /// fused kernel skipped materializing that fraction of transients.
    nodes_ratio: f64,
    /// `fused.unique_peak / unfused.unique_peak`.
    peak_ratio: f64,
}

#[derive(Serialize)]
struct StageSecs {
    total: f64,
    route: f64,
    exec: f64,
    check: f64,
}

#[derive(Serialize)]
struct CheckPoint {
    check_workers: usize,
    secs: StageSecs,
    /// Speedup of the check stage alone vs `check_workers = 1` — the
    /// stage the pool actually shards (route sim and execution are
    /// untouched by this knob).
    check_speedup_vs_1: f64,
    violations: usize,
}

#[derive(Serialize)]
struct CheckInstance {
    instance: &'static str,
    routers: usize,
    links: usize,
    flows: usize,
    reqs: usize,
    k: u32,
    /// Total main-arena allocations during the sequential check
    /// (`nodes_created + gc_reclaimed` delta) — deterministic, the
    /// machine-independent regression gate.
    check_nodes: u64,
    points: Vec<CheckPoint>,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    cores: usize,
    check_worker_counts: Vec<usize>,
    /// VmHWM from /proc/self/status at the end of the run, if readable.
    peak_rss_bytes: Option<u64>,
    layout: LayoutAb,
    fused: FusedMicro,
    instances: Vec<CheckInstance>,
}

fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// One synthetic flow STF of the blow-up family: volume `1/(i+1)` along
/// a 3-link primary path, rerouting onto a 2-link backup when the first
/// primary link fails. Strides are chosen so consecutive flows overlap
/// on some variables and diverge on others — the shape that makes the
/// un-reduced pairwise sums of Fig. 18 explode.
fn blowup_stf(m: &mut Mtbdd, i: usize, nvars: u32) -> NodeRef {
    let a = (3 * i) as u32 % nvars;
    let b = (3 * i + 1) as u32 % nvars;
    let c = (3 * i + 2) as u32 % nvars;
    let d = (3 * i + 7) as u32 % nvars;
    let e = (3 * i + 11) as u32 % nvars;
    let ga = m.var_guard(a);
    let gb = m.var_guard(b);
    let gc = m.var_guard(c);
    let p0 = m.mul(ga, gb);
    let primary = m.mul(p0, gc);
    let na = m.nvar_guard(a);
    let gd = m.var_guard(d);
    let ge = m.var_guard(e);
    let b0 = m.mul(na, gd);
    let backup = m.mul(b0, ge);
    let path = m.add(primary, backup);
    m.scale(path, Term::Num(Ratio::new(1, i as i128 + 1)))
}

/// Builds the flow family in a fresh arena and aggregates it pairwise,
/// either fused or classic. Returns deterministic allocation counters
/// plus wall-clock.
fn aggregate_blowup(nvars: u32, nflows: usize, k: u32, fused: bool) -> KernelSide {
    let mut m = Mtbdd::new();
    m.fresh_vars(nvars);
    let mut level: Vec<NodeRef> = (0..nflows)
        .map(|i| {
            let f = blowup_stf(&mut m, i, nvars);
            m.kreduce(f, k)
        })
        .collect();
    let base = m.stats().nodes_created;
    let t0 = Instant::now();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                if fused {
                    m.add_kreduce(pair[0], pair[1], k)
                } else {
                    let s = m.add(pair[0], pair[1]);
                    m.kreduce(s, k)
                }
            } else {
                pair[0]
            });
        }
        level = next;
    }
    let secs = t0.elapsed().as_secs_f64();
    let stats = m.stats();
    KernelSide {
        nodes_created: stats.nodes_created - base,
        unique_peak: stats.unique_table_peak,
        secs,
    }
}

/// Layout A: a minimal `HashMap`-based MTBDD manager — the pre-flat-arena
/// design, with a tuple-keyed unique table and tuple-keyed memo caches —
/// implementing exactly the operations the blow-up workload needs, with
/// the same terminal shortcuts as the production engine. Both layouts
/// therefore build the identical canonical diagrams node for node; only
/// the data layout (and thus probes, locality, and wall-clock) differs.
mod map_layout {
    use std::collections::HashMap;
    use yu_mtbdd::Term;

    /// Handle into the map arena; terminals carry the high bit.
    #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct MRef(u32);
    const TERM_BIT: u32 = 1 << 31;

    pub const OP_ADD: u8 = 0;
    pub const OP_MUL: u8 = 1;

    #[derive(Default)]
    pub struct MapMtbdd {
        nodes: Vec<(u32, MRef, MRef)>,
        unique: HashMap<(u32, MRef, MRef), u32>,
        terms: Vec<Term>,
        term_ix: HashMap<Term, u32>,
        apply: HashMap<(u8, MRef, MRef), MRef>,
        kred: HashMap<(MRef, u32), MRef>,
        fused: HashMap<(MRef, MRef, u32), MRef>,
        pub nodes_created: usize,
    }

    impl MapMtbdd {
        pub fn new() -> Self {
            Self::default()
        }

        fn is_term(r: MRef) -> bool {
            r.0 & TERM_BIT != 0
        }

        pub fn term(&mut self, t: Term) -> MRef {
            if let Some(&i) = self.term_ix.get(&t) {
                return MRef(TERM_BIT | i);
            }
            let i = self.terms.len() as u32;
            self.terms.push(t.clone());
            self.term_ix.insert(t, i);
            MRef(TERM_BIT | i)
        }

        fn term_val(&self, r: MRef) -> Term {
            self.terms[(r.0 & !TERM_BIT) as usize].clone()
        }

        fn node(&mut self, var: u32, lo: MRef, hi: MRef) -> MRef {
            if lo == hi {
                return lo;
            }
            let key = (var, lo, hi);
            if let Some(&i) = self.unique.get(&key) {
                return MRef(i);
            }
            let i = self.nodes.len() as u32;
            self.nodes.push(key);
            self.unique.insert(key, i);
            self.nodes_created += 1;
            MRef(i)
        }

        pub fn var_guard(&mut self, v: u32) -> MRef {
            let zero = self.term(Term::ZERO);
            let one = self.term(Term::ONE);
            self.node(v, zero, one)
        }

        pub fn nvar_guard(&mut self, v: u32) -> MRef {
            let zero = self.term(Term::ZERO);
            let one = self.term(Term::ONE);
            self.node(v, one, zero)
        }

        fn top_var(&self, r: MRef) -> u32 {
            if Self::is_term(r) {
                u32::MAX
            } else {
                self.nodes[r.0 as usize].0
            }
        }

        fn cof(&self, r: MRef, var: u32) -> (MRef, MRef) {
            if Self::is_term(r) {
                return (r, r);
            }
            let (v, lo, hi) = self.nodes[r.0 as usize];
            if v == var {
                (lo, hi)
            } else {
                (r, r)
            }
        }

        fn all_alive(&self, mut r: MRef) -> Term {
            while !Self::is_term(r) {
                r = self.nodes[r.0 as usize].2;
            }
            self.term_val(r)
        }

        fn combine(op: u8, a: Term, b: Term) -> Term {
            match op {
                OP_ADD => a.add(b),
                _ => a.mul(b),
            }
        }

        /// Mirrors the production engine's Add/Mul terminal shortcuts so
        /// both layouts take identical recursion shapes.
        fn shortcut(&mut self, op: u8, f: MRef, g: MRef) -> Option<MRef> {
            let zero = self.term(Term::ZERO);
            let one = self.term(Term::ONE);
            match op {
                OP_ADD => {
                    if f == zero {
                        return Some(g);
                    }
                    if g == zero {
                        return Some(f);
                    }
                }
                _ => {
                    if f == zero || g == zero {
                        return Some(zero);
                    }
                    if f == one {
                        return Some(g);
                    }
                    if g == one {
                        return Some(f);
                    }
                }
            }
            None
        }

        pub fn apply(&mut self, op: u8, f: MRef, g: MRef) -> MRef {
            if let Some(r) = self.shortcut(op, f, g) {
                return r;
            }
            if Self::is_term(f) && Self::is_term(g) {
                let t = Self::combine(op, self.term_val(f), self.term_val(g));
                return self.term(t);
            }
            let (f, g) = if g < f { (g, f) } else { (f, g) };
            if let Some(&r) = self.apply.get(&(op, f, g)) {
                return r;
            }
            let var = self.top_var(f).min(self.top_var(g));
            let (f0, f1) = self.cof(f, var);
            let (g0, g1) = self.cof(g, var);
            let lo = self.apply(op, f0, g0);
            let hi = self.apply(op, f1, g1);
            let r = self.node(var, lo, hi);
            self.apply.insert((op, f, g), r);
            r
        }

        pub fn scale(&mut self, f: MRef, c: Term) -> MRef {
            let c = self.term(c);
            self.apply(OP_MUL, f, c)
        }

        pub fn kreduce(&mut self, f: MRef, k: u32) -> MRef {
            if Self::is_term(f) {
                return f;
            }
            if k == 0 {
                let t = self.all_alive(f);
                return self.term(t);
            }
            if let Some(&r) = self.kred.get(&(f, k)) {
                return r;
            }
            let (var, lo, hi) = self.nodes[f.0 as usize];
            let hi_km1 = self.kreduce(hi, k - 1);
            let lo_km1 = self.kreduce(lo, k - 1);
            let r = if hi_km1 == lo_km1 {
                self.kreduce(hi, k)
            } else {
                let hi_k = self.kreduce(hi, k);
                self.node(var, lo_km1, hi_k)
            };
            self.kred.insert((f, k), r);
            r
        }

        /// Fused `βₖ(f + g)`, mirroring the production recursion
        /// (Definition 5.2 on the virtual sum node).
        pub fn add_kreduce(&mut self, f: MRef, g: MRef, k: u32) -> MRef {
            if let Some(r) = self.shortcut(OP_ADD, f, g) {
                return self.kreduce(r, k);
            }
            if k == 0 || (Self::is_term(f) && Self::is_term(g)) {
                let t = self.all_alive(f).add(self.all_alive(g));
                return self.term(t);
            }
            let (f, g) = if g < f { (g, f) } else { (f, g) };
            if let Some(&r) = self.fused.get(&(f, g, k)) {
                return r;
            }
            let var = self.top_var(f).min(self.top_var(g));
            let (f0, f1) = self.cof(f, var);
            let (g0, g1) = self.cof(g, var);
            let hi_km1 = self.add_kreduce(f1, g1, k - 1);
            let lo_km1 = self.add_kreduce(f0, g0, k - 1);
            let r = if hi_km1 == lo_km1 {
                self.add_kreduce(f1, g1, k)
            } else {
                let hi_k = self.add_kreduce(f1, g1, k);
                self.node(var, lo_km1, hi_k)
            };
            self.fused.insert((f, g, k), r);
            r
        }

        /// Estimated heap bytes: Swiss-table capacity × (entry + 1
        /// control byte) for each map, plus the node/terminal vectors.
        pub fn heap_bytes(&self) -> usize {
            fn map_bytes<K, V>(m: &HashMap<K, V>) -> usize {
                m.capacity() * (std::mem::size_of::<(K, V)>() + 1)
            }
            self.nodes.capacity() * std::mem::size_of::<(u32, MRef, MRef)>()
                + self.terms.capacity() * std::mem::size_of::<Term>()
                + map_bytes(&self.unique)
                + map_bytes(&self.term_ix)
                + map_bytes(&self.apply)
                + map_bytes(&self.kred)
                + map_bytes(&self.fused)
        }
    }
}

#[derive(Serialize)]
struct LayoutSide {
    /// Inner nodes hash-consed over the whole workload — must be equal
    /// between layouts (both build the same canonical diagrams).
    nodes_created: usize,
    /// Measured unique-table probe lengths (flat layout only; `HashMap`
    /// exposes no probe counters, reported as 0 for the map layout).
    probe_mean: f64,
    probe_max: u32,
    /// Heap held by nodes + unique table + memo caches (measured for the
    /// flat arena, Swiss-table-estimated for the map layout).
    heap_bytes: usize,
    /// VmHWM after this side finished. Monotone across the process — the
    /// map side runs first, so a flat-side value equal to the map side's
    /// means the flat arena fit inside the map layout's footprint.
    peak_rss_after_bytes: Option<u64>,
    secs: f64,
}

#[derive(Serialize)]
struct LayoutAb {
    nvars: u32,
    nflows: usize,
    k: u32,
    map: LayoutSide,
    flat: LayoutSide,
    /// `map.secs / flat.secs` (> 1.0 means the flat arena is faster).
    flat_speedup: f64,
}

/// The same blow-up flow family as [`blowup_stf`], built on the map
/// layout.
fn map_blowup_stf(m: &mut map_layout::MapMtbdd, i: usize, nvars: u32) -> map_layout::MRef {
    use map_layout::OP_MUL;
    let a = (3 * i) as u32 % nvars;
    let b = (3 * i + 1) as u32 % nvars;
    let c = (3 * i + 2) as u32 % nvars;
    let d = (3 * i + 7) as u32 % nvars;
    let e = (3 * i + 11) as u32 % nvars;
    let ga = m.var_guard(a);
    let gb = m.var_guard(b);
    let gc = m.var_guard(c);
    let p0 = m.apply(OP_MUL, ga, gb);
    let primary = m.apply(OP_MUL, p0, gc);
    let na = m.nvar_guard(a);
    let gd = m.var_guard(d);
    let ge = m.var_guard(e);
    let b0 = m.apply(OP_MUL, na, gd);
    let backup = m.apply(OP_MUL, b0, ge);
    let path = m.apply(map_layout::OP_ADD, primary, backup);
    m.scale(path, Term::Num(Ratio::new(1, i as i128 + 1)))
}

/// Runs the full fused-aggregation workload (STF construction + initial
/// reduction + pairwise `add_kreduce` tree) on each layout and reports
/// the per-layout counters.
fn layout_ab(quick: bool) -> LayoutAb {
    let (nvars, nflows, k) = if quick { (36, 48, 2) } else { (60, 96, 2) };
    eprintln!("  layout A/B: {nflows} flows over {nvars} vars, k={k} ...");

    // Layout A: map-based reference (runs first; VmHWM is monotone).
    let t0 = Instant::now();
    let mut mm = map_layout::MapMtbdd::new();
    let mut level: Vec<map_layout::MRef> = (0..nflows)
        .map(|i| {
            let f = map_blowup_stf(&mut mm, i, nvars);
            mm.kreduce(f, k)
        })
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                mm.add_kreduce(pair[0], pair[1], k)
            } else {
                pair[0]
            });
        }
        level = next;
    }
    let map_side = LayoutSide {
        nodes_created: mm.nodes_created,
        probe_mean: 0.0,
        probe_max: 0,
        heap_bytes: mm.heap_bytes(),
        peak_rss_after_bytes: peak_rss_bytes(),
        secs: t0.elapsed().as_secs_f64(),
    };
    drop(mm);

    // Layout B: the production flat arena, identical workload.
    let t0 = Instant::now();
    let mut fm = Mtbdd::new();
    fm.fresh_vars(nvars);
    let mut level: Vec<NodeRef> = (0..nflows)
        .map(|i| {
            let f = blowup_stf(&mut fm, i, nvars);
            fm.kreduce(f, k)
        })
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                fm.add_kreduce(pair[0], pair[1], k)
            } else {
                pair[0]
            });
        }
        level = next;
    }
    let probes = fm.unique_probe_stats();
    let flat_side = LayoutSide {
        nodes_created: fm.stats().nodes_created,
        probe_mean: probes.mean(),
        probe_max: probes.max_steps,
        heap_bytes: fm.arena_bytes(),
        peak_rss_after_bytes: peak_rss_bytes(),
        secs: t0.elapsed().as_secs_f64(),
    };

    let flat_speedup = map_side.secs / flat_side.secs.max(1e-9);
    LayoutAb {
        nvars,
        nflows,
        k,
        map: map_side,
        flat: flat_side,
        flat_speedup,
    }
}

fn fused_micro(quick: bool) -> FusedMicro {
    let (nvars, nflows, k) = if quick { (36, 48, 2) } else { (60, 96, 2) };
    eprintln!("  fused microbench: {nflows} flows over {nvars} vars, k={k} ...");
    let unfused = aggregate_blowup(nvars, nflows, k, false);
    let fused = aggregate_blowup(nvars, nflows, k, true);
    let nodes_ratio = fused.nodes_created as f64 / unfused.nodes_created as f64;
    let peak_ratio = fused.unique_peak as f64 / unfused.unique_peak as f64;
    FusedMicro {
        nvars,
        nflows,
        k,
        unfused,
        fused,
        nodes_ratio,
        peak_ratio,
    }
}

/// Monotone total-allocation counter of an arena: `nodes_created` resets
/// to the live count on GC, but `gc_reclaimed` carries the difference.
fn total_alloc(v: &YuVerifier) -> u64 {
    let s = v.mtbdd_stats();
    s.nodes_created as u64 + s.gc_reclaimed_nodes
}

fn timed_run(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    k: u32,
    check_workers: usize,
) -> (CheckPoint, u64) {
    let t0 = Instant::now();
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k,
            mode: FailureMode::Links,
            check_workers,
            ..Default::default()
        },
    );
    v.add_flows(flows);
    let before = total_alloc(&v);
    let out = v.verify(tlp);
    let check_nodes = total_alloc(&v) - before;
    let point = CheckPoint {
        check_workers,
        secs: StageSecs {
            total: t0.elapsed().as_secs_f64(),
            route: out.stats.route_time.as_secs_f64(),
            exec: out.stats.exec_time.as_secs_f64(),
            check: out.stats.check_time.as_secs_f64(),
        },
        check_speedup_vs_1: 0.0, // filled in once the sequential point exists
        violations: out.violations.len(),
    };
    (point, check_nodes)
}

fn bench_instance(
    name: &'static str,
    net: &Network,
    flows: &[Flow],
    k: u32,
    worker_counts: &[usize],
) -> CheckInstance {
    let tlp = overload_tlp(net);
    let mut points: Vec<CheckPoint> = Vec::new();
    let mut check_nodes = 0u64;
    for &w in worker_counts {
        eprintln!("  {name}: check_workers={w} ...");
        let (mut p, nodes) = timed_run(net, flows, &tlp, k, w);
        if w == 1 {
            check_nodes = nodes;
        }
        let base_check = points
            .first()
            .map(|b: &CheckPoint| b.secs.check)
            .unwrap_or(p.secs.check);
        p.check_speedup_vs_1 = base_check / p.secs.check;
        // The differential suite proves bit-identity exhaustively; here we
        // just refuse to record numbers from a run that disagrees.
        if let Some(b) = points.first() {
            assert_eq!(b.violations, p.violations, "{name}: outcome diverged");
        }
        points.push(p);
    }
    CheckInstance {
        instance: name,
        routers: net.topo.num_routers(),
        links: net.topo.num_ulinks(),
        flows: flows.len(),
        reqs: tlp.reqs.len(),
        k,
        check_nodes,
        points,
    }
}

/// `obj.key` lookup on the vendored minimal JSON `Value`.
fn jget<'a>(v: &'a serde_json::Value, key: &str) -> Option<&'a serde_json::Value> {
    v.as_object()?.get(key)
}

fn jf64(v: &serde_json::Value) -> Option<f64> {
    match v {
        serde_json::Value::Int(i) => Some(*i as f64),
        serde_json::Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn ju64(v: &serde_json::Value) -> Option<u64> {
    match v {
        serde_json::Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

/// Gates this run against a committed baseline report. The hard gate is
/// the **deterministic** node-allocation count of the sequential check:
/// it is a pure function of the input, so exceeding the baseline by
/// more than `max_regress` always means the code genuinely does more
/// work. Wall-clock is compared too, but a wall-clock regression only
/// fails the run when the node count confirms it — the committed
/// baseline was recorded on one specific machine, and a slower CI
/// runner must not trip the gate by itself (it is still printed as a
/// warning). Returns the failure messages.
fn gate_against_baseline(
    report: &Report,
    baseline: &serde_json::Value,
    max_regress: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let empty = Vec::new();
    // Deterministic probe/nodes gate on the layout A/B workload: probe
    // lengths and node counts are pure functions of the input (no
    // randomized hashing anywhere in the arena), so regressions here are
    // always real. Compared only when the workload parameters match the
    // baseline's (a --quick run against a full baseline skips it).
    if let Some(base_layout) = jget(baseline, "layout") {
        let same_workload = jget(base_layout, "nvars").and_then(ju64)
            == Some(report.layout.nvars as u64)
            && jget(base_layout, "nflows").and_then(ju64) == Some(report.layout.nflows as u64)
            && jget(base_layout, "k").and_then(ju64) == Some(report.layout.k as u64);
        if same_workload {
            if let Some(flat) = jget(base_layout, "flat") {
                if let Some(base_nodes) = jget(flat, "nodes_created").and_then(ju64) {
                    if report.layout.flat.nodes_created as u64 > base_nodes {
                        failures.push(format!(
                            "layout A/B: flat arena created {} nodes vs baseline {} \
                             (deterministic workload; any increase is real)",
                            report.layout.flat.nodes_created, base_nodes
                        ));
                    }
                }
                if let Some(base_mean) = jget(flat, "probe_mean").and_then(jf64) {
                    let limit = (base_mean * (1.0 + max_regress)).max(0.5);
                    if report.layout.flat.probe_mean > limit {
                        failures.push(format!(
                            "layout A/B: unique-table mean probe length {:.3} vs \
                             baseline {:.3} (> {:.0}% regression, deterministic)",
                            report.layout.flat.probe_mean,
                            base_mean,
                            max_regress * 100.0
                        ));
                    }
                }
                if let Some(base_max) = jget(flat, "probe_max").and_then(ju64) {
                    if u64::from(report.layout.flat.probe_max) > base_max.max(8) * 2 {
                        failures.push(format!(
                            "layout A/B: unique-table max probe length {} vs \
                             baseline {} (deterministic)",
                            report.layout.flat.probe_max, base_max
                        ));
                    }
                }
            }
        } else {
            eprintln!("PERF NOTE: layout A/B gate skipped (workload differs from baseline)");
        }
    }
    // Wall-clock numbers from a single-core machine (this run or the
    // baseline's recorder) are not comparable: every worker count
    // time-slices one CPU. Honest gate = node counts only.
    let base_cores = jget(baseline, "cores").and_then(ju64).unwrap_or(1);
    let wall_clock_comparable = report.cores > 1 && base_cores > 1;
    if !wall_clock_comparable {
        eprintln!(
            "PERF NOTE: wall-clock gate skipped (this run: {} core(s), \
             baseline: {} core(s)); node-count gate still applies",
            report.cores, base_cores
        );
    }
    let base_instances = jget(baseline, "instances")
        .and_then(|v| v.as_array())
        .unwrap_or(&empty);
    for inst in &report.instances {
        let Some(base) = base_instances
            .iter()
            .find(|b| jget(b, "instance").and_then(|v| v.as_str()) == Some(inst.instance))
        else {
            continue;
        };
        let Some(serial) = inst.points.iter().find(|p| p.check_workers == 1) else {
            continue;
        };
        let nodes_regressed = match jget(base, "check_nodes").and_then(ju64) {
            Some(base_nodes) if base_nodes > 0 => {
                let regressed = inst.check_nodes as f64 > base_nodes as f64 * (1.0 + max_regress);
                if regressed {
                    failures.push(format!(
                        "{}: serial check allocated {} nodes vs baseline {} (> {:.0}% regression)",
                        inst.instance,
                        inst.check_nodes,
                        base_nodes,
                        max_regress * 100.0
                    ));
                }
                regressed
            }
            _ => false,
        };
        if !wall_clock_comparable {
            continue;
        }
        if let Some(base_secs) = jget(base, "points")
            .and_then(|v| v.as_array())
            .and_then(|ps| {
                ps.iter()
                    .find(|p| jget(p, "check_workers").and_then(ju64) == Some(1))
            })
            .and_then(|p| jget(p, "secs"))
            .and_then(|s| jget(s, "check"))
            .and_then(jf64)
        {
            if serial.secs.check > base_secs * (1.0 + max_regress) {
                let msg = format!(
                    "{}: serial check {:.3}s vs baseline {:.3}s (> {:.0}% regression)",
                    inst.instance,
                    serial.secs.check,
                    base_secs,
                    max_regress * 100.0
                );
                if nodes_regressed {
                    failures.push(msg);
                } else {
                    eprintln!(
                        "PERF WARNING: {msg} — node count did not regress, \
                         attributing to machine speed"
                    );
                }
            }
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out");
    let baseline_path = flag_value("--baseline");
    let max_regress: f64 = flag_value("--max-regress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let worker_counts = vec![1, 2, 4, 8];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("check bench: {cores} core(s) available");
    let layout = layout_ab(quick);
    let fused = fused_micro(quick);

    let (ft_m, ft_frac, wan_flows) = if quick { (4, 16, 300) } else { (8, 8, 1000) };
    let (ft, ft_flows) = fattree_with_flows(ft_m, ft_frac);
    let (w, n0_flows) = preset_instance(WanPreset::N0);
    let n0_flows = &n0_flows[..wan_flows.min(n0_flows.len())];
    let ft_name: &'static str = if quick { "fattree-m4" } else { "fattree-m8" };
    let instances = vec![
        bench_instance(ft_name, &ft.net, &ft_flows, 2, &worker_counts),
        bench_instance("wan-n0", &w.net, n0_flows, 2, &worker_counts),
    ];

    let report = Report {
        bench: "fused-parallel-check",
        cores,
        check_worker_counts: worker_counts,
        peak_rss_bytes: peak_rss_bytes(),
        layout,
        fused,
        instances,
    };
    let json = serde_json::to_string_pretty(&report).expect("report is serializable");
    match &out_path {
        Some(p) => {
            std::fs::write(p, &json).expect("write report");
            eprintln!("wrote {p}");
        }
        None => println!("{json}"),
    }

    // Machine-independent invariant: the fused kernel must materialize
    // strictly fewer nodes than add-then-kreduce on the blow-up.
    let mut failures = Vec::new();
    if report.fused.nodes_ratio >= 1.0 {
        failures.push(format!(
            "fused kernel materialized as many nodes as the classic pipeline \
             (ratio {:.3})",
            report.fused.nodes_ratio
        ));
    }
    // Both layouts hash-cons the same canonical diagrams, so their node
    // counts must agree exactly — a deterministic cross-check that the
    // flat arena's unique table never misses a dedup.
    if report.layout.map.nodes_created != report.layout.flat.nodes_created {
        failures.push(format!(
            "layout A/B node counts diverged: map={} flat={} (flat arena \
             dropped or duplicated canonical nodes)",
            report.layout.map.nodes_created, report.layout.flat.nodes_created
        ));
    }
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("error: invalid baseline {path}: {e}");
            std::process::exit(2);
        });
        failures.extend(gate_against_baseline(&report, &baseline, max_regress));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("PERF GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("perf gates passed");
}
