//! Benchmark harness for the check stage: the fused `ADD∘KREDUCE` kernel
//! and sharded parallel property checking.
//!
//! Two experiments, reported as machine-readable JSON (the repo records a
//! run as `BENCH_check.json`):
//!
//! 1. **Fused kernel microbench** — a Fig. 18-style aggregation blow-up
//!    (many overlapping primary/backup flow STFs summed pairwise under a
//!    small failure budget), built twice in fresh arenas: classic
//!    `apply(Add)` followed by `kreduce`, and the fused
//!    `add_kreduce`. Node allocations are deterministic, so the reported
//!    `nodes_ratio`/`peak_ratio` are machine-independent; the fused
//!    kernel must come in strictly below 1.0 (it never materializes the
//!    un-reduced sum).
//! 2. **Check-worker scaling** — the same verification at increasing
//!    `check_workers`, reporting per-stage wall-clock and the check-stage
//!    speedup vs the sequential checker. The `cores` field matters: with
//!    fewer physical cores than workers, threads time-slice and the
//!    speedup column measures sharding overhead, not parallelism.
//!
//! ```text
//! cargo run --release -p yu-bench --bin check \
//!     [--quick] [--out FILE] [--baseline FILE] [--max-regress FRAC]
//! ```
//!
//! With `--baseline BENCH_check.json` the run exits non-zero if the
//! sequential check regresses by more than `--max-regress` (default
//! 0.25) against the baseline. The hard gate is the deterministic
//! total-allocation count (`check_nodes`); wall-clock is gated too but
//! only fails when the node count confirms the regression, so a CI
//! runner slower than the machine that recorded the baseline cannot
//! trip the gate on its own. Wall-clock comparison is skipped entirely
//! (node gate kept) when either side ran on a single core — timings
//! from a time-sliced CPU say nothing about the code.

use serde::Serialize;
use std::time::Instant;
use yu_bench::{overload_tlp, preset_instance};
use yu_core::{YuOptions, YuVerifier};
use yu_gen::{fattree_with_flows, WanPreset};
use yu_mtbdd::{Mtbdd, NodeRef, Ratio, Term};
use yu_net::{FailureMode, Flow, Network, Tlp};

#[derive(Serialize)]
struct KernelSide {
    /// Inner nodes materialized while aggregating (excludes the shared
    /// per-flow STF construction) — deterministic.
    nodes_created: usize,
    /// Unique-table high-water mark of the arena — deterministic.
    unique_peak: usize,
    secs: f64,
}

#[derive(Serialize)]
struct FusedMicro {
    nvars: u32,
    nflows: usize,
    k: u32,
    unfused: KernelSide,
    fused: KernelSide,
    /// `fused.nodes_created / unfused.nodes_created`; < 1.0 means the
    /// fused kernel skipped materializing that fraction of transients.
    nodes_ratio: f64,
    /// `fused.unique_peak / unfused.unique_peak`.
    peak_ratio: f64,
}

#[derive(Serialize)]
struct StageSecs {
    total: f64,
    route: f64,
    exec: f64,
    check: f64,
}

#[derive(Serialize)]
struct CheckPoint {
    check_workers: usize,
    secs: StageSecs,
    /// Speedup of the check stage alone vs `check_workers = 1` — the
    /// stage the pool actually shards (route sim and execution are
    /// untouched by this knob).
    check_speedup_vs_1: f64,
    violations: usize,
}

#[derive(Serialize)]
struct CheckInstance {
    instance: &'static str,
    routers: usize,
    links: usize,
    flows: usize,
    reqs: usize,
    k: u32,
    /// Total main-arena allocations during the sequential check
    /// (`nodes_created + gc_reclaimed` delta) — deterministic, the
    /// machine-independent regression gate.
    check_nodes: u64,
    points: Vec<CheckPoint>,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    cores: usize,
    check_worker_counts: Vec<usize>,
    /// VmHWM from /proc/self/status at the end of the run, if readable.
    peak_rss_bytes: Option<u64>,
    fused: FusedMicro,
    instances: Vec<CheckInstance>,
}

fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// One synthetic flow STF of the blow-up family: volume `1/(i+1)` along
/// a 3-link primary path, rerouting onto a 2-link backup when the first
/// primary link fails. Strides are chosen so consecutive flows overlap
/// on some variables and diverge on others — the shape that makes the
/// un-reduced pairwise sums of Fig. 18 explode.
fn blowup_stf(m: &mut Mtbdd, i: usize, nvars: u32) -> NodeRef {
    let a = (3 * i) as u32 % nvars;
    let b = (3 * i + 1) as u32 % nvars;
    let c = (3 * i + 2) as u32 % nvars;
    let d = (3 * i + 7) as u32 % nvars;
    let e = (3 * i + 11) as u32 % nvars;
    let ga = m.var_guard(a);
    let gb = m.var_guard(b);
    let gc = m.var_guard(c);
    let p0 = m.mul(ga, gb);
    let primary = m.mul(p0, gc);
    let na = m.nvar_guard(a);
    let gd = m.var_guard(d);
    let ge = m.var_guard(e);
    let b0 = m.mul(na, gd);
    let backup = m.mul(b0, ge);
    let path = m.add(primary, backup);
    m.scale(path, Term::Num(Ratio::new(1, i as i128 + 1)))
}

/// Builds the flow family in a fresh arena and aggregates it pairwise,
/// either fused or classic. Returns deterministic allocation counters
/// plus wall-clock.
fn aggregate_blowup(nvars: u32, nflows: usize, k: u32, fused: bool) -> KernelSide {
    let mut m = Mtbdd::new();
    m.fresh_vars(nvars);
    let mut level: Vec<NodeRef> = (0..nflows)
        .map(|i| {
            let f = blowup_stf(&mut m, i, nvars);
            m.kreduce(f, k)
        })
        .collect();
    let base = m.stats().nodes_created;
    let t0 = Instant::now();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                if fused {
                    m.add_kreduce(pair[0], pair[1], k)
                } else {
                    let s = m.add(pair[0], pair[1]);
                    m.kreduce(s, k)
                }
            } else {
                pair[0]
            });
        }
        level = next;
    }
    let secs = t0.elapsed().as_secs_f64();
    let stats = m.stats();
    KernelSide {
        nodes_created: stats.nodes_created - base,
        unique_peak: stats.unique_table_peak,
        secs,
    }
}

fn fused_micro(quick: bool) -> FusedMicro {
    let (nvars, nflows, k) = if quick { (36, 48, 2) } else { (60, 96, 2) };
    eprintln!("  fused microbench: {nflows} flows over {nvars} vars, k={k} ...");
    let unfused = aggregate_blowup(nvars, nflows, k, false);
    let fused = aggregate_blowup(nvars, nflows, k, true);
    let nodes_ratio = fused.nodes_created as f64 / unfused.nodes_created as f64;
    let peak_ratio = fused.unique_peak as f64 / unfused.unique_peak as f64;
    FusedMicro {
        nvars,
        nflows,
        k,
        unfused,
        fused,
        nodes_ratio,
        peak_ratio,
    }
}

/// Monotone total-allocation counter of an arena: `nodes_created` resets
/// to the live count on GC, but `gc_reclaimed` carries the difference.
fn total_alloc(v: &YuVerifier) -> u64 {
    let s = v.mtbdd_stats();
    s.nodes_created as u64 + s.gc_reclaimed_nodes
}

fn timed_run(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    k: u32,
    check_workers: usize,
) -> (CheckPoint, u64) {
    let t0 = Instant::now();
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k,
            mode: FailureMode::Links,
            check_workers,
            ..Default::default()
        },
    );
    v.add_flows(flows);
    let before = total_alloc(&v);
    let out = v.verify(tlp);
    let check_nodes = total_alloc(&v) - before;
    let point = CheckPoint {
        check_workers,
        secs: StageSecs {
            total: t0.elapsed().as_secs_f64(),
            route: out.stats.route_time.as_secs_f64(),
            exec: out.stats.exec_time.as_secs_f64(),
            check: out.stats.check_time.as_secs_f64(),
        },
        check_speedup_vs_1: 0.0, // filled in once the sequential point exists
        violations: out.violations.len(),
    };
    (point, check_nodes)
}

fn bench_instance(
    name: &'static str,
    net: &Network,
    flows: &[Flow],
    k: u32,
    worker_counts: &[usize],
) -> CheckInstance {
    let tlp = overload_tlp(net);
    let mut points: Vec<CheckPoint> = Vec::new();
    let mut check_nodes = 0u64;
    for &w in worker_counts {
        eprintln!("  {name}: check_workers={w} ...");
        let (mut p, nodes) = timed_run(net, flows, &tlp, k, w);
        if w == 1 {
            check_nodes = nodes;
        }
        let base_check = points
            .first()
            .map(|b: &CheckPoint| b.secs.check)
            .unwrap_or(p.secs.check);
        p.check_speedup_vs_1 = base_check / p.secs.check;
        // The differential suite proves bit-identity exhaustively; here we
        // just refuse to record numbers from a run that disagrees.
        if let Some(b) = points.first() {
            assert_eq!(b.violations, p.violations, "{name}: outcome diverged");
        }
        points.push(p);
    }
    CheckInstance {
        instance: name,
        routers: net.topo.num_routers(),
        links: net.topo.num_ulinks(),
        flows: flows.len(),
        reqs: tlp.reqs.len(),
        k,
        check_nodes,
        points,
    }
}

/// `obj.key` lookup on the vendored minimal JSON `Value`.
fn jget<'a>(v: &'a serde_json::Value, key: &str) -> Option<&'a serde_json::Value> {
    v.as_object()?.get(key)
}

fn jf64(v: &serde_json::Value) -> Option<f64> {
    match v {
        serde_json::Value::Int(i) => Some(*i as f64),
        serde_json::Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn ju64(v: &serde_json::Value) -> Option<u64> {
    match v {
        serde_json::Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

/// Gates this run against a committed baseline report. The hard gate is
/// the **deterministic** node-allocation count of the sequential check:
/// it is a pure function of the input, so exceeding the baseline by
/// more than `max_regress` always means the code genuinely does more
/// work. Wall-clock is compared too, but a wall-clock regression only
/// fails the run when the node count confirms it — the committed
/// baseline was recorded on one specific machine, and a slower CI
/// runner must not trip the gate by itself (it is still printed as a
/// warning). Returns the failure messages.
fn gate_against_baseline(
    report: &Report,
    baseline: &serde_json::Value,
    max_regress: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let empty = Vec::new();
    // Wall-clock numbers from a single-core machine (this run or the
    // baseline's recorder) are not comparable: every worker count
    // time-slices one CPU. Honest gate = node counts only.
    let base_cores = jget(baseline, "cores").and_then(ju64).unwrap_or(1);
    let wall_clock_comparable = report.cores > 1 && base_cores > 1;
    if !wall_clock_comparable {
        eprintln!(
            "PERF NOTE: wall-clock gate skipped (this run: {} core(s), \
             baseline: {} core(s)); node-count gate still applies",
            report.cores, base_cores
        );
    }
    let base_instances = jget(baseline, "instances")
        .and_then(|v| v.as_array())
        .unwrap_or(&empty);
    for inst in &report.instances {
        let Some(base) = base_instances
            .iter()
            .find(|b| jget(b, "instance").and_then(|v| v.as_str()) == Some(inst.instance))
        else {
            continue;
        };
        let Some(serial) = inst.points.iter().find(|p| p.check_workers == 1) else {
            continue;
        };
        let nodes_regressed = match jget(base, "check_nodes").and_then(ju64) {
            Some(base_nodes) if base_nodes > 0 => {
                let regressed = inst.check_nodes as f64 > base_nodes as f64 * (1.0 + max_regress);
                if regressed {
                    failures.push(format!(
                        "{}: serial check allocated {} nodes vs baseline {} (> {:.0}% regression)",
                        inst.instance,
                        inst.check_nodes,
                        base_nodes,
                        max_regress * 100.0
                    ));
                }
                regressed
            }
            _ => false,
        };
        if !wall_clock_comparable {
            continue;
        }
        if let Some(base_secs) = jget(base, "points")
            .and_then(|v| v.as_array())
            .and_then(|ps| {
                ps.iter()
                    .find(|p| jget(p, "check_workers").and_then(ju64) == Some(1))
            })
            .and_then(|p| jget(p, "secs"))
            .and_then(|s| jget(s, "check"))
            .and_then(jf64)
        {
            if serial.secs.check > base_secs * (1.0 + max_regress) {
                let msg = format!(
                    "{}: serial check {:.3}s vs baseline {:.3}s (> {:.0}% regression)",
                    inst.instance,
                    serial.secs.check,
                    base_secs,
                    max_regress * 100.0
                );
                if nodes_regressed {
                    failures.push(msg);
                } else {
                    eprintln!(
                        "PERF WARNING: {msg} — node count did not regress, \
                         attributing to machine speed"
                    );
                }
            }
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out");
    let baseline_path = flag_value("--baseline");
    let max_regress: f64 = flag_value("--max-regress")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let worker_counts = vec![1, 2, 4, 8];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("check bench: {cores} core(s) available");
    let fused = fused_micro(quick);

    let (ft_m, ft_frac, wan_flows) = if quick { (4, 16, 300) } else { (8, 8, 1000) };
    let (ft, ft_flows) = fattree_with_flows(ft_m, ft_frac);
    let (w, n0_flows) = preset_instance(WanPreset::N0);
    let n0_flows = &n0_flows[..wan_flows.min(n0_flows.len())];
    let ft_name: &'static str = if quick { "fattree-m4" } else { "fattree-m8" };
    let instances = vec![
        bench_instance(ft_name, &ft.net, &ft_flows, 2, &worker_counts),
        bench_instance("wan-n0", &w.net, n0_flows, 2, &worker_counts),
    ];

    let report = Report {
        bench: "fused-parallel-check",
        cores,
        check_worker_counts: worker_counts,
        peak_rss_bytes: peak_rss_bytes(),
        fused,
        instances,
    };
    let json = serde_json::to_string_pretty(&report).expect("report is serializable");
    match &out_path {
        Some(p) => {
            std::fs::write(p, &json).expect("write report");
            eprintln!("wrote {p}");
        }
        None => println!("{json}"),
    }

    // Machine-independent invariant: the fused kernel must materialize
    // strictly fewer nodes than add-then-kreduce on the blow-up.
    let mut failures = Vec::new();
    if report.fused.nodes_ratio >= 1.0 {
        failures.push(format!(
            "fused kernel materialized as many nodes as the classic pipeline \
             (ratio {:.3})",
            report.fused.nodes_ratio
        ));
    }
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("error: invalid baseline {path}: {e}");
            std::process::exit(2);
        });
        failures.extend(gate_against_baseline(&report, &baseline, max_regress));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("PERF GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("perf gates passed");
}
