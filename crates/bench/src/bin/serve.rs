//! Serve-loop latency harness: drives a real [`yu::serve::ServeSession`]
//! through a scripted change sequence and reports request-latency
//! quantiles, peak arena size, and the A/B overhead of the metrics
//! registry. Output is machine-readable JSON (the repo records a run as
//! `BENCH_serve.json`).
//!
//! ```text
//! cargo run --release -p yu-bench --bin serve \
//!     [--quick] [--reps N] [--out FILE] [--baseline FILE] [--max-regress FRAC]
//! ```
//!
//! The script interleaves the request kinds a deployment actually sees:
//! link-cost flips (invalidation + partial recompute), flow-volume edits
//! (group re-execution), and empty change-sets (pure cache-hit
//! requests). The same script runs with registry recording off and on
//! (best-of-`reps` total wall clock each) — `registry_overhead_frac` is
//! the acceptance number for "observability costs < 2%".
//!
//! The optional `--baseline` gate compares p95 request latency against a
//! previous run and fails (exit 1) on regression beyond `--max-regress`
//! (default 0.25). Wall-clock comparison is skipped entirely when either
//! run saw only one core — time-sliced threads make latency noise, not
//! signal — mirroring the PR 6 rule in the check bench.

use serde::Serialize;
use std::time::{Duration, Instant};
use yu::serve::ServeSession;
use yu::spec::VerifySpec;
use yu_bench::{overload_tlp, preset_instance};
use yu_core::YuOptions;
use yu_gen::WanPreset;
use yu_mtbdd::Ratio;
use yu_net::{Change, FailureMode};

#[derive(Serialize)]
struct LatencySummary {
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    mean_us: u64,
    total_secs: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    instance: &'static str,
    cores: usize,
    routers: usize,
    links: usize,
    flows: usize,
    k: u32,
    requests: usize,
    reps: usize,
    /// Latency of the production configuration (registry recording on).
    registry_on: LatencySummary,
    /// Same script with `set_registry_enabled(false)`.
    registry_off: LatencySummary,
    /// `on_total / off_total - 1`, best-of-`reps` totals. The
    /// acceptance bar is < 0.02.
    registry_overhead_frac: f64,
    /// Peak live inner nodes in the main arena across all requests.
    peak_live_nodes: usize,
    /// Verdict flips observed over the script (sanity: the script is
    /// built to flip at least once).
    verdict_flips: u64,
}

/// Nearest-rank quantile over sorted microsecond samples.
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn summarize(samples: &[Duration]) -> LatencySummary {
    let mut us: Vec<u64> = samples.iter().map(|d| d.as_micros() as u64).collect();
    us.sort_unstable();
    let total: Duration = samples.iter().sum();
    LatencySummary {
        p50_us: quantile_us(&us, 0.50),
        p95_us: quantile_us(&us, 0.95),
        p99_us: quantile_us(&us, 0.99),
        mean_us: total.as_micros() as u64 / samples.len() as u64,
        total_secs: total.as_secs_f64(),
    }
}

/// The scripted change sequence: `n` JSON-lines requests cycling over
/// link-cost flips, flow-volume edits, cost restores, and no-op
/// change-sets, so reuse ratios and verdict flips both get exercised.
fn change_script(spec: &VerifySpec, n: usize) -> Vec<String> {
    let topo = &spec.network.topo;
    // A few undirected links to perturb, with their original costs.
    let targets: Vec<(String, String, u64)> = topo
        .ulinks()
        .take(4)
        .map(|u| {
            let (fwd, _) = topo.directions(u);
            let lk = topo.link(fwd);
            (
                topo.router(lk.from).name.clone(),
                topo.router(lk.to).name.clone(),
                lk.igp_cost,
            )
        })
        .collect();
    let flows = spec.flows.len();
    (0..n)
        .map(|i| {
            let changes: Vec<Change> = match i % 4 {
                // Reroute: bump one link's cost well above its original.
                0 => {
                    let (from, to, cost) = &targets[(i / 4) % targets.len()];
                    vec![Change::SetLinkCost {
                        from: from.clone(),
                        to: to.clone(),
                        index: 0,
                        cost: cost * 7 + 100,
                    }]
                }
                // Load shift: scale one flow's volume. One request near
                // the middle of the script spikes a flow far past any
                // link capacity, guaranteeing at least one verdict flip.
                1 => {
                    let spike = i >= n / 2 && i < n / 2 + 4;
                    vec![Change::SetFlowVolume {
                        flow: i % flows,
                        volume: Ratio::new(if spike { 100_000 } else { 3 + (i % 5) as i128 }, 1),
                    }]
                }
                // Restore the perturbed link (often flips the verdict back).
                2 => {
                    let (from, to, cost) = &targets[(i / 4) % targets.len()];
                    vec![Change::SetLinkCost {
                        from: from.clone(),
                        to: to.clone(),
                        index: 0,
                        cost: *cost,
                    }]
                }
                // No-op request: everything answered from caches.
                _ => Vec::new(),
            };
            format!(
                "{{\"id\":{},\"changes\":{}}}",
                i,
                serde_json::to_string(&changes).expect("serialize changes")
            )
        })
        .collect()
}

struct RunResult {
    latencies: Vec<Duration>,
    peak_live_nodes: usize,
    verdict_flips: u64,
}

/// One full pass: fresh session, whole script, per-request wall clock.
fn run_script(spec: &VerifySpec, opts: YuOptions, script: &[String]) -> RunResult {
    let mut session = ServeSession::new(spec, opts);
    let mut latencies = Vec::with_capacity(script.len());
    let mut peak = session.verifier().verifier().manager().live_nodes();
    for line in script {
        let t0 = Instant::now();
        let resp = session.handle_line(line);
        latencies.push(t0.elapsed());
        assert!(
            resp.contains("\"ok\":true"),
            "script request rejected: {resp}"
        );
        peak = peak.max(session.verifier().verifier().manager().live_nodes());
    }
    RunResult {
        latencies,
        peak_live_nodes: peak,
        verdict_flips: session.lifetime().verdict_flips,
    }
}

/// `reps` passes with registry recording set to `on`, combined by
/// element-wise per-request minimum. The script is deterministic, so
/// request `i` does identical work in every rep — taking each request's
/// best observation filters scheduler interruptions far better than
/// picking one whole best pass, which matters on small totals where a
/// single preemption swamps a percent-level A/B difference.
fn best_run(
    spec: &VerifySpec,
    opts: YuOptions,
    script: &[String],
    reps: usize,
    on: bool,
) -> RunResult {
    yu_telemetry::set_registry_enabled(on);
    let mut best: Option<RunResult> = None;
    for _ in 0..reps {
        let run = run_script(spec, opts, script);
        best = Some(match best {
            None => run,
            Some(mut b) => {
                for (acc, l) in b.latencies.iter_mut().zip(&run.latencies) {
                    *acc = (*acc).min(*l);
                }
                b.peak_live_nodes = b.peak_live_nodes.max(run.peak_live_nodes);
                b
            }
        });
    }
    yu_telemetry::set_registry_enabled(true);
    best.expect("reps >= 1")
}

fn jget<'a>(v: &'a serde_json::Value, path: &[&str]) -> Option<&'a serde_json::Value> {
    let mut cur = v;
    for key in path {
        cur = cur.as_object()?.get(*key)?;
    }
    Some(cur)
}

fn ju64(v: &serde_json::Value) -> Option<u64> {
    match v {
        serde_json::Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

/// The `--baseline` latency gate (PR 6 rule: skipped at 1 core).
fn gate(report: &Report, baseline_path: &str, max_regress: f64) -> bool {
    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        eprintln!("PERF NOTE: baseline {baseline_path} unreadable; gate skipped");
        return true;
    };
    let Ok(base) = serde_json::from_str::<serde_json::Value>(&text) else {
        eprintln!("PERF NOTE: baseline {baseline_path} not JSON; gate skipped");
        return true;
    };
    let base_cores = jget(&base, &["cores"]).and_then(ju64).unwrap_or(1);
    if report.cores <= 1 || base_cores <= 1 {
        eprintln!(
            "PERF NOTE: wall-clock gate skipped (this run: {} core(s), baseline: {} core(s))",
            report.cores, base_cores
        );
        return true;
    }
    let Some(base_p95) = jget(&base, &["registry_on", "p95_us"]).and_then(ju64) else {
        eprintln!("PERF NOTE: baseline has no registry_on.p95_us; gate skipped");
        return true;
    };
    let now = report.registry_on.p95_us as f64;
    let limit = base_p95 as f64 * (1.0 + max_regress);
    if now > limit {
        eprintln!(
            "PERF REGRESSION: p95 request latency {now}us > {limit:.0}us \
             (baseline {base_p95}us + {max_regress})"
        );
        return false;
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out");
    let baseline = flag_value("--baseline");
    let max_regress = flag_value("--max-regress")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("serve bench: {cores} core(s) available");

    let (nflows, requests, default_reps) = if quick { (60, 20, 1) } else { (150, 40, 5) };
    let reps = flag_value("--reps")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default_reps);
    let (w, flows) = preset_instance(WanPreset::N0);
    let spec = VerifySpec {
        tlp: overload_tlp(&w.net),
        network: w.net,
        flows: flows[..nflows].to_vec(),
        k: 2,
        mode: FailureMode::Links,
    };
    let opts = YuOptions {
        k: spec.k,
        mode: spec.mode,
        ..Default::default()
    };
    let script = change_script(&spec, requests);

    // Off first, then on, so the on-run (whose latencies we publish)
    // benefits from no warmup asymmetry either way — both sides are
    // best-of-reps over fresh sessions.
    let off = best_run(&spec, opts, &script, reps, false);
    let on = best_run(&spec, opts, &script, reps, true);
    let on_sum = summarize(&on.latencies);
    let off_sum = summarize(&off.latencies);
    let overhead = on_sum.total_secs / off_sum.total_secs - 1.0;

    let report = Report {
        bench: "serve-loop",
        instance: "wan-n0",
        cores,
        routers: spec.network.topo.num_routers(),
        links: spec.network.topo.num_ulinks(),
        flows: spec.flows.len(),
        k: spec.k,
        requests,
        reps,
        registry_on: on_sum,
        registry_off: off_sum,
        registry_overhead_frac: overhead,
        peak_live_nodes: on.peak_live_nodes.max(off.peak_live_nodes),
        verdict_flips: on.verdict_flips,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    match &out_path {
        Some(p) => {
            std::fs::write(p, &json).expect("write bench output");
            eprintln!("wrote {p}");
        }
        None => println!("{json}"),
    }
    eprintln!(
        "p50 {}us  p95 {}us  p99 {}us  registry overhead {:+.2}%",
        report.registry_on.p50_us,
        report.registry_on.p95_us,
        report.registry_on.p99_us,
        100.0 * report.registry_overhead_frac
    );
    if let Some(b) = baseline {
        if !gate(&report, &b, max_regress) {
            std::process::exit(1);
        }
    }
}
