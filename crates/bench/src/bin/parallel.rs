//! Threads-vs-speedup harness for the sharded parallel execution engine.
//!
//! Runs the same verification at increasing worker counts and reports
//! wall-clock time per stage plus the speedup relative to the sequential
//! engine. Output is machine-readable JSON (the repo records a run as
//! `BENCH_parallel.json`).
//!
//! ```text
//! cargo run --release -p yu-bench --bin parallel [--quick] [--out FILE]
//! ```
//!
//! Interpreting the numbers: the parallel engine recomputes symbolic
//! routes once per worker (the route cache is not `Send`), so the
//! achievable speedup is bounded by `(R + E) / (R + E/W + M)` for route
//! time `R`, execution time `E`, workers `W`, and merge/import time `M`
//! — workloads where execution dominates (many flow groups) scale; tiny
//! examples do not. The recorded `cores` field matters: with fewer
//! physical cores than workers, threads time-slice and the measured
//! speedup is meaningless as a parallelism signal.

use serde::Serialize;
use std::time::Instant;
use yu_bench::{overload_tlp, preset_instance};
use yu_core::{YuOptions, YuVerifier};
use yu_gen::{fattree_with_flows, WanPreset};
use yu_net::{FailureMode, Flow, Network, Tlp};

#[derive(Serialize)]
struct StageSecs {
    total: f64,
    route: f64,
    exec: f64,
    check: f64,
}

#[derive(Serialize)]
struct WorkerPoint {
    workers: usize,
    secs: StageSecs,
    speedup_vs_1: f64,
    /// Speedup of the symbolic-execution stage alone — the stage the
    /// worker pool actually shards (route sim and TLP checking stay
    /// sequential in the main arena).
    exec_speedup_vs_1: f64,
    flow_groups: usize,
    violations: usize,
}

#[derive(Serialize)]
struct InstanceResult {
    instance: &'static str,
    routers: usize,
    links: usize,
    flows: usize,
    k: u32,
    points: Vec<WorkerPoint>,
    /// Stage spans, cache counters, and derived rates from one extra
    /// instrumented run at the highest worker count. The timed points
    /// above always run with telemetry disabled so recording cost never
    /// contaminates the speedup numbers.
    telemetry: yu_telemetry::TelemetrySummary,
}

/// A/B cost of the telemetry layer on one instance: same run with
/// recording off and on, best-of-N wall clock each.
#[derive(Serialize)]
struct TelemetryOverhead {
    instance: &'static str,
    workers: usize,
    reps: usize,
    off_secs: f64,
    on_secs: f64,
    /// `on/off - 1`; the acceptance bar is < 0.02 when disabled, and
    /// this measures the *enabled* cost, so small values here mean the
    /// disabled path (a single relaxed atomic load) is certainly free.
    overhead_frac: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    cores: usize,
    worker_counts: Vec<usize>,
    /// VmHWM from /proc/self/status at the end of the run, if readable
    /// (Linux only): the high-water mark of resident memory across every
    /// instance and worker count benchmarked.
    peak_rss_bytes: Option<u64>,
    telemetry_overhead: TelemetryOverhead,
    instances: Vec<InstanceResult>,
}

/// Peak resident set size of this process in bytes, from the kernel's
/// VmHWM accounting. Returns `None` off Linux or if the field is absent.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn timed_run(net: &Network, flows: &[Flow], tlp: &Tlp, k: u32, workers: usize) -> WorkerPoint {
    let t0 = Instant::now();
    let mut v = YuVerifier::new(
        net.clone(),
        YuOptions {
            k,
            mode: FailureMode::Links,
            workers,
            ..Default::default()
        },
    );
    v.add_flows(flows);
    let out = v.verify(tlp);
    WorkerPoint {
        workers,
        secs: StageSecs {
            total: t0.elapsed().as_secs_f64(),
            route: out.stats.route_time.as_secs_f64(),
            exec: out.stats.exec_time.as_secs_f64(),
            check: out.stats.check_time.as_secs_f64(),
        },
        speedup_vs_1: 0.0, // filled in once the sequential point exists
        exec_speedup_vs_1: 0.0,
        flow_groups: out.stats.flow_groups,
        violations: out.violations.len(),
    }
}

fn bench_instance(
    name: &'static str,
    net: &Network,
    flows: &[Flow],
    k: u32,
    worker_counts: &[usize],
) -> InstanceResult {
    let tlp = overload_tlp(net);
    let mut points: Vec<WorkerPoint> = Vec::new();
    for &w in worker_counts {
        eprintln!("  {name}: workers={w} ...");
        let mut p = timed_run(net, flows, &tlp, k, w);
        let (base_total, base_exec) = points
            .first()
            .map(|b: &WorkerPoint| (b.secs.total, b.secs.exec))
            .unwrap_or((p.secs.total, p.secs.exec));
        p.speedup_vs_1 = base_total / p.secs.total;
        p.exec_speedup_vs_1 = base_exec / p.secs.exec;
        // Sanity: the parallel engine must agree with the sequential one
        // (the differential suite proves this exhaustively; here we just
        // refuse to record numbers from a run that disagrees).
        if let Some(b) = points.first() {
            assert_eq!(b.violations, p.violations, "{name}: outcome diverged");
            assert_eq!(b.flow_groups, p.flow_groups, "{name}: grouping diverged");
        }
        points.push(p);
    }
    // One extra run with recording on, at the widest worker count, to
    // capture per-stage spans and cache/memo counters for the report.
    let max_workers = *worker_counts.iter().max().unwrap_or(&1);
    yu_telemetry::set_enabled(true);
    yu_telemetry::reset();
    timed_run(net, flows, &tlp, k, max_workers);
    let telemetry = yu_telemetry::snapshot().summary();
    yu_telemetry::reset();
    yu_telemetry::set_enabled(false);
    InstanceResult {
        instance: name,
        routers: net.topo.num_routers(),
        links: net.topo.num_ulinks(),
        flows: flows.len(),
        k,
        points,
        telemetry,
    }
}

/// Best-of-`reps` wall clock with telemetry off, then on, on the same
/// instance — the A/B that backs the "recording is cheap, disabled is
/// free" claim in DESIGN.md.
fn measure_overhead(
    name: &'static str,
    net: &Network,
    flows: &[Flow],
    k: u32,
    workers: usize,
    reps: usize,
) -> TelemetryOverhead {
    let tlp = overload_tlp(net);
    let best = |on: bool| -> f64 {
        yu_telemetry::set_enabled(on);
        let mut secs = f64::INFINITY;
        for _ in 0..reps {
            yu_telemetry::reset();
            let p = timed_run(net, flows, &tlp, k, workers);
            secs = secs.min(p.secs.total);
        }
        yu_telemetry::reset();
        yu_telemetry::set_enabled(false);
        secs
    };
    let off_secs = best(false);
    let on_secs = best(true);
    TelemetryOverhead {
        instance: name,
        workers,
        reps,
        off_secs,
        on_secs,
        overhead_frac: on_secs / off_secs - 1.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    let worker_counts = vec![1, 2, 4, 8];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (ft_m, ft_frac, wan_flows) = if quick { (4, 32, 300) } else { (8, 8, 1000) };
    let (ft, ft_flows) = fattree_with_flows(ft_m, ft_frac);
    let (w, n0_flows) = preset_instance(WanPreset::N0);
    let n0_flows = &n0_flows[..wan_flows.min(n0_flows.len())];

    eprintln!("parallel bench: {cores} core(s) available");
    let instances = vec![
        bench_instance("fattree-m8", &ft.net, &ft_flows, 2, &worker_counts),
        bench_instance("wan-n0", &w.net, n0_flows, 2, &worker_counts),
    ];

    eprintln!("  telemetry overhead A/B ...");
    let overhead_workers = cores.min(4).max(1);
    let telemetry_overhead = measure_overhead(
        "fattree-m8",
        &ft.net,
        &ft_flows,
        2,
        overhead_workers,
        if quick { 2 } else { 3 },
    );

    let report = Report {
        bench: "sharded-parallel-execution",
        cores,
        worker_counts,
        peak_rss_bytes: peak_rss_bytes(),
        telemetry_overhead,
        instances,
    };
    let json = serde_json::to_string_pretty(&report).expect("report is serializable");
    match out_path {
        Some(p) => {
            std::fs::write(&p, json).expect("write report");
            eprintln!("wrote {p}");
        }
        None => println!("{json}"),
    }
}
