//! Regenerates every table and figure of the paper's evaluation (§7 and
//! the appendix) on the scaled-down substitutes documented in DESIGN.md /
//! EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p yu-bench --release --bin figures -- all
//! cargo run -p yu-bench --release --bin figures -- fig11 fig12
//! cargo run -p yu-bench --release --bin figures -- --quick all
//! ```
//!
//! `--quick` shrinks workloads for smoke runs. Baseline cells whose full
//! enumeration would exceed the per-cell budget are measured on a prefix
//! of the scenario space and extrapolated (marked `~`), mirroring the
//! paper's own `> 3600` entries.

use std::time::{Duration, Instant};
use yu_baselines::{jingubang_verify, qarc_verify};
use yu_bench::{cdf_summary, overload_tlp, preset_instance, run_yu, secs};
use yu_core::{aggregate_load, check_requirement, YuOptions, YuVerifier};
use yu_gen::{fattree_with_flows, motivating_example, WanPreset};
use yu_mtbdd::{Mtbdd, NodeRef, Ratio, Term};
use yu_net::{scenario_count, FailureMode, Flow, LoadPoint, Network, Scenario, Tlp};

struct Opts {
    quick: bool,
    budget: Duration,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let opts = Opts {
        quick,
        budget: if quick {
            Duration::from_secs(10)
        } else {
            Duration::from_secs(90)
        },
    };
    let mut targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.as_str())
        .collect();
    if targets.is_empty() || targets.contains(&"all") {
        // fig13/fig14 and fig15/fig16 are produced together.
        targets = vec![
            "fig1", "table3", "fig11", "fig12", "fig13", "fig15", "fig17", "fig18", "table4",
        ];
    }
    for t in targets {
        match t {
            "fig1" => fig1(),
            "table3" => table3(),
            "fig11" => fig11_17(&opts, FailureMode::Links),
            "fig17" => fig11_17(&opts, FailureMode::Routers),
            "fig12" => fig12(&opts),
            "fig13" | "fig14" => fig13_14(&opts),
            "fig15" | "fig16" => fig15_16(&opts),
            "fig18" => fig18(),
            "table4" => table4(&opts),
            other => eprintln!("unknown target: {other}"),
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Fig. 1 sanity: the motivating example's loads and verdicts.
fn fig1() {
    header("Fig. 1 (motivating example: loads and P1/P2 verdicts)");
    let ex = motivating_example();
    let topo = ex.net.topo.clone();
    let mut v = YuVerifier::new(
        ex.net,
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&ex.flows);
    let s0 = Scenario::none();
    println!("scenario (a), no failures:");
    for l in topo.links() {
        let load = v.load_at(LoadPoint::Link(l), &s0);
        if !load.is_zero() {
            println!("  {:<8} {}", topo.link_label(l), load);
        }
    }
    let p1 = v.verify(&ex.p1);
    let p2 = v.verify(&ex.p2);
    println!("P1 under 1 failure: {}", verdict(p1.verified()));
    println!("P2 under 1 failure: {}", verdict(p2.verified()));
    for vi in p2.violations.iter().take(3) {
        println!("  {}", vi.describe(&topo));
    }
}

/// Table 3: network characteristics of the synthetic presets (paper's
/// production numbers alongside).
fn table3() {
    header("Table 3 (network characteristics; paper originals in parens)");
    println!(
        "{:<6} {:>9} {:>9} {:>10} {:>12}",
        "net", "routers", "links", "prefixes", "flows"
    );
    let paper = [
        ("N0", "100", "200", "3e3", "5e7"),
        ("N1", "200", "500", "2e6", "2e8"),
        ("N2", "500", "2500", "2e6", "2e9"),
        ("WAN", "1000", "4000", "2e6", "2e9"),
    ];
    for (i, preset) in [WanPreset::N0, WanPreset::N1, WanPreset::N2, WanPreset::Wan]
        .into_iter()
        .enumerate()
    {
        let (w, flows) = preset_instance(preset);
        let (pn, pr, pl, pp, pf) = (paper[i].0, paper[i].1, paper[i].2, paper[i].3, paper[i].4);
        let _ = pn;
        println!(
            "{:<6} {:>4} ({:>4}) {:>4} ({:>4}) {:>4} ({:>4}) {:>6} ({:>4})",
            preset.name(),
            w.net.topo.num_routers(),
            pr,
            w.net.topo.num_ulinks(),
            pl,
            w.params.prefixes,
            pp,
            flows.len(),
            pf,
        );
    }
}

/// Figs. 11 / 17: verification time across presets and k, vs Jingubang
/// (N0 only, as in the paper).
fn fig11_17(opts: &Opts, mode: FailureMode) {
    let what = match mode {
        FailureMode::Links => "Fig. 11 (k-link failures)",
        FailureMode::Routers => "Fig. 17 (k-router failures)",
        _ => unreachable!(),
    };
    header(what);
    println!(
        "{:<6} {:>2} {:>12} {:>16} {:>10}",
        "net", "k", "YU (s)", "Jingubang (s)", "verdict"
    );
    let plan: &[(WanPreset, &[u32])] = if opts.quick {
        &[(WanPreset::N0, &[1, 2])]
    } else {
        &[
            (WanPreset::N0, &[1, 2, 3, 4]),
            (WanPreset::N1, &[1, 2, 3]),
            (WanPreset::N2, &[1, 2]),
            (WanPreset::Wan, &[1, 2]),
        ]
    };
    for &(preset, ks) in plan {
        let (w, flows) = preset_instance(preset);
        let tlp = overload_tlp(&w.net);
        for &k in ks {
            let run = run_yu(&w.net, &flows, &tlp, k, mode, true, true);
            // Jingubang only on the small network, like the paper.
            let jg = if preset == WanPreset::N0 && k <= 2 {
                measure_jingubang(&w.net, &flows, &tlp, k as usize, mode, opts.budget)
            } else {
                "-".into()
            };
            println!(
                "{:<6} {:>2} {:>12} {:>16} {:>10}",
                preset.name(),
                k,
                secs(run.total),
                jg,
                verdict(run.verified)
            );
        }
    }
}

/// Fig. 12: WAN verification time vs flow count, k in {1,2}, link and
/// router failures.
fn fig12(opts: &Opts) {
    header("Fig. 12 (WAN verification time vs flow count)");
    let preset = if opts.quick {
        WanPreset::N0
    } else {
        WanPreset::Wan
    };
    let (w, all_flows) = preset_instance(preset);
    let tlp = overload_tlp(&w.net);
    let total = all_flows.len();
    let counts = [total / 6, total / 3, (2 * total) / 3, total];
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>14} {:>14}",
        "net", "flows", "k=1 link (s)", "k=2 link (s)", "k=1 rtr (s)", "k=2 rtr (s)"
    );
    for &n in &counts {
        let fl = &all_flows[..n];
        let t11 = run_yu(&w.net, fl, &tlp, 1, FailureMode::Links, true, true).total;
        let t12 = run_yu(&w.net, fl, &tlp, 2, FailureMode::Links, true, true).total;
        let t21 = run_yu(&w.net, fl, &tlp, 1, FailureMode::Routers, true, true).total;
        let t22 = run_yu(&w.net, fl, &tlp, 2, FailureMode::Routers, true, true).total;
        println!(
            "{:<8} {:>10} {:>14} {:>14} {:>14} {:>14}",
            preset.name(),
            n,
            secs(t11),
            secs(t12),
            secs(t21),
            secs(t22)
        );
    }
}

/// Figs. 13 / 14: CDFs of per-link TLP check time and per-link flow
/// counts, with and without link-local equivalence (k = 1).
fn fig13_14(opts: &Opts) {
    header("Figs. 13/14 (link-local equivalence: per-link check time and flow counts)");
    let preset = if opts.quick {
        WanPreset::N0
    } else {
        WanPreset::Wan
    };
    let (w, flows) = preset_instance(preset);
    let mut v = YuVerifier::new(
        w.net.clone(),
        YuOptions {
            k: 1,
            ..Default::default()
        },
    );
    v.add_flows(&flows);
    // Sample 100 links deterministically.
    let nlinks = w.net.topo.num_links();
    let sample: Vec<yu_net::LinkId> = (0..nlinks)
        .step_by((nlinks / 100).max(1))
        .take(100)
        .map(|i| yu_net::LinkId(i as u32))
        .collect();
    let mut with_eq = Vec::new();
    let mut without_eq = Vec::new();
    let mut flows_raw = Vec::new();
    let mut flows_classes = Vec::new();
    let tlp = overload_tlp(&w.net);
    for &l in &sample {
        let point = LoadPoint::Link(l);
        let req = tlp
            .reqs
            .iter()
            .find(|r| r.point == point)
            .expect("overload TLP covers every link");
        let contributions: Vec<(NodeRef, Ratio)> = v
            .flow_results()
            .map(|(g, stf)| (stf.at(v.manager(), point), g.volume.clone()))
            .collect::<Vec<_>>();
        let t0 = Instant::now();
        let (tau, stats) = aggregate_load(v.manager_mut(), &contributions, true, Some(1));
        let fv = v.failure_vars().clone();
        let _ = check_requirement(v.manager_mut(), &fv, tau, req, 1);
        with_eq.push(t0.elapsed().as_secs_f64());
        flows_raw.push(stats.flows as f64);
        flows_classes.push(stats.classes as f64);
        let t0 = Instant::now();
        let (tau, _) = aggregate_load(v.manager_mut(), &contributions, false, Some(1));
        let _ = check_requirement(v.manager_mut(), &fv, tau, req, 1);
        without_eq.push(t0.elapsed().as_secs_f64());
    }
    let (_, p90_w, max_w) = cdf_summary(with_eq.clone());
    let (_, p90_wo, max_wo) = cdf_summary(without_eq.clone());
    println!(
        "Fig. 13 per-link TLP check time over {} links:",
        sample.len()
    );
    println!(
        "  with equivalence:    p90 {:.4}s  max {:.4}s",
        p90_w, max_w
    );
    println!(
        "  without equivalence: p90 {:.4}s  max {:.4}s",
        p90_wo, max_wo
    );
    println!(
        "  paper: 12.51s -> 0.79s at p90 (16x); measured speedup at p90: {:.1}x",
        p90_wo / p90_w.max(1e-9)
    );
    let (_, p90_f, max_f) = cdf_summary(flows_raw);
    let (_, p90_c, max_c) = cdf_summary(flows_classes);
    println!("Fig. 14 per-link distinct flows over the same links:");
    println!(
        "  flows (no equivalence):   p90 {:.0}  max {:.0}",
        p90_f, max_f
    );
    println!(
        "  classes (with equivalence): p90 {:.0}  max {:.0}",
        p90_c, max_c
    );
    println!(
        "  paper: ~1.7e4 -> ~500 at p90 (33x); measured reduction at p90: {:.1}x",
        p90_f / p90_c.max(1.0)
    );
}

/// Figs. 15 / 16: FT-4 runtime and MTBDD node counts vs flow count, with
/// and without KREDUCE, against QARC (k = 2).
///
/// The paper's headline KREDUCE claim — "without KREDUCE, YU is unable to
/// complete verification for any of our production networks within an
/// hour, even with just a single input flow" — reproduces on our scaled
/// presets too: disabling KREDUCE on the N1 preset (29 routers, 54
/// links) with one flow exhausts memory (exact MTBDDs over 54 failure
/// variables). That run is deliberately not part of the harness; see
/// EXPERIMENTS.md.
fn fig15_16(opts: &Opts) {
    header("Figs. 15/16 (FT-4, k=2: YU w/ and w/o KREDUCE vs QARC; MTBDD nodes)");
    let (ft, _) = fattree_with_flows(4, 100);
    let tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
    println!(
        "{:<7} {:>12} {:>14} {:>12} {:>12} {:>14}",
        "flows", "YU (s)", "YU w/o KR (s)", "QARC (s)", "nodes", "nodes w/o KR"
    );
    let counts: &[usize] = if opts.quick {
        &[1, 9]
    } else {
        &[1, 5, 9, 13, 17, 21]
    };
    for &n in counts {
        let flows = ft.pairwise_flows(n, Ratio::int(5));
        let with_kr = run_yu(&ft.net, &flows, &tlp, 2, FailureMode::Links, true, true);
        let without_kr = run_yu(&ft.net, &flows, &tlp, 2, FailureMode::Links, false, true);
        let qa = qarc_verify(&ft.net, &flows, &tlp, 2, false);
        println!(
            "{:<7} {:>12} {:>14} {:>12} {:>12} {:>14}",
            n,
            secs(with_kr.total),
            secs(without_kr.total),
            secs(qa.elapsed),
            with_kr.nodes,
            without_kr.nodes
        );
    }
}

/// Fig. 18 (appendix C): summation of two small MTBDDs explodes in size.
fn fig18() {
    header("Fig. 18 (appendix: MTBDD addition size blow-up)");
    let mut m = Mtbdd::new();
    let vars: Vec<_> = (0..5).map(|_| m.fresh_var()).collect();
    // T_x: tests x1, x3, x5 -> terminals {10, 5, 0}.
    let t10 = m.term(Term::int(10));
    let t5 = m.term(Term::int(5));
    let zero = m.zero();
    let x3_node = m.node(vars[2], t5, t10);
    let x5_node = m.node(vars[4], zero, t5);
    let tx = m.node(vars[0], x5_node, x3_node);
    // T_y: tests x2, x4 -> terminals {25, 50, 0}.
    let t25 = m.term(Term::int(25));
    let t50 = m.term(Term::int(50));
    let x4_node = m.node(vars[3], t25, t50);
    let ty = m.node(vars[1], zero, x4_node);
    let sum = m.add(tx, ty);
    println!("|T_x| = {} nodes", m.node_count(tx));
    println!("|T_y| = {} nodes", m.node_count(ty));
    println!(
        "|T_x + T_y| = {} nodes (the blow-up motivating Sec. 5.3)",
        m.node_count(sum)
    );
}

/// Table 4: FT-4/8/12 x flow fractions, YU vs QARC vs Jingubang (2-link
/// failures).
fn table4(opts: &Opts) {
    header("Table 4 (FatTrees, 2-link failures: YU vs QARC vs Jingubang, seconds)");
    println!(
        "{:<7} {:>6} {:>7} {:>12} {:>14} {:>16}",
        "net", "pct", "flows", "YU (s)", "QARC (s)", "Jingubang (s)"
    );
    let pods: &[usize] = if opts.quick { &[4] } else { &[4, 8, 12] };
    for &m in pods {
        for pct in [4usize, 8, 12, 16] {
            let (ft, flows) = fattree_with_flows(m, pct);
            let tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
            let yu = run_yu(&ft.net, &flows, &tlp, 2, FailureMode::Links, true, true);
            let qa = measure_qarc(&ft.net, &flows, &tlp, 2, opts.budget);
            let jg = measure_jingubang(&ft.net, &flows, &tlp, 2, FailureMode::Links, opts.budget);
            println!(
                "FT-{:<4} {:>5}% {:>7} {:>12} {:>14} {:>16}",
                m,
                pct,
                flows.len(),
                secs(yu.total),
                qa,
                jg
            );
        }
    }
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "verified"
    } else {
        "violated"
    }
}

/// Times the Jingubang baseline, extrapolating (marked `~`) when the full
/// enumeration exceeds the budget.
fn measure_jingubang(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    k: usize,
    mode: FailureMode,
    budget: Duration,
) -> String {
    let total = scenario_count(
        match mode {
            FailureMode::Links => net.topo.num_ulinks(),
            FailureMode::Routers => net.topo.num_routers(),
            FailureMode::LinksAndRouters => net.topo.num_ulinks() + net.topo.num_routers(),
        },
        k,
    );
    let probe_n = 32u128.min(total) as usize;
    let t0 = Instant::now();
    let _ = yu_baselines::jingubang_verify_bounded(
        net,
        flows,
        tlp,
        k,
        mode,
        yu_net::DEFAULT_MAX_HOPS,
        false,
        Some(probe_n),
    );
    let per = t0.elapsed().as_secs_f64() / probe_n as f64;
    let est = per * total as f64;
    if est < budget.as_secs_f64() {
        let out = jingubang_verify(net, flows, tlp, k, mode, yu_net::DEFAULT_MAX_HOPS, false);
        secs(out.elapsed)
    } else {
        format!("~{est:.0}")
    }
}

/// Times the QARC baseline, extrapolating when over budget.
fn measure_qarc(net: &Network, flows: &[Flow], tlp: &Tlp, k: usize, budget: Duration) -> String {
    let total = scenario_count(net.topo.num_ulinks(), k);
    let probe_n = 64u128.min(total) as usize;
    let t0 = Instant::now();
    let _ = yu_baselines::qarc_verify_bounded(net, flows, tlp, k, false, Some(probe_n));
    let per = t0.elapsed().as_secs_f64() / probe_n as f64;
    let est = per * total as f64;
    if est < budget.as_secs_f64() {
        let out = qarc_verify(net, flows, tlp, k, false);
        secs(out.elapsed)
    } else {
        format!("~{est:.0}")
    }
}
