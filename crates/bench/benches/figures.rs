//! Criterion benches mirroring the timing-shaped experiments of the
//! paper's evaluation, one group per table/figure:
//!
//! * `fig11_klink`   — verification time on the N0 preset, k = 1, 2
//!   (the paper's Fig. 11 bars that both systems can complete);
//! * `fig12_flows`   — verification time vs flow count (scaled preset);
//! * `fig15_ft4`     — FT-4 runtime with/without KREDUCE and QARC;
//! * `table4_fattree`— the FT-4 row of Table 4 (YU vs baselines);
//! * `ablation`      — link-local equivalence on/off, KREDUCE in the
//!   routing substrate on/off (design-choice ablations from DESIGN.md).
//!
//! The full-size sweeps (N1/N2/WAN, FT-8/12) live in the `figures`
//! binary, which self-times; Criterion is reserved for the instances
//! small enough to sample repeatedly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use yu_baselines::{jingubang_verify, qarc_verify};
use yu_bench::{overload_tlp, preset_instance, run_yu};
use yu_core::{YuOptions, YuVerifier};
use yu_gen::{fattree_with_flows, WanPreset};
use yu_mtbdd::Ratio;
use yu_net::{FailureMode, Tlp};

fn fig11_klink(c: &mut Criterion) {
    let (w, flows) = preset_instance(WanPreset::N0);
    let flows = &flows[..500];
    let tlp = overload_tlp(&w.net);
    let mut g = c.benchmark_group("fig11_klink_N0");
    g.sample_size(10);
    for k in [1u32, 2] {
        g.bench_with_input(BenchmarkId::new("yu", k), &k, |b, &k| {
            b.iter(|| run_yu(&w.net, flows, &tlp, k, FailureMode::Links, true, true))
        });
    }
    g.bench_function("jingubang_k1", |b| {
        b.iter(|| jingubang_verify(&w.net, flows, &tlp, 1, FailureMode::Links, 40, false))
    });
    g.finish();
}

fn fig12_flows(c: &mut Criterion) {
    let (w, all_flows) = preset_instance(WanPreset::N0);
    let tlp = overload_tlp(&w.net);
    let mut g = c.benchmark_group("fig12_flows_N0");
    g.sample_size(10);
    for n in [333usize, 666, 1333, 2000] {
        g.bench_with_input(BenchmarkId::new("k2_link", n), &n, |b, &n| {
            b.iter(|| {
                run_yu(
                    &w.net,
                    &all_flows[..n],
                    &tlp,
                    2,
                    FailureMode::Links,
                    true,
                    true,
                )
            })
        });
    }
    g.finish();
}

fn fig15_ft4(c: &mut Criterion) {
    let (ft, _) = fattree_with_flows(4, 100);
    let tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
    let mut g = c.benchmark_group("fig15_ft4_k2");
    g.sample_size(10);
    for n in [5usize, 13, 21] {
        let flows = ft.pairwise_flows(n, Ratio::int(5));
        g.bench_with_input(BenchmarkId::new("yu_kreduce", n), &flows, |b, flows| {
            b.iter(|| run_yu(&ft.net, flows, &tlp, 2, FailureMode::Links, true, true))
        });
        g.bench_with_input(BenchmarkId::new("yu_no_kreduce", n), &flows, |b, flows| {
            b.iter(|| run_yu(&ft.net, flows, &tlp, 2, FailureMode::Links, false, true))
        });
        g.bench_with_input(BenchmarkId::new("qarc", n), &flows, |b, flows| {
            b.iter(|| qarc_verify(&ft.net, flows, &tlp, 2, false))
        });
    }
    g.finish();
}

fn table4_fattree(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_ft4_2link");
    g.sample_size(10);
    for pct in [4usize, 8, 12, 16] {
        let (ft, flows) = fattree_with_flows(4, pct);
        let tlp = Tlp::no_overload(&ft.net.topo, Ratio::new(95, 100));
        g.bench_with_input(BenchmarkId::new("yu", pct), &pct, |b, _| {
            b.iter(|| run_yu(&ft.net, &flows, &tlp, 2, FailureMode::Links, true, true))
        });
        g.bench_with_input(BenchmarkId::new("qarc", pct), &pct, |b, _| {
            b.iter(|| qarc_verify(&ft.net, &flows, &tlp, 2, false))
        });
        g.bench_with_input(BenchmarkId::new("jingubang", pct), &pct, |b, _| {
            b.iter(|| jingubang_verify(&ft.net, &flows, &tlp, 2, FailureMode::Links, 40, false))
        });
    }
    g.finish();
}

fn ablation(c: &mut Criterion) {
    let (w, flows) = preset_instance(WanPreset::N0);
    let flows = &flows[..1000];
    let tlp = overload_tlp(&w.net);
    let mut g = c.benchmark_group("ablation_N0_k1");
    g.sample_size(10);
    g.bench_function("full", |b| {
        b.iter(|| run_yu(&w.net, flows, &tlp, 1, FailureMode::Links, true, true))
    });
    g.bench_function("no_link_local_equiv", |b| {
        b.iter(|| run_yu(&w.net, flows, &tlp, 1, FailureMode::Links, true, false))
    });
    g.bench_function("no_global_equiv", |b| {
        b.iter(|| {
            let mut v = YuVerifier::new(
                w.net.clone(),
                YuOptions {
                    k: 1,
                    use_global_equiv: false,
                    ..Default::default()
                },
            );
            v.add_flows(flows);
            v.verify(&tlp)
        })
    });
    // Routing-substrate KREDUCE ablation is safe at N0 scale (26 links).
    g.bench_function("no_kreduce", |b| {
        b.iter(|| run_yu(&w.net, flows, &tlp, 1, FailureMode::Links, false, true))
    });
    g.finish();
}

criterion_group!(
    benches,
    fig11_klink,
    fig12_flows,
    fig15_ft4,
    table4_fattree,
    ablation
);
criterion_main!(benches);
