//! Exact builders for the three networks the paper works through:
//! the Fig. 1 motivating example, the Fig. 9 anycast-SR overload incident,
//! and the Fig. 10 static-route blackhole incident.

use yu_mtbdd::Ratio;
use yu_net::{
    BgpConfig, DenyExport, Flow, Ipv4, LoadPoint, Network, Prefix, RouterId, SrPath, SrPolicy,
    StaticNextHop, StaticRoute, Tlp, TlpReq, Topology, ULinkId,
};

/// The Fig. 1 motivating example, fully populated.
pub struct MotivatingExample {
    /// The network (routers A, B in AS 100/200; C, D, E, F in AS 300 with
    /// IS-IS, iBGP full mesh, and D's weighted SR policy).
    pub net: Network,
    /// Router ids in order A, B, C, D, E, F.
    pub routers: [RouterId; 6],
    /// Undirected links in order A-B, A-C, B-C, B-D, C-D, C-E, D-E,
    /// E-F (1), E-F (2).
    pub ulinks: [ULinkId; 9],
    /// The flows `f1` (20 Gbps, DSCP 0) and `f2` (80 Gbps, DSCP 5).
    pub flows: Vec<Flow>,
    /// P1: traffic delivered to the destination must stay >= 70 Gbps.
    pub p1: Tlp,
    /// P2: no link loaded above 95 Gbps (the two E-F bundle links are
    /// 200 Gbps and allowed up to 190).
    pub p2: Tlp,
}

/// Builds the paper's Fig. 1 network, flows, and the P1/P2 properties.
///
/// Topology (all links IGP cost 10000, 100 Gbps except the two parallel
/// E-F links at 200 Gbps so that a single bundle failure is not itself an
/// overload):
///
/// ```text
///   A(AS100) --- B(AS200)        D's SR policy (dscp 5, to F):
///      \        /    \              [E, F] weight 75
///       C(AS300) --- D(AS300)       [C, F] weight 25
///       |   \        /  |
///       |    \      /   |
///       |     E ===(x2)=== F  (100.0.0.0/24 attached at F)
///       +-----+ (C-E)
/// ```
pub fn motivating_example() -> MotivatingExample {
    let mut t = Topology::new();
    let cap = Ratio::int(100);
    let big = Ratio::int(200);
    let cost = 10_000;
    let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
    let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 200);
    let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 300);
    let d = t.add_router("D", Ipv4::new(10, 0, 0, 4), 300);
    let e = t.add_router("E", Ipv4::new(10, 0, 0, 5), 300);
    let f = t.add_router("F", Ipv4::new(10, 0, 0, 6), 300);
    let u_ab = t.add_link(a, b, cost, cap.clone());
    let u_ac = t.add_link(a, c, cost, cap.clone());
    let u_bc = t.add_link(b, c, cost, cap.clone());
    let u_bd = t.add_link(b, d, cost, cap.clone());
    let u_cd = t.add_link(c, d, cost, cap.clone());
    let u_ce = t.add_link(c, e, cost, cap.clone());
    let u_de = t.add_link(d, e, cost, cap.clone());
    let u_ef1 = t.add_link(e, f, cost, big.clone());
    let u_ef2 = t.add_link(e, f, cost, big.clone());

    let mut net = Network::new(t);
    let dest: Prefix = "100.0.0.0/24".parse().unwrap();
    for r in [a, b] {
        net.config_mut(r).bgp = Some(BgpConfig::default());
    }
    for r in [c, d, e, f] {
        net.config_mut(r).isis_enabled = true;
        net.config_mut(r).bgp = Some(BgpConfig::default());
    }
    net.config_mut(f).connected.push(dest);
    net.config_mut(f).bgp.as_mut().unwrap().networks = vec![dest];
    net.config_mut(d).sr_policies.push(SrPolicy {
        endpoint: Ipv4::new(10, 0, 0, 6),
        match_dscp: Some(5),
        paths: vec![
            SrPath {
                segments: vec![Ipv4::new(10, 0, 0, 5), Ipv4::new(10, 0, 0, 6)],
                weight: 75,
            },
            SrPath {
                segments: vec![Ipv4::new(10, 0, 0, 3), Ipv4::new(10, 0, 0, 6)],
                weight: 25,
            },
        ],
    });

    let flows = vec![
        Flow::new(
            a,
            "11.0.0.1".parse().unwrap(),
            "100.0.0.1".parse().unwrap(),
            0,
            Ratio::int(20),
        ),
        Flow::new(
            b,
            "11.0.0.2".parse().unwrap(),
            "100.0.0.2".parse().unwrap(),
            5,
            Ratio::int(80),
        ),
    ];

    let p1 = Tlp::new().with(TlpReq::at_least(LoadPoint::Delivered(f), Ratio::int(70)));
    let p2 = Tlp::no_overload(&net.topo, Ratio::new(95, 100));

    MotivatingExample {
        net,
        routers: [a, b, c, d, e, f],
        ulinks: [u_ab, u_ac, u_bc, u_bd, u_cd, u_ce, u_de, u_ef1, u_ef2],
        flows,
        p1,
        p2,
    }
}

/// The Fig. 9 incident: a vulnerable anycast SR configuration.
pub struct SrAnycastIncident {
    /// The single-AS network with anycast backbone routers B1/B2.
    pub net: Network,
    /// A1, A2, A3 (DC1 side), B1, B2 (backbone), C1, C2, C3 (DC2 side).
    pub routers: [RouterId; 8],
    /// The low-capacity backbone interconnect B1-B2.
    pub backbone_link: ULinkId,
    /// The link whose failure triggers the overload (B2-C2).
    pub trigger_link: ULinkId,
    /// 80 Gbps of DC1-to-DC2 service traffic entering at A1.
    pub flows: Vec<Flow>,
    /// No link above 95% of capacity.
    pub tlp: Tlp,
}

/// Builds the Fig. 9 network: one AS running IS-IS + iBGP, an anycast
/// address 1.1.1.1 on both backbone routers, and A1's SR policy steering
/// DC2-bound traffic through the anycast segment:
///
/// ```text
///   A1 - A2 - B1 - C3 - C1     A1's SR policy: to 2.2.2.2 via
///   A1 - A3 - B2 - C2 - C1       path [1.1.1.1, 2.2.2.2]
///             B1 - B2 (40 Gbps, the vulnerable interconnect)
/// ```
///
/// When B2-C2 fails, B2 (an anycast owner, so the label has already been
/// popped there) must still satisfy the segment and re-routes everything
/// over the 40 Gbps B1-B2 link — the violation YU found in production.
pub fn sr_anycast_incident() -> SrAnycastIncident {
    let mut t = Topology::new();
    let cap = Ratio::int(100);
    let thin = Ratio::int(40);
    let cost = 10;
    let anycast = Ipv4::new(1, 1, 1, 1);
    let c1_lo = Ipv4::new(2, 2, 2, 2);
    let a1 = t.add_router("A1", Ipv4::new(10, 0, 0, 1), 300);
    let a2 = t.add_router("A2", Ipv4::new(10, 0, 0, 2), 300);
    let a3 = t.add_router("A3", Ipv4::new(10, 0, 0, 3), 300);
    let b1 = t.add_router("B1", anycast, 300);
    let b2 = t.add_router("B2", anycast, 300);
    let c1 = t.add_router("C1", c1_lo, 300);
    let c2 = t.add_router("C2", Ipv4::new(10, 0, 0, 6), 300);
    let c3 = t.add_router("C3", Ipv4::new(10, 0, 0, 7), 300);
    t.add_link(a1, a2, cost, cap.clone());
    t.add_link(a1, a3, cost, cap.clone());
    t.add_link(a2, b1, cost, cap.clone());
    t.add_link(a3, b2, cost, cap.clone());
    let backbone_link = t.add_link(b1, b2, cost, thin.clone());
    t.add_link(b1, c3, cost, cap.clone());
    let trigger_link = t.add_link(b2, c2, cost, cap.clone());
    t.add_link(c3, c1, cost, cap.clone());
    t.add_link(c2, c1, cost, cap.clone());

    let routers = [a1, a2, a3, b1, b2, c1, c2, c3];
    let mut net = Network::new(t);
    let dest: Prefix = "60.0.0.0/24".parse().unwrap();
    for r in routers {
        net.config_mut(r).isis_enabled = true;
        net.config_mut(r).bgp = Some(BgpConfig::default());
    }
    net.config_mut(c1).connected.push(dest);
    net.config_mut(c1).bgp.as_mut().unwrap().networks = vec![dest];
    net.config_mut(a1).sr_policies.push(SrPolicy {
        endpoint: c1_lo,
        match_dscp: None,
        paths: vec![SrPath {
            segments: vec![anycast, c1_lo],
            weight: 100,
        }],
    });

    let flows = vec![Flow::new(
        a1,
        "50.0.0.1".parse().unwrap(),
        "60.0.0.1".parse().unwrap(),
        0,
        Ratio::int(80),
    )];
    let tlp = Tlp::no_overload(&net.topo, Ratio::new(95, 100));

    SrAnycastIncident {
        net,
        routers,
        backbone_link,
        trigger_link,
        flows,
        tlp,
    }
}

/// The Fig. 10 incident: service traffic dropped by a misconfigured
/// static blackhole.
pub struct StaticBlackholeIncident {
    /// The network (each router its own AS, eBGP everywhere).
    pub net: Network,
    /// M1 (DC1 ingress), M2, D1, D2, W (the WAN, owning 10.1.0.0/26).
    pub routers: [RouterId; 5],
    /// The link whose failure triggers the blackhole (D1-W).
    pub trigger_link: ULinkId,
    /// 50 Gbps of service traffic from S to 10.1.0.0/26.
    pub flows: Vec<Flow>,
    /// Delivery at W must stay >= 45 Gbps.
    pub tlp: Tlp,
}

/// Builds the Fig. 10 network:
///
/// ```text
///   M1 - D1 - W     D1, D2: static 10.0.0.0/8 -> Null0,
///   |          |        redistributed into BGP, while the
///   M2 - D2 ---+        specific 10.1.0.0/26 is filtered out
/// ```
///
/// Traffic enters at M1. With the D1-W link down, D1 keeps advertising
/// the 10/8 blackhole (it is static-backed), M1 keeps preferring it over
/// M2's longer path, and the traffic dies at D1's Null0 — despite a fully
/// redundant path. Without the filters, M1 fails over to the /26 via M2
/// and every single-link failure is survivable.
pub fn static_blackhole_incident() -> StaticBlackholeIncident {
    let mut t = Topology::new();
    let cap = Ratio::int(100);
    let cost = 10;
    let m1 = t.add_router("M1", Ipv4::new(10, 200, 0, 2), 64002);
    let m2 = t.add_router("M2", Ipv4::new(10, 200, 0, 3), 64003);
    let d1 = t.add_router("D1", Ipv4::new(10, 200, 0, 4), 64004);
    let d2 = t.add_router("D2", Ipv4::new(10, 200, 0, 5), 64005);
    let w = t.add_router("W", Ipv4::new(10, 200, 0, 6), 64006);
    t.add_link(m1, m2, cost, cap.clone());
    t.add_link(m1, d1, cost, cap.clone());
    t.add_link(m2, d2, cost, cap.clone());
    let trigger_link = t.add_link(d1, w, cost, cap.clone());
    t.add_link(d2, w, cost, cap.clone());

    let routers = [m1, m2, d1, d2, w];
    let mut net = Network::new(t);
    for r in routers {
        net.config_mut(r).bgp = Some(BgpConfig::default());
    }
    let service: Prefix = "10.1.0.0/26".parse().unwrap();
    let blackhole: Prefix = "10.0.0.0/8".parse().unwrap();
    net.config_mut(w).connected.push(service);
    net.config_mut(w).bgp.as_mut().unwrap().networks = vec![service];
    for r in [d1, d2] {
        net.config_mut(r).static_routes.push(StaticRoute {
            prefix: blackhole,
            next_hop: StaticNextHop::Null0,
        });
        let bgp = net.config_mut(r).bgp.as_mut().unwrap();
        bgp.redistribute_static = true;
        // The misconfiguration: the specific service route is filtered
        // from all advertisements, so only the 10/8 aggregate escapes.
        bgp.deny_exports.push(DenyExport {
            peer: None,
            prefix: service,
        });
    }

    let flows = vec![Flow::new(
        m1,
        "10.200.1.1".parse().unwrap(),
        "10.1.0.5".parse().unwrap(),
        0,
        Ratio::int(50),
    )];
    let tlp = Tlp::new().with(TlpReq::at_least(LoadPoint::Delivered(w), Ratio::int(45)));

    StaticBlackholeIncident {
        net,
        routers,
        trigger_link,
        flows,
        tlp,
    }
}

/// The preflight showcase: the Fig. 1 network with a TLP that mixes
/// statically decidable requirements into the symbolic workload.
pub struct PreflightExample {
    /// The Fig. 1 network.
    pub net: Network,
    /// The Fig. 1 flows (100 Gbps total).
    pub flows: Vec<Flow>,
    /// P1 and P2 plus per-router delivery/drop monitoring caps at the
    /// total traffic volume — the caps are discharged statically by
    /// mass conservation, the rest needs the symbolic engine.
    pub tlp: Tlp,
    /// How many of `tlp`'s requirements the preflight analyzer is
    /// expected to discharge.
    pub expected_discharged: usize,
}

/// Builds the preflight example: Fig. 1 plus monitoring-style bounds
/// (`delivered@F <= 100`, `dropped@r <= 100` everywhere) that a sound
/// bound analysis can discharge without touching the MTBDD engine.
pub fn preflight_example() -> PreflightExample {
    let ex = motivating_example();
    let total = Ratio::int(100);
    let f = ex.routers[5];
    let mut tlp = ex.p1.clone();
    for req in ex.p2.reqs {
        tlp = tlp.with(req);
    }
    tlp = tlp.with(TlpReq::at_most(LoadPoint::Delivered(f), total.clone()));
    for r in ex.net.topo.routers().collect::<Vec<_>>() {
        tlp = tlp.with(TlpReq::at_most(LoadPoint::Dropped(r), total.clone()));
    }
    // delivered@F and dropped@{A..F} are bounded by the 100 Gbps the
    // network carries in total: 7 statically provable requirements.
    let expected_discharged = 1 + ex.net.topo.num_routers();
    PreflightExample {
        net: ex.net,
        flows: ex.flows,
        tlp,
        expected_discharged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_valid_networks() {
        assert!(motivating_example().net.validate().is_empty());
        assert!(sr_anycast_incident().net.validate().is_empty());
        assert!(static_blackhole_incident().net.validate().is_empty());
    }

    #[test]
    fn motivating_example_shape() {
        let ex = motivating_example();
        assert_eq!(ex.net.topo.num_routers(), 6);
        assert_eq!(ex.net.topo.num_ulinks(), 9);
        assert_eq!(ex.flows.len(), 2);
        assert_eq!(ex.p2.reqs.len(), 18); // both directions of 9 links
    }

    #[test]
    fn preflight_example_shape() {
        let ex = preflight_example();
        assert!(ex.net.validate().is_empty());
        // P1 (1) + P2 (18) + delivered cap (1) + per-router drop caps (6).
        assert_eq!(ex.tlp.reqs.len(), 26);
        assert_eq!(ex.expected_discharged, 7);
    }

    #[test]
    fn anycast_owners() {
        let inc = sr_anycast_incident();
        let owners = inc.net.topo.loopback_owners(Ipv4::new(1, 1, 1, 1));
        assert_eq!(owners.len(), 2);
    }

    #[test]
    fn blackhole_filters_cover_service_prefix() {
        let inc = static_blackhole_incident();
        let d1 = inc.routers[2];
        let bgp = inc.net.bgp(d1).unwrap();
        assert!(bgp.export_denied(inc.routers[0], &"10.1.0.0/26".parse().unwrap()));
        assert!(!bgp.export_denied(inc.routers[0], &"10.0.0.0/8".parse().unwrap()));
    }
}
