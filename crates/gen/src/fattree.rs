//! FatTree topology generator (paper §7.2, FT-m).
//!
//! `FT-m` is the classic m-pod FatTree: `m` pods of `m/2` aggregation and
//! `m/2` edge routers each, plus `(m/2)²` core routers. Links between
//! aggregation and core routers are 100 Gbps; aggregation-edge links are
//! 40 Gbps (the paper's setting). Routing is pure eBGP in the RFC
//! 7938 style: every edge router its own AS, one AS per pod shared by its
//! aggregation routers, one AS for all cores — AS-path loop prevention
//! then yields exactly the valley-free paths, and multipath gives the
//! usual ECMP fabric behavior.

use yu_mtbdd::Ratio;
use yu_net::{BgpConfig, Flow, Ipv4, Network, Prefix, RouterId, Topology};

/// A generated FatTree network.
pub struct FatTree {
    /// The network, fully configured.
    pub net: Network,
    /// Pod count (`m`).
    pub pods: usize,
    /// Edge routers in (pod, index) order, each originating its prefix.
    pub edges: Vec<RouterId>,
    /// Aggregation routers in (pod, index) order.
    pub aggs: Vec<RouterId>,
    /// Core routers.
    pub cores: Vec<RouterId>,
}

impl FatTree {
    /// The service prefix originated by edge router `i`.
    pub fn edge_prefix(&self, i: usize) -> Prefix {
        edge_prefix(i)
    }

    /// The first `count` pairwise flows between distinct edge routers
    /// (ordered pairs, row-major), each `volume` Gbps as in Table 4 /
    /// Fig. 15 (5 Gbps).
    pub fn pairwise_flows(&self, count: usize, volume: Ratio) -> Vec<Flow> {
        let mut flows = Vec::with_capacity(count);
        'outer: for (i, &src) in self.edges.iter().enumerate() {
            for (j, _) in self.edges.iter().enumerate() {
                if i == j {
                    continue;
                }
                if flows.len() >= count {
                    break 'outer;
                }
                let dst_prefix = edge_prefix(j);
                flows.push(Flow::new(
                    src,
                    Ipv4::new(11, i as u8, 0, 1),
                    Ipv4::new(
                        dst_prefix.addr().octets()[0],
                        dst_prefix.addr().octets()[1],
                        dst_prefix.addr().octets()[2],
                        1,
                    ),
                    0,
                    volume.clone(),
                ));
            }
        }
        flows
    }

    /// Total number of ordered edge pairs (the 100% flow count).
    pub fn max_pairwise_flows(&self) -> usize {
        self.edges.len() * (self.edges.len() - 1)
    }
}

fn edge_prefix(i: usize) -> Prefix {
    Prefix::new(Ipv4::new(100, (i / 256) as u8, (i % 256) as u8, 0), 24)
}

/// Builds `FT-m`. `m` must be even and at least 2.
pub fn fattree(m: usize) -> FatTree {
    assert!(
        m >= 2 && m.is_multiple_of(2),
        "FatTree pod count must be even"
    );
    let half = m / 2;
    let mut t = Topology::new();
    let agg_core_cap = Ratio::int(100);
    let edge_agg_cap = Ratio::int(40);

    let mut cores = Vec::with_capacity(half * half);
    for i in 0..half * half {
        let lo = Ipv4::new(10, 255, (i / 256) as u8, (i % 256) as u8);
        cores.push(t.add_router(format!("core{i}"), lo, 65000));
    }
    let mut aggs = Vec::with_capacity(m * half);
    let mut edges = Vec::with_capacity(m * half);
    for p in 0..m {
        for i in 0..half {
            let lo = Ipv4::new(10, p as u8, 1, i as u8);
            aggs.push(t.add_router(format!("agg{p}_{i}"), lo, 65100 + p as u32));
        }
        for i in 0..half {
            let lo = Ipv4::new(10, p as u8, 2, i as u8);
            edges.push(t.add_router(format!("edge{p}_{i}"), lo, 66000 + (p * half + i) as u32));
        }
    }
    for p in 0..m {
        for a in 0..half {
            let agg = aggs[p * half + a];
            // Full bipartite edge-agg mesh within the pod.
            for e in 0..half {
                t.add_link(agg, edges[p * half + e], 1, edge_agg_cap.clone());
            }
            // Aggregation router `a` connects to core group `a`.
            for c in 0..half {
                t.add_link(agg, cores[a * half + c], 1, agg_core_cap.clone());
            }
        }
    }

    let mut net = Network::new(t);
    for r in net.topo.routers().collect::<Vec<_>>() {
        net.config_mut(r).bgp = Some(BgpConfig::default());
    }
    for (i, &e) in edges.iter().enumerate() {
        let p = edge_prefix(i);
        net.config_mut(e).connected.push(p);
        net.config_mut(e).bgp.as_mut().unwrap().networks = vec![p];
    }

    FatTree {
        net,
        pods: m,
        edges,
        aggs,
        cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ft4_shape() {
        let ft = fattree(4);
        // 4 cores, 8 aggs, 8 edges = 20 routers; links: per pod 2*2
        // edge-agg + 2*2 agg-core = 8, times 4 pods = 32 undirected.
        assert_eq!(ft.net.topo.num_routers(), 20);
        assert_eq!(ft.net.topo.num_ulinks(), 32);
        assert_eq!(ft.edges.len(), 8);
        assert_eq!(ft.cores.len(), 4);
        assert!(ft.net.validate().is_empty());
        assert_eq!(ft.max_pairwise_flows(), 56);
    }

    #[test]
    fn pairwise_flows_skip_self() {
        let ft = fattree(4);
        let flows = ft.pairwise_flows(10, Ratio::int(5));
        assert_eq!(flows.len(), 10);
        for f in &flows {
            let dst_owner = ft
                .edges
                .iter()
                .position(|&e| ft.net.config(e).delivers(f.dst))
                .unwrap();
            assert_ne!(ft.edges[dst_owner], f.ingress);
        }
    }

    #[test]
    fn as_assignment_follows_rfc7938() {
        let ft = fattree(4);
        // All cores share an AS; aggs share per pod; edges unique.
        let core_as: std::collections::BTreeSet<_> =
            ft.cores.iter().map(|&r| ft.net.asn(r)).collect();
        assert_eq!(core_as.len(), 1);
        let pod0: std::collections::BTreeSet<_> =
            ft.aggs[0..2].iter().map(|&r| ft.net.asn(r)).collect();
        assert_eq!(pod0.len(), 1);
        let edge_as: std::collections::BTreeSet<_> =
            ft.edges.iter().map(|&r| ft.net.asn(r)).collect();
        assert_eq!(edge_as.len(), ft.edges.len());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_pods_rejected() {
        fattree(3);
    }
}
